"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``match``
    Run batched substructure matching between a query set and a molecule
    file (both ``.smi``; queries may alternatively be inline SMARTS).
``generate``
    Write a synthetic ZINC-like molecule library to a ``.smi`` file.
``info``
    Structural statistics of a ``.smi`` file (size, labels, degree).
``selftest``
    Quick end-to-end pipeline run on synthetic data with timings.
``analyze``
    Correctness tooling: kernel lint against the committed baseline,
    contract-checked pipeline run, and shadow-access race traces of the
    refine and join kernels (see ``docs/analysis.md``).
``resilient-run``
    Fault-tolerant matching through :mod:`repro.runtime`: memory-budget
    degradation, join watchdog, checkpoint/resume, and optional seeded
    fault injection (see ``docs/robustness.md``).
``profile``
    Observability report of the seeded smoke workload: stage breakdown,
    top-k simulated kernels, roofline placement; exports the
    ``repro.metrics/1`` payload, a Perfetto-loadable Chrome trace, and
    compares against a committed baseline (see ``docs/observability.md``).
``serve-sim``
    Matching-service simulation: closed-loop Zipf load (with an optional
    ``--dashboard`` health rendering) or the ``--chaos`` fault drills;
    ``--dump-dir`` writes the collected post-mortem bundles
    (see ``docs/serving.md``).
``trace-request``
    Reconstruct one request's end-to-end story — admission, coalesced
    batches, retries, resume hops — from a flight-recorder post-mortem
    bundle (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _add_match(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("match", help="batched substructure matching")
    p.add_argument("--data", required=True, help=".smi file of molecules")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--queries", help=".smi file of query patterns")
    group.add_argument(
        "--smarts", nargs="+", help="inline SMARTS-lite patterns (wildcards ok)"
    )
    p.add_argument(
        "--mode", choices=("find-all", "find-first"), default="find-all"
    )
    p.add_argument("--iterations", type=int, default=6,
                   help="refinement iterations (paper default: 6)")
    p.add_argument("--chunk-size", type=int, default=0,
                   help="process molecules in chunks of this size (0 = off)")
    p.add_argument("--embeddings", action="store_true",
                   help="include embeddings in the JSON output")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write results as JSON")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="synthesize a molecule library")
    p.add_argument("--out", required=True, help="output .smi path")
    p.add_argument("-n", "--count", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mean-atoms", type=float, default=21.0)


def _add_info(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("info", help="statistics of a .smi file")
    p.add_argument("file", help=".smi path")


def _add_selftest(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("selftest", help="end-to-end pipeline self-check")
    p.add_argument("--molecules", type=int, default=200)
    p.add_argument("--queries", type=int, default=40)


def _add_analyze(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("analyze", help="kernel lint + contract + race checks")
    p.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the kernel packages)",
    )
    p.add_argument("--baseline", metavar="FILE",
                   help="baseline file (default: the committed one)")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept current findings as the new baseline "
                        "(always includes the dataflow analyses; stale "
                        "entries are pruned and reported)")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text",
                   help="github emits ::error/::warning workflow commands "
                        "for new findings")
    p.add_argument("--no-dynamic", action="store_true",
                   help="skip the contract-checked run and race traces")
    p.add_argument("--dataflow", action="store_true",
                   help="run the abstract-interpretation dataflow analyses "
                        "(SGL011-SGL014) and, with dynamic checks enabled, "
                        "the static-vs-dynamic effect coverage gate")
    p.add_argument("--write-surface", nargs="?", metavar="FILE",
                   const="docs/backend_surface.md", default=None,
                   help="write the kernel backend-surface report "
                        "(implies --dataflow; default: %(const)s)")
    p.add_argument("--check-surface", nargs="?", metavar="FILE",
                   const="docs/backend_surface.md", default=None,
                   help="fail if the committed backend-surface report is "
                        "stale or any kernel-reachable call bypasses the "
                        "repro.xp contract (implies --dataflow; "
                        "default: %(const)s)")


def _add_resilient_run(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "resilient-run", help="fault-tolerant matching (OOM/crash/checkpoint)"
    )
    p.add_argument("--data", help=".smi file of molecules")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--queries", help=".smi file of query patterns")
    group.add_argument(
        "--smarts", nargs="+", help="inline SMARTS-lite patterns (wildcards ok)"
    )
    p.add_argument(
        "--mode", choices=("find-all", "find-first"), default="find-all"
    )
    p.add_argument("--iterations", type=int, default=6,
                   help="refinement iterations (paper default: 6)")
    p.add_argument("--chunk-size", type=int, default=0,
                   help="chunk size (0 = derive from the memory budget)")
    p.add_argument("--memory-budget-mb", type=float, default=0.0,
                   help="device memory budget; OOMing chunks are split")
    p.add_argument("--max-attempts", type=int, default=5,
                   help="per-chunk retry bound before the run goes partial")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="persist completed chunks here and resume from them")
    p.add_argument("--max-join-matches", type=int, default=0,
                   help="join watchdog: truncate a chunk past this many matches")
    p.add_argument("--max-join-visits", type=int, default=0,
                   help="join watchdog: truncate past this many node visits")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for injected faults (demo/testing)")
    p.add_argument("--fault-oom-rate", type=float, default=0.0,
                   help="injected OOM probability per chunk attempt")
    p.add_argument("--fault-crash-rate", type=float, default=0.0,
                   help="injected crash probability per chunk attempt")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write results as JSON")
    p.add_argument("--smoke", action="store_true",
                   help="self-contained fault-injection check: a seeded "
                        "faulted run must equal the fault-free run (exit 1 "
                        "on mismatch); ignores --data/--queries")


def _add_profile(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "profile",
        help="observability report: stage split, top-k kernels, baselines",
    )
    p.add_argument("--n-queries", type=int, default=40,
                   help="smoke workload query count")
    p.add_argument("--n-molecules", type=int, default=200,
                   help="smoke workload molecule count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--mode", choices=("find-all", "find-first"), default="find-all"
    )
    p.add_argument("--iterations", type=int, default=6,
                   help="refinement iterations (paper default: 6)")
    p.add_argument("--device", default="nvidia-v100s",
                   help="device spec for the analytic model/roofline")
    p.add_argument("--top-k", type=int, default=5,
                   help="kernels shown in the by-bytes table")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the repro.metrics/1 payload")
    p.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace-event JSON (load in Perfetto)")
    p.add_argument("--against", metavar="BASELINE",
                   help="compare against a baseline metrics JSON "
                        "(e.g. BENCH_obs.json); exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="relative growth allowed for work counters")
    p.add_argument("--time-tolerance", type=float, default=1.0,
                   help="relative growth allowed for wall-clock gauges")


def _add_calibrate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "calibrate",
        help="fit the join dispatch cost model from a seeded backend sweep",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (same seed ⇒ same sweep workloads)")
    p.add_argument("--points", type=int, default=4,
                   help="workload sizes swept (each point grows the batch)")
    p.add_argument("--repeats", type=int, default=2,
                   help="timing repeats per point; best-of is recorded")
    p.add_argument("--out", metavar="FILE",
                   help="persist the model as repro.join_cost/1 JSON "
                        "(round-trip verified)")
    p.add_argument("--load", metavar="FILE",
                   help="load a persisted model instead of sweeping")
    p.add_argument("--install", action="store_true",
                   help="install the model process-wide via set_cost_model")


def _add_serve_sim(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-sim",
        help="matching-service simulation: closed-loop load and chaos drills",
    )
    p.add_argument("--chaos", action="store_true",
                   help="run the seeded chaos scenarios (crash, breaker, "
                        "straggler, OOM, poison, overload); exit 1 on any "
                        "contract violation")
    p.add_argument("--scenarios", nargs="+", metavar="NAME",
                   help="chaos scenario subset (default: all registered)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload/fault seed (same seed ⇒ same outcome)")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop clients for the load simulation")
    p.add_argument("--requests", type=int, default=8,
                   help="requests per client for the load simulation")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf exponent for batch popularity")
    p.add_argument("--dashboard", action="store_true",
                   help="render the service-health dashboard (lanes, last "
                        "SLO window, active alerts, recorder occupancy) "
                        "after the run")
    p.add_argument("--dump-dir", metavar="DIR",
                   help="write every collected post-mortem bundle into DIR "
                        "as JSON")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the reports/load summary as JSON")


def _add_trace_request(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace-request",
        help="reconstruct one request's end-to-end story (admission, "
             "batches, retries, resume hops) from a post-mortem bundle",
    )
    p.add_argument("request_id",
                   help="request or chain id to trace (e.g. req-000003)")
    p.add_argument("--bundle", metavar="FILE",
                   help="post-mortem bundle JSON to read; default: run "
                        "--scenario live and trace inside its final bundle")
    p.add_argument("--scenario", default="straggler",
                   help="chaos scenario for live mode (default: straggler, "
                        "which produces resume chains)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed for live mode")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the matched events as JSON")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SIGMo batched molecular substructure matching"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_match(sub)
    _add_generate(sub)
    _add_info(sub)
    _add_selftest(sub)
    _add_analyze(sub)
    _add_resilient_run(sub)
    _add_profile(sub)
    _add_calibrate(sub)
    _add_serve_sim(sub)
    _add_trace_request(sub)
    return parser


def cmd_match(args) -> int:
    """Handle ``repro match``: batched matching with optional chunking."""
    from repro.core.config import SigmoConfig
    from repro.core.chunked import run_chunked
    from repro.core.engine import SigmoEngine
    from repro.io import read_smi

    data_mols = read_smi(args.data)
    data_names = [m.name or f"mol-{i}" for i, m in enumerate(data_mols)]
    data_graphs = [m.graph() for m in data_mols]

    if args.smarts:
        from repro.chem.smarts import pattern_from_smarts, wildcard_config

        query_graphs = [pattern_from_smarts(s) for s in args.smarts]
        query_names = list(args.smarts)
        config = wildcard_config(
            refinement_iterations=args.iterations,
            record_embeddings=args.embeddings,
        )
    else:
        query_mols = read_smi(args.queries)
        query_names = [m.name or f"query-{i}" for i, m in enumerate(query_mols)]
        query_graphs = [m.graph() for m in query_mols]
        config = SigmoConfig(
            refinement_iterations=args.iterations,
            record_embeddings=args.embeddings,
        )

    start = time.perf_counter()
    if args.chunk_size:
        chunked = run_chunked(
            query_graphs, data_graphs, args.chunk_size, mode=args.mode, config=config
        )
        total = chunked.total_matches
        pairs = chunked.matched_pairs
        embeddings = chunked.embeddings
        timings = chunked.timings
    else:
        result = SigmoEngine(query_graphs, data_graphs, config).run(mode=args.mode)
        total = result.total_matches
        pairs = result.matched_pairs()
        embeddings = result.embeddings
        timings = result.timings
    elapsed = time.perf_counter() - start

    print(
        f"{total} matches across {len(data_graphs)} molecules x "
        f"{len(query_graphs)} queries in {elapsed:.3f}s ({args.mode})"
    )
    for stage, seconds in timings.items():
        print(f"  {stage}: {seconds * 1e3:.1f} ms")
    shown = 0
    for d, q in pairs:
        if shown >= 20:
            print(f"  ... and {len(pairs) - shown} more matched pairs")
            break
        print(f"  {data_names[d]} contains {query_names[q]}")
        shown += 1

    if args.json_out:
        payload = {
            "mode": args.mode,
            "total_matches": total,
            "matched_pairs": [
                {"molecule": data_names[d], "query": query_names[q]}
                for d, q in pairs
            ],
            "timings_s": timings,
        }
        if args.embeddings:
            payload["embeddings"] = [
                {
                    "molecule": data_names[rec.data_graph],
                    "query": query_names[rec.query_graph],
                    "atoms": rec.mapping.tolist(),
                }
                for rec in embeddings
            ]
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json_out}")
    return 0


def cmd_generate(args) -> int:
    """Handle ``repro generate``: write a synthetic .smi library."""
    from repro.chem.generator import MoleculeGenerator
    from repro.io import write_smi

    gen = MoleculeGenerator(seed=args.seed, mean_heavy_atoms=args.mean_atoms)
    mols = gen.generate_batch(args.count)
    names = [f"SYN-{args.seed}-{i:06d}" for i in range(len(mols))]
    write_smi(args.out, mols, names)
    print(f"wrote {len(mols)} molecules to {args.out}")
    return 0


def cmd_info(args) -> int:
    """Handle ``repro info``: print structural statistics of a .smi file."""
    from repro.chem.generator import dataset_statistics
    from repro.io import read_smi

    mols = read_smi(args.file)
    stats = dataset_statistics(mols)
    print(f"{args.file}: {len(mols)} molecules")
    for key, value in stats.items():
        print(f"  {key}: {value:.3f}")
    return 0


def cmd_selftest(args) -> int:
    """Handle ``repro selftest``: quick synthetic end-to-end run."""
    from repro.chem.datasets import build_benchmark
    from repro.core.engine import SigmoEngine

    ds = build_benchmark(
        scale=1.0, n_queries=args.queries, n_data_graphs=args.molecules, seed=0
    )
    engine = SigmoEngine(ds.queries, ds.data)
    result = engine.run()
    print(ds.summary())
    print(result.summary())
    first = engine.run(mode="find-first")
    print(first.summary())
    print("selftest ok")
    return 0


def cmd_analyze(args) -> int:
    """Handle ``repro analyze``: lint + baseline diff + dynamic checks."""
    from pathlib import Path

    from repro.analysis import contracts, linter
    from repro.analysis.findings import format_findings

    paths = [Path(p) for p in args.paths] if args.paths else None
    dataflow = (
        args.dataflow
        or args.write_surface
        or args.check_surface
        or args.update_baseline
    )
    try:
        findings = linter.lint_paths(paths, dataflow=dataflow)
    except OSError as exc:
        print(f"analyze: cannot read {exc.filename}: {exc.strerror}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(
            f"analyze: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
            file=sys.stderr,
        )
        return 2
    except Exception as exc:  # noqa: BLE001 -- exit 2 = analyzer crashed,
        # distinct from exit 1 = new findings (CI gates on the difference)
        print(f"analyze: analyzer crashed: {exc!r}", file=sys.stderr)
        return 2

    if args.write_surface:
        from repro.analysis.dataflow import render_report, run_dataflow

        files = linter.iter_target_files()
        report = run_dataflow(files, linter.repo_src_root())
        out = Path(args.write_surface)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_report(report.surface))
        print(
            f"surface report written: {out} "
            f"({len(report.surface)} reachable call sites)"
        )
        if args.write_surface and not (
            args.dataflow or args.update_baseline or args.check_surface
        ):
            return 0

    if args.check_surface:
        from repro.analysis.dataflow import render_report, run_dataflow

        files = linter.iter_target_files()
        report = run_dataflow(files, linter.repo_src_root())
        expected = render_report(report.surface)
        committed = Path(args.check_surface)
        stale_surface = (
            not committed.is_file() or committed.read_text() != expected
        )
        n_unportable = sum(1 for c in report.surface if not c.portable)
        if stale_surface or n_unportable:
            if stale_surface:
                print(
                    f"check-surface: {committed} is stale; regenerate with "
                    "`python -m repro analyze --write-surface`",
                    file=sys.stderr,
                )
            if n_unportable:
                print(
                    f"check-surface: {n_unportable} kernel-reachable call "
                    "site(s) bypass the repro.xp contract (SGL014)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"check-surface: ok ({len(report.surface)} reachable call "
            "sites, 0 unportable)"
        )
        if not (args.dataflow or args.update_baseline):
            return 0

    if args.update_baseline:
        target = Path(args.baseline) if args.baseline else None
        old = linter.load_baseline(target)
        stale = linter.stale_entries(findings, old)
        try:
            written = linter.save_baseline(findings, target)
        except ValueError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 1
        print(f"baseline updated: {written} ({len(findings)} accepted findings)")
        if stale:
            print(f"pruned {sum(n for _, n in stale)} stale baseline entr" +
                  ("y:" if sum(n for _, n in stale) == 1 else "ies:"))
            for (rule, file, text), n in stale:
                suffix = f" (x{n})" if n > 1 else ""
                print(f"  {rule} {file}: {text}{suffix}")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = linter.load_baseline(baseline_path)
    fresh = linter.new_findings(findings, baseline)

    contract_error: str | None = None
    race_report: dict = {}
    coverage = None
    if not args.no_dynamic:
        from repro.analysis.races import run_race_checks

        try:
            with contracts.forced(True):
                shadows = run_race_checks()
        except contracts.ContractViolation as exc:
            contract_error = str(exc)
            shadows = {}
        race_report = {name: sh.summary() for name, sh in shadows.items()}
        if dataflow and shadows:
            from repro.analysis.dataflow import effect_coverage

            try:
                coverage = effect_coverage(shadows)
            except Exception as exc:  # noqa: BLE001 -- crash, not finding
                print(
                    f"analyze: effect coverage crashed: {exc!r}",
                    file=sys.stderr,
                )
                return 2
        if contract_error is None:
            from repro.chem.datasets import build_benchmark
            from repro.core.engine import SigmoEngine

            ds = build_benchmark(n_queries=4, n_data_graphs=10, seed=0)
            try:
                with contracts.forced(True):
                    SigmoEngine(ds.queries, ds.data).run()
            except contracts.ContractViolation as exc:
                contract_error = str(exc)
    n_races = sum(len(r["conflicts"]) for r in race_report.values())
    coverage_ok = coverage.ok if coverage is not None else True
    ok = (
        not fresh and not n_races and contract_error is None and coverage_ok
    )

    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "new_findings": [f.to_dict() for f in fresh],
            "baseline_entries": sum(baseline.values()),
            "races": race_report,
            "contract_error": contract_error,
            "ok": ok,
        }
        if coverage is not None:
            payload["effect_coverage"] = coverage.to_dict()
        print(json.dumps(payload, indent=2))
    elif args.format == "github":
        # GitHub Actions workflow commands: annotate new findings in the PR.
        for f in fresh:
            level = "error" if f.severity.value == "error" else "warning"
            message = f"{f.rule} ({f.name}): {f.message}"
            loc = f.file if f.file.startswith("/") else f"src/repro/{f.file}"
            print(
                f"::{level} file={loc},line={f.line},"
                f"title={f.rule}::{message}"
            )
        if coverage is not None and not coverage.ok:
            print(
                "::error title=effect-coverage::static effect sets do not "
                "cover the dynamic shadow-memory traces (run `python -m "
                "repro analyze --dataflow` locally for the report)"
            )
        print(
            f"lint: {len(findings)} finding(s), {len(fresh)} new "
            f"(baseline: {sum(baseline.values())})"
        )
        print("analyze: ok" if ok else "analyze: FAILED")
    else:
        if fresh:
            print(format_findings(fresh))
        print(
            f"lint: {len(findings)} finding(s), {len(fresh)} new "
            f"(baseline: {sum(baseline.values())})"
        )
        for name, report in race_report.items():
            print(
                f"races[{name}]: {report['work_items']} work-items, "
                f"{report['reads'] + report['writes'] + report['atomics']} "
                f"accesses, {len(report['conflicts'])} conflict(s)"
            )
            for line in report["conflicts"]:
                print(f"  {line}")
        if coverage is not None:
            print(coverage.format())
        if not args.no_dynamic:
            print(
                "contracts: violation\n" + contract_error
                if contract_error
                else "contracts: ok"
            )
        print("analyze: ok" if ok else "analyze: FAILED")
    return 0 if ok else 1


def cmd_resilient_run(args) -> int:
    """Handle ``repro resilient-run``: fault-tolerant matching."""
    from repro.core.config import SigmoConfig
    from repro.core.join import JoinBudget
    from repro.io import read_smi
    from repro.runtime import COMPLETE, FaultPlan, run_resilient

    if args.smoke:
        return _resilient_smoke(args)
    if not args.data or not (args.queries or args.smarts):
        print(
            "resilient-run: --data and one of --queries/--smarts are "
            "required (or use --smoke)",
            file=sys.stderr,
        )
        return 2

    data_mols = read_smi(args.data)
    data_names = [m.name or f"mol-{i}" for i, m in enumerate(data_mols)]
    data_graphs = [m.graph() for m in data_mols]
    if args.smarts:
        from repro.chem.smarts import pattern_from_smarts, wildcard_config

        query_graphs = [pattern_from_smarts(s) for s in args.smarts]
        query_names = list(args.smarts)
        config = wildcard_config(refinement_iterations=args.iterations)
    else:
        query_mols = read_smi(args.queries)
        query_names = [m.name or f"query-{i}" for i, m in enumerate(query_mols)]
        query_graphs = [m.graph() for m in query_mols]
        config = SigmoConfig(refinement_iterations=args.iterations)

    join_budget = None
    if args.max_join_matches or args.max_join_visits:
        join_budget = JoinBudget(
            max_matches=args.max_join_matches or None,
            max_visits=args.max_join_visits or None,
        )
    fault_plan = None
    if args.fault_oom_rate or args.fault_crash_rate:
        fault_plan = FaultPlan(
            seed=args.fault_seed,
            oom_rate=args.fault_oom_rate,
            crash_rate=args.fault_crash_rate,
        )

    start = time.perf_counter()
    result = run_resilient(
        query_graphs,
        data_graphs,
        chunk_size=args.chunk_size or None,
        mode=args.mode,
        config=config,
        memory_budget_bytes=(
            int(args.memory_budget_mb * 2**20) if args.memory_budget_mb else None
        ),
        max_attempts=args.max_attempts,
        join_budget=join_budget,
        checkpoint=args.checkpoint_dir,
        fault_plan=fault_plan,
    )
    elapsed = time.perf_counter() - start

    print(
        f"{result.status}: {result.total_matches} matches across "
        f"{len(data_graphs)} molecules x {len(query_graphs)} queries "
        f"in {elapsed:.3f}s ({result.n_chunks} chunk(s), "
        f"{result.chunks_from_checkpoint} from checkpoint)"
    )
    print(f"  attempts: {result.report.summary()}")
    for record in result.chunk_records:
        if record.status != "ok" or record.attempts > 1:
            print(
                f"  chunk[{record.start}:{record.stop}]: {record.status} "
                f"after {record.attempts} attempt(s) {record.detail}".rstrip()
            )
    if args.json_out:
        payload = {
            "status": result.status,
            "mode": args.mode,
            "total_matches": result.total_matches,
            "n_chunks": result.n_chunks,
            "chunks_from_checkpoint": result.chunks_from_checkpoint,
            "matched_pairs": [
                {"molecule": data_names[d], "query": query_names[q]}
                for d, q in result.matched_pairs
            ],
            "timings_s": result.timings,
            "attempts": result.report.to_dict(),
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json_out}")
    return 0 if result.status == COMPLETE else 1


def _resilient_smoke(args) -> int:
    """Seeded fault-injection check: faulted runs must equal fault-free."""
    from repro.chem.datasets import build_benchmark
    from repro.core.chunked import run_chunked
    from repro.runtime import (
        COMPLETE,
        FaultPlan,
        run_parallel_resilient,
        run_resilient,
    )

    ds = build_benchmark(n_queries=5, n_data_graphs=24, seed=0)
    baseline = run_chunked(ds.queries, ds.data, chunk_size=6)
    expected = sorted(baseline.matched_pairs)
    plan = FaultPlan(
        seed=args.fault_seed,
        oom_rate=args.fault_oom_rate or 0.5,
        crash_rate=args.fault_crash_rate or 0.5,
        fault_attempts=2,
    )
    failures = []

    serial = run_resilient(
        ds.queries, ds.data, chunk_size=6, fault_plan=plan, max_attempts=6
    )
    if serial.status != COMPLETE or sorted(serial.matched_pairs) != expected:
        failures.append(
            f"resilient driver diverged: {serial.status}, "
            f"{serial.total_matches} != {baseline.total_matches}"
        )
    print(
        f"resilient: {serial.status}, {serial.total_matches} matches, "
        f"{serial.report.summary()}"
    )

    pooled = run_parallel_resilient(
        ds.queries, ds.data, n_workers=2, chunk_size=6,
        fault_plan=plan, max_attempts=6,
    )
    if pooled.status != COMPLETE or sorted(pooled.matched_pairs) != expected:
        failures.append(
            f"pool driver diverged: {pooled.status}, "
            f"{pooled.total_matches} != {baseline.total_matches}"
        )
    print(
        f"parallel: {pooled.status}, {pooled.total_matches} matches, "
        f"{pooled.report.summary()}"
    )

    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    print("resilient smoke ok" if not failures else "resilient smoke FAILED")
    return 1 if failures else 0


def cmd_profile(args) -> int:
    """Handle ``repro profile``: trace + profile the smoke workload."""
    from repro.obs.export import validate_metrics, write_chrome_trace, write_metrics
    from repro.obs.metrics import MetricsRegistry, collecting
    from repro.obs.profile import (
        ProfileBaseline,
        format_profile,
        format_regressions,
        smoke_profile,
    )
    from repro.obs.trace import tracing

    registry = MetricsRegistry()
    with tracing() as tracer, collecting(registry):
        profile = smoke_profile(
            n_queries=args.n_queries,
            n_data_graphs=args.n_molecules,
            seed=args.seed,
            mode=args.mode,
            device=args.device,
            iterations=args.iterations,
            metrics=registry,
        )
    print(format_profile(profile, top_k=args.top_k))

    payload = profile.payload()
    problems = validate_metrics(payload)
    if problems:
        print(f"internal error: invalid metrics payload: {problems[0]}",
              file=sys.stderr)
        return 2
    if args.json_out:
        write_metrics(profile.metrics, args.json_out, context=profile.context)
        print(f"wrote {args.json_out}")
    if args.trace:
        write_chrome_trace(tracer, args.trace)
        print(
            f"wrote {args.trace} ({len(tracer.spans)} spans, "
            f"{len(tracer.lanes)} lane(s)); load it at ui.perfetto.dev"
        )
    if args.against:
        baseline = ProfileBaseline.from_file(args.against)
        regressions = baseline.compare(
            payload,
            tolerance=args.tolerance,
            time_tolerance=args.time_tolerance,
        )
        if regressions:
            print(format_regressions(regressions), file=sys.stderr)
            return 1
        print(f"no regressions against {args.against}")
    return 0


def _run_calibration_sweep(seed: int, points: int, repeats: int):
    """Forced-backend timing sweep -> fitted :class:`PlanCostModel`.

    One observation per (workload point, mode, backend): the join stage's
    best-of-``repeats`` wall clock, regressed on the pair count and the
    summed pre-dispatch element estimates the planner recorded.
    """
    from time import perf_counter

    from repro.accel.dispatch import (
        BACKEND_DFS,
        BACKEND_FUSED,
        BACKEND_TABULAR,
        MODE_FIND_ALL,
        MODE_FIND_FIRST,
    )
    from repro.accel.memo import JoinObservation, fit_cost_model
    from repro.chem.datasets import build_benchmark
    from repro.core.config import SigmoConfig
    from repro.core.engine import SigmoEngine

    observations = []
    for point in range(max(1, points)):
        n_queries = 8 * (point + 1)
        n_data_graphs = 24 * (point + 1)
        ds = build_benchmark(
            scale=1.0,
            n_queries=n_queries,
            n_data_graphs=n_data_graphs,
            seed=seed,
        )
        for mode in (MODE_FIND_ALL, MODE_FIND_FIRST):
            for backend in (BACKEND_DFS, BACKEND_TABULAR, BACKEND_FUSED):
                engine = SigmoEngine(
                    ds.queries, ds.data, SigmoConfig(join_backend=backend)
                )
                best = None
                result = None
                for _ in range(max(1, repeats)):
                    t0 = perf_counter()
                    result = engine.run(mode=mode)
                    elapsed = result.timings.get("join", perf_counter() - t0)
                    best = elapsed if best is None else min(best, elapsed)
                jr = result.join_result
                observations.append(
                    JoinObservation(
                        mode=mode,
                        backend=backend,
                        n_pairs=jr.stats.pairs_joined,
                        est_elements=int(jr.pair_cost_estimates.sum()),
                        seconds=float(best),
                    )
                )
        print(
            f"point {point + 1}/{points}: {n_queries} queries x "
            f"{n_data_graphs} molecules, "
            f"{observations[-1].n_pairs} pairs per run"
        )
    return fit_cost_model(observations, source=f"calibrated-seed{seed}")


def _print_cost_model(model) -> None:
    """Render the per-(mode, backend) coefficient table."""
    print(f"cost model (source: {model.source}):")
    print(f"  {'mode':<12} {'backend':<9} {'pair_overhead':>14} {'element_cost':>13}")
    for mode in sorted(model.coefficients):
        for backend in sorted(model.coefficients[mode]):
            cost = model.coefficients[mode][backend]
            print(
                f"  {mode:<12} {backend:<9} {cost.pair_overhead:>14.3e} "
                f"{cost.element_cost:>13.3e}"
            )


def _print_decision_shift(model) -> None:
    """Compare fitted dispatch decisions against the old static threshold."""
    from repro.accel.dispatch import TABULAR_MIN_ELEMENTS

    samples = [(1, 8), (2, 16), (4, 12), (1, 47), (1, 48), (8, 48), (16, 128), (32, 256)]
    print()
    print(
        "dispatch decisions vs the static threshold "
        f"(first expansion >= {TABULAR_MIN_ELEMENTS} elements):"
    )
    print(f"  {'c0 x c1':>9} {'static':>8} {'fitted':>8} {'fitted+fused':>13}")
    agree = 0
    for c0, c1 in samples:
        static = "tabular" if c0 * c1 >= TABULAR_MIN_ELEMENTS else "dfs"
        fitted = model.choose(False, 3, [c0, c1], fused_available=False)
        fused = model.choose(False, 3, [c0, c1])
        agree += static == fitted
        print(f"  {f'{c0}x{c1}':>9} {static:>8} {fitted:>8} {fused:>13}")
    print(f"  static/fitted agreement: {agree}/{len(samples)}")


def cmd_calibrate(args) -> int:
    """Handle ``repro calibrate``: fit, inspect, persist the dispatch model."""
    from repro.accel.dispatch import set_cost_model
    from repro.accel.memo import load_cost_model, save_cost_model

    if args.load:
        model = load_cost_model(args.load)
        print(f"loaded {args.load}")
    else:
        model = _run_calibration_sweep(args.seed, args.points, args.repeats)
    _print_cost_model(model)
    _print_decision_shift(model)
    if args.out:
        path = save_cost_model(model, args.out)
        again = load_cost_model(path)
        if again.to_payload() != model.to_payload():
            print("error: persisted model failed round-trip", file=sys.stderr)
            return 2
        print(f"wrote {path} (round-trip verified)")
    if args.install:
        set_cost_model(model)
        print("installed as the process-wide dispatch model")
    return 0


def _write_bundles(dump_dir: str, named_bundles: list) -> None:
    """Write ``(name, bundle)`` pairs into ``dump_dir`` as JSON files."""
    from pathlib import Path

    out = Path(dump_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, bundle in named_bundles:
        path = out / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        print(f"wrote {path}")


def cmd_serve_sim(args) -> int:
    """Handle ``repro serve-sim``: chaos drills or a closed-loop load sim."""
    import asyncio
    import json

    if args.chaos:
        from repro.serve.chaos import SCENARIOS, run_chaos_sync

        names = args.scenarios or sorted(SCENARIOS)
        try:
            reports = run_chaos_sync(names, seed=args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        failed = 0
        for report in reports:
            verdict = "ok" if report.ok else "VIOLATED"
            triggers = ",".join(b["trigger"] for b in report.bundles)
            print(
                f"{report.scenario:24s} {verdict:9s} "
                f"complete={report.count('complete'):3d} "
                f"partial={report.count('partial'):3d} "
                f"rejected={report.count('rejected'):3d} "
                f"bundles=[{triggers}]"
            )
            for line in report.violations:
                print(f"  violation: {line}", file=sys.stderr)
            failed += 0 if report.ok else 1
        if args.dump_dir:
            _write_bundles(
                args.dump_dir,
                [
                    (f"{r.scenario}-{i:02d}-{b['trigger']}", b)
                    for r in reports
                    for i, b in enumerate(r.bundles)
                ],
            )
        if args.json_out:
            payload = {"seed": args.seed,
                       "reports": [r.as_dict() for r in reports]}
            with open(args.json_out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        print(
            "chaos drills ok"
            if not failed
            else f"chaos drills FAILED ({failed} scenario(s))"
        )
        return 1 if failed else 0

    from repro.chem.datasets import build_benchmark
    from repro.core.config import SigmoConfig
    from repro.serve import MatchService, ServeConfig
    from repro.serve.loadgen import run_load

    dataset = build_benchmark(
        scale=1.0, n_queries=6, n_data_graphs=36, seed=args.seed
    )
    config = SigmoConfig(refinement_iterations=3)
    batches = [dataset.data[i : i + 9] for i in range(0, 36, 9)]

    async def run():
        service = MatchService(config=config, serve=ServeConfig())
        key = service.register(dataset.queries)
        async with service:
            result = await run_load(
                service,
                key,
                batches,
                n_clients=args.clients,
                requests_per_client=args.requests,
                zipf_exponent=args.zipf,
                seed=args.seed,
            )
            health = service.health()
        bundles = list(service.monitor.bundles)
        if service.monitor.enabled:
            bundles.append(service.monitor.dump("manual"))
        return result, service.snapshot(), health, bundles

    result, snapshot, health, bundles = asyncio.run(run())
    summary = result.as_dict()
    print(
        f"load: {summary['n_requests']} requests, "
        f"{summary['complete']} complete, "
        f"{summary.get('partial', 0)} partial, "
        f"{summary.get('rejected', 0)} rejected"
    )
    print(
        f"goodput {summary['goodput_rps']:.1f} req/s, "
        f"p50 {summary['latency_p50_s'] * 1e3:.2f} ms, "
        f"p99 {summary['latency_p99_s'] * 1e3:.2f} ms"
    )
    if args.dashboard:
        from repro.obs.slo import render_dashboard

        print(render_dashboard(health.as_dict()))
    if args.dump_dir:
        _write_bundles(
            args.dump_dir,
            [(f"load-{i:02d}-{b['trigger']}", b) for i, b in enumerate(bundles)],
        )
    if args.json_out:
        payload = {
            "load": summary,
            "service": snapshot,
            "health": health.as_dict(),
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    return 0


def cmd_trace_request(args) -> int:
    """Handle ``repro trace-request``: one request's causal story.

    Reads a post-mortem bundle (``--bundle``) or runs a chaos scenario
    live and uses its final bundle, then renders every buffered event
    involving the request id — admission, coalesced batches (as a
    member), retries, resolution, and resume-token follow-up hops linked
    by the causal chain id.
    """
    from repro.obs.recorder import events_for_request, validate_bundle
    from repro.serve.monitor import format_request_story

    if args.bundle:
        with open(args.bundle) as fh:
            bundle = json.load(fh)
        problems = validate_bundle(bundle)
        if problems:
            for line in problems:
                print(f"invalid bundle: {line}", file=sys.stderr)
            return 2
    else:
        from repro.serve.chaos import run_chaos_sync

        try:
            reports = run_chaos_sync([args.scenario], seed=args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = reports[0]
        if not report.bundles:
            print(
                f"scenario {args.scenario!r} produced no bundle",
                file=sys.stderr,
            )
            return 2
        bundle = report.bundles[-1]
    events = events_for_request(bundle.get("events", []), args.request_id)
    if not events:
        chains = []
        for e in bundle.get("events", []):
            chain = e.get("chain")
            if chain and chain not in chains:
                chains.append(chain)
        print(
            f"no events for {args.request_id!r} in bundle "
            f"(trigger {bundle.get('trigger')!r})",
            file=sys.stderr,
        )
        if chains:
            print("known chains: " + " ".join(chains), file=sys.stderr)
        return 1
    print(
        format_request_story(
            args.request_id, events, trigger=str(bundle.get("trigger", ""))
        )
    )
    if args.json_out:
        payload = {
            "request_id": args.request_id,
            "trigger": bundle.get("trigger"),
            "events": events,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "match": cmd_match,
        "generate": cmd_generate,
        "info": cmd_info,
        "selftest": cmd_selftest,
        "analyze": cmd_analyze,
        "resilient-run": cmd_resilient_run,
        "profile": cmd_profile,
        "serve-sim": cmd_serve_sim,
        "calibrate": cmd_calibrate,
        "trace-request": cmd_trace_request,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
