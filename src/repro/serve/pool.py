"""The warm session pool: fingerprint-keyed, replicated, rebuildable.

One :class:`PoolEntry` per registered query set, keyed by the query
batch's content hash (the multi-tenant "register once, match forever"
registry the ROADMAP asks for).  Each entry holds ``replicas`` session
*lanes* — independent :class:`~repro.pipeline.session.MatcherSession`
instances over the same compiled query CSR-GO — so one slow or broken
session never serializes a tenant's whole traffic:

* the router picks the least-loaded lane whose breaker admits traffic
  and which has no batch in flight;
* a lane whose breaker trips gets its session *rebuilt* (a fresh
  ``MatcherSession`` over the entry's query CSR-GO — cheap, because the
  global signature/plan memos of :mod:`repro.accel.memo` survive) while
  the breaker's cooldown routes traffic around it;
* per-lane straggler estimates (EWMA of observed-vs-predicted service
  time) feed back into deadline budgeting, so a slow lane gets smaller
  join budgets for the same wall-clock deadline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.graph.batch import GraphBatch
from repro.pipeline.session import MatcherSession
from repro.serve.breaker import CircuitBreaker
from repro.serve.deadline import Clock, Ewma


@dataclass
class LaneStats:
    """Dispatch counters of one session lane."""

    dispatches: int = 0
    failures: int = 0
    rebuilds: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view."""
        return {
            "dispatches": self.dispatches,
            "failures": self.failures,
            "rebuilds": self.rebuilds,
        }


class SessionLane:
    """One warm session plus its breaker, load state, and estimates."""

    def __init__(
        self,
        key: str,
        index: int,
        session: MatcherSession,
        breaker: CircuitBreaker,
    ) -> None:
        self.key = key
        self.index = index
        self.lane_id = f"{key[:12]}/{index}"
        self.session = session
        self.breaker = breaker
        self.busy = False
        #: Observed service-time factor vs. the cost model's prediction
        #: (1.0 = nominal; a straggler lane drifts above 1).
        self.slowdown = Ewma(1.0, alpha=0.4)
        self.stats = LaneStats()

    def available(self) -> bool:
        """Whether the router may dispatch to this lane now."""
        return not self.busy and self.breaker.allows()


class PoolEntry:
    """One registered query set: the compiled CSR-GO plus its lanes."""

    def __init__(
        self,
        key: str,
        query: CSRGO,
        config: SigmoConfig,
        lanes: list[SessionLane],
    ) -> None:
        self.key = key
        self.query = query
        self.config = config
        self.lanes = lanes
        self._next = 0

    def pick(self) -> SessionLane | None:
        """Least-recently-started available lane (round-robin tiebreak)."""
        n = len(self.lanes)
        for offset in range(n):
            lane = self.lanes[(self._next + offset) % n]
            if lane.available():
                self._next = (self._next + offset + 1) % n
                return lane
        return None

    def any_healthy_possible(self) -> bool:
        """Whether some lane is merely busy (vs. every breaker open)."""
        return any(lane.busy or lane.breaker.allows() for lane in self.lanes)


class SessionPool:
    """Registry of warm sessions keyed by query-set fingerprint.

    Parameters
    ----------
    clock:
        Service clock (drives the breakers).
    config:
        Default engine configuration for new sessions.
    replicas:
        Session lanes per registered query set.
    max_query_sets:
        LRU bound on retained registrations; the least-recently *used*
        entry is evicted past it (re-registering is cheap and
        deterministic, so eviction only costs warmth).
    breaker_threshold / breaker_cooldown_s:
        Per-lane breaker tuning.
    """

    def __init__(
        self,
        clock: Clock,
        config: SigmoConfig | None = None,
        replicas: int = 2,
        max_query_sets: int = 32,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        on_breaker_transition: "Callable[[float, str, str, str], None] | None" = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_query_sets < 1:
            raise ValueError("max_query_sets must be >= 1")
        self._clock = clock
        self.config = config or SigmoConfig()
        self.replicas = replicas
        self.max_query_sets = max_query_sets
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        #: Observability hook threaded into every lane breaker, called
        #: as ``(at_s, lane_id, old_state, new_state)`` on transitions.
        self.on_breaker_transition = on_breaker_transition
        self._entries: OrderedDict[str, PoolEntry] = OrderedDict()
        self.evictions = 0
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- registration ------------------------------------------------------------

    def register(
        self, queries: Iterable | GraphBatch | CSRGO, config: SigmoConfig | None = None
    ) -> str:
        """Compile (or recall) a query set; returns its fingerprint key.

        Registering the same query contents twice returns the same key
        and reuses the existing warm lanes — the key is the CSR-GO
        content hash suffixed with the config's array backend, so it is
        stable across processes and restarts while sessions warmed on
        different backends never share an entry.
        """
        if isinstance(queries, CSRGO):
            query = queries
        else:
            batch = queries if isinstance(queries, GraphBatch) else GraphBatch(queries)
            if batch.n_graphs == 0:
                raise ValueError("at least one query graph is required")
            query = CSRGO.from_batch(batch)
        config = config or self.config
        key = f"{query.content_hash()}:{config.array_backend}"
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return key
        lanes = [
            self._build_lane(key, i, query, config) for i in range(self.replicas)
        ]
        self._entries[key] = PoolEntry(key, query, config, lanes)
        while len(self._entries) > self.max_query_sets:
            self._entries.popitem(last=False)
            self.evictions += 1
        return key

    def _build_lane(
        self, key: str, index: int, query: CSRGO, config: SigmoConfig
    ) -> SessionLane:
        session = MatcherSession.from_csrgo(query, config=config)
        breaker = CircuitBreaker(
            self._clock,
            failure_threshold=self.breaker_threshold,
            cooldown_s=self.breaker_cooldown_s,
            name=f"{key[:12]}/{index}",
            on_transition=self.on_breaker_transition,
        )
        return SessionLane(key, index, session, breaker)

    # -- routing -----------------------------------------------------------------

    def entry(self, key: str) -> PoolEntry | None:
        """The pool entry for ``key`` (refreshing LRU recency)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def acquire(self, key: str) -> SessionLane | None:
        """An available lane for ``key``, marked busy — or ``None``.

        ``None`` means *no lane can take the batch right now*; use
        :meth:`PoolEntry.any_healthy_possible` to distinguish transient
        all-busy (wait) from every-breaker-open (reject ``unavailable``).
        """
        entry = self.entry(key)
        if entry is None:
            return None
        lane = entry.pick()
        if lane is not None:
            lane.busy = True
            lane.stats.dispatches += 1
        return lane

    def release(self, lane: SessionLane, ok: bool) -> None:
        """Return a lane after a dispatch; rebuild it on a breaker trip."""
        lane.busy = False
        if ok:
            lane.breaker.record_success()
            return
        lane.stats.failures += 1
        trips_before = lane.breaker.trips
        lane.breaker.record_failure()
        if lane.breaker.trips > trips_before:
            self.rebuild_lane(lane)

    def rebuild_lane(self, lane: SessionLane) -> None:
        """Replace a broken lane's session with a fresh warm one.

        The breaker state is deliberately *kept*: the fresh session still
        has to pass the half-open trial before full traffic returns (the
        failure may have been the workload's fault, not the session's).
        """
        entry = self._entries.get(lane.key)
        if entry is None:
            return
        lane.session = MatcherSession.from_csrgo(entry.query, config=entry.config)
        lane.stats.rebuilds += 1
        self.rebuilds += 1

    # -- telemetry ---------------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of lanes with a batch in flight (0.0 when empty)."""
        lanes = [
            lane for entry in self._entries.values() for lane in entry.lanes
        ]
        if not lanes:
            return 0.0
        return sum(1 for lane in lanes if lane.busy) / len(lanes)

    def lane_snapshots(self) -> list[dict]:
        """Flat per-lane telemetry rows (the dashboard's lane table)."""
        return [
            {
                "lane": lane.lane_id,
                "busy": lane.busy,
                "slowdown": lane.slowdown.value,
                "breaker": lane.breaker.as_dict(),
                **lane.stats.as_dict(),
            }
            for entry in self._entries.values()
            for lane in entry.lanes
        ]

    def snapshot(self) -> dict:
        """Pool-wide telemetry (CLI, tests)."""
        return {
            "query_sets": len(self._entries),
            "evictions": self.evictions,
            "rebuilds": self.rebuilds,
            "occupancy": self.occupancy(),
            "lanes": {
                entry.key: [
                    {
                        "lane": lane.lane_id,
                        "busy": lane.busy,
                        "slowdown": lane.slowdown.value,
                        "breaker": lane.breaker.as_dict(),
                        **lane.stats.as_dict(),
                    }
                    for lane in entry.lanes
                ]
                for entry in self._entries.values()
            },
        }
