"""The overload-hardened asynchronous matching service.

The molecular-search deployment the paper targets is a *service*: many
clients, shared warm state, strict latency budgets, and hardware that
fails.  This package builds that front-end over the pipeline layer's
:class:`~repro.pipeline.session.MatcherSession`:

* :mod:`~repro.serve.request` — the typed request/response contract
  (complete / correct-partial-with-resume-token / typed rejection);
* :mod:`~repro.serve.deadline` — clocks, deadlines, and the cost model
  that translates remaining time into join budgets;
* :mod:`~repro.serve.admission` — bounded queueing with deadline-aware
  load shedding;
* :mod:`~repro.serve.breaker` — per-lane circuit breakers;
* :mod:`~repro.serve.pool` — the fingerprint-keyed warm session pool
  with replica lanes and broken-lane rebuilds;
* :mod:`~repro.serve.service` — the asyncio front-end tying it together
  (coalescing with fingerprint dedup, routing, retries with seeded
  jittered backoff);
* :mod:`~repro.serve.monitor` — serving-layer observability: always-on
  flight recorder, windowed SLO engine with burn-rate alerts, and the
  typed :class:`~repro.serve.monitor.ServiceHealth` snapshot behind
  ``MatchService.health()``;
* :mod:`~repro.serve.loadgen` — closed-loop Zipf traffic generation;
* :mod:`~repro.serve.chaos` — the deterministic chaos harness asserting
  the never-a-wrong-answer contract under injected faults, each
  scenario additionally explained by a flight-recorder bundle.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.deadline import Clock, CostModel, Deadline, Ewma, ManualClock
from repro.serve.monitor import ServeMonitor, ServiceHealth
from repro.serve.pool import PoolEntry, SessionLane, SessionPool
from repro.serve.request import (
    REJECT_DEADLINE,
    REJECT_FAILED,
    REJECT_OVERLOADED,
    REJECT_UNAVAILABLE,
    REJECTION_KINDS,
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    DeadlineExceeded,
    MatchRequest,
    MatchResponse,
    Overloaded,
    Rejection,
    RequestFailed,
    ServeRejected,
    ServeResumeToken,
    Unavailable,
)
from repro.serve.service import MatchService, ServeConfig

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "OPEN",
    "Clock",
    "CostModel",
    "Deadline",
    "DeadlineExceeded",
    "Ewma",
    "ManualClock",
    "MatchRequest",
    "MatchResponse",
    "MatchService",
    "Overloaded",
    "PoolEntry",
    "REJECT_DEADLINE",
    "REJECT_FAILED",
    "REJECT_OVERLOADED",
    "REJECT_UNAVAILABLE",
    "REJECTION_KINDS",
    "Rejection",
    "RequestFailed",
    "STATUS_COMPLETE",
    "STATUS_PARTIAL",
    "STATUS_REJECTED",
    "ServeConfig",
    "ServeMonitor",
    "ServeRejected",
    "ServeResumeToken",
    "ServiceHealth",
    "SessionLane",
    "SessionPool",
    "Unavailable",
]
