"""The asyncio matching front-end: coalesce, route, degrade gracefully.

:class:`MatchService` is the serving story the ROADMAP asks for on top
of the warm-session layer: clients ``register`` a query set once (the
fingerprint key is stable across restarts), then ``submit`` match
requests concurrently.  Dispatcher tasks pull admitted requests off a
bounded queue, coalesce same-key requests into cost-model-sized batches,
and route each batch to an available :class:`~repro.serve.pool.
SessionPool` lane.

Robustness is the headline — every ``submit`` resolves to the typed
trichotomy of :mod:`repro.serve.request` (complete / correct partial
with resume token / typed rejection), never a wrong answer and never a
hung future:

* **deadlines** propagate into :class:`~repro.core.join.JoinBudget` via
  the :class:`~repro.serve.deadline.CostModel`, so a request that cannot
  finish in time truncates at a GMCR pair boundary and returns a correct
  prefix plus a :class:`~repro.serve.request.ServeResumeToken`;
* **admission control** sheds load with ``overloaded`` rejections before
  queueing when the queue is full or the queue-delay estimate already
  exceeds the deadline;
* **per-lane circuit breakers** trip on repeated failures; traffic
  routes around a tripped lane while the pool rebuilds its session, and
  ``unavailable`` rejections fire only when *every* lane is broken;
* **bounded retries** re-dispatch crashed/OOMed batches with exponential
  backoff and seeded jitter (idempotent: artifact fingerprints make a
  re-run of the same batch bitwise-identical); poison requests are
  isolated out of their batch and rejected so innocents retry at once.

Faults are injected through the same :class:`~repro.runtime.faults.
FaultPlan` machinery the resilient runtime uses, and all time flows
through a :class:`~repro.serve.deadline.Clock`, so the chaos harness
(:mod:`repro.serve.chaos`) drives every degraded path deterministically
on a virtual clock.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.results import MatchResult
from repro.device.memory import DeviceOutOfMemory
from repro.graph.batch import GraphBatch
from repro.io.serialization import graphs_fingerprint
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.pipeline.policies import RetryPolicy
from repro.runtime.faults import FaultPlan, PoisonQuery, WorkerCrash
from repro.serve.admission import AdmissionController
from repro.serve.deadline import Clock, CostModel, Deadline
from repro.serve.monitor import TRIGGER_CRASH, ServeMonitor, ServiceHealth
from repro.serve.pool import SessionLane, SessionPool
from repro.serve.request import (
    REJECT_DEADLINE,
    REJECT_FAILED,
    REJECT_UNAVAILABLE,
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    MatchRequest,
    MatchResponse,
    Rejection,
    ServeResumeToken,
)


@dataclass(frozen=True)
class ServeConfig:
    """Service-level tuning (engine tuning stays in ``SigmoConfig``).

    Attributes
    ----------
    replicas:
        Session lanes per registered query set.
    dispatchers:
        Concurrent dispatcher tasks (batches in flight at once).
    max_queued / requests_per_batch:
        Admission-control bounds (see :class:`~repro.serve.admission.
        AdmissionController`).
    max_batch_requests / target_batch_seconds:
        Coalescing bounds: a batch takes at most ``max_batch_requests``
        requests and at most the cost model's node capacity for
        ``target_batch_seconds`` of predicted service time.
    breaker_threshold / breaker_cooldown_s:
        Per-lane circuit-breaker tuning.
    backoff_base_s / backoff_factor / backoff_jitter / backoff_seed:
        Retry schedule for crashed/OOMed batches (seeded jitter, same
        discipline as :class:`~repro.pipeline.policies.RetryPolicy`).
    default_deadline_s:
        Deadline applied to requests that do not carry one (``None`` =
        unbounded).
    max_query_sets:
        LRU bound on warm registrations.
    """

    replicas: int = 2
    dispatchers: int = 2
    max_queued: int = 256
    requests_per_batch: float = 4.0
    max_batch_requests: int = 8
    target_batch_seconds: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    backoff_base_s: float = 0.005
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    backoff_seed: int = 0
    default_deadline_s: float | None = None
    max_query_sets: int = 32

    def __post_init__(self) -> None:
        if self.dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if self.target_batch_seconds <= 0:
            raise ValueError("target_batch_seconds must be positive")


@dataclass
class _Ticket:
    """Queue state of one admitted request.

    ``request_id`` / ``chain`` are the causal-trace identities (a resume
    hop keeps its own id but inherits the originator's chain from the
    token).  ``followers`` are fingerprint-equal requests deduplicated
    onto this ticket by :meth:`MatchService._coalesce`: the join runs
    once and the result fans out to every follower.
    """

    seq: int
    request: MatchRequest
    deadline: Deadline
    future: asyncio.Future
    submitted_at: float
    n_graphs: int
    n_nodes: int
    request_id: str = ""
    chain: str = ""
    start_pair: int = 0
    attempt: int = 0
    dispatched_at: float | None = None
    followers: "list[_Ticket]" = field(default_factory=list)
    _fingerprint: str | None = None

    def fingerprint(self) -> str:
        """Content hash of the request's data batch (computed once)."""
        if self._fingerprint is None:
            self._fingerprint = graphs_fingerprint(list(self.request.data))
        return self._fingerprint


class MatchService:
    """Batched, deadline-aware, overload-hardened matching service.

    Parameters
    ----------
    config:
        Engine configuration for new sessions.
    serve:
        Service tuning (:class:`ServeConfig`).
    clock:
        Time source; tests and the chaos harness pass a
        :class:`~repro.serve.deadline.ManualClock`.
    fault_plan:
        Deterministic fault injection (chaos only; ``None`` in
        production).  Crash/OOM decisions are keyed by ``(request seq,
        attempt)``, poison by request seq, stragglers by lane index.
    cost_model:
        Shared calibration state (a fresh one when ``None``).
    monitor:
        Serving-layer observability (:class:`~repro.serve.monitor.
        ServeMonitor`): always-on flight recorder + windowed SLO engine
        on the service clock.  Defaults to a stock monitor; pass
        ``ServeMonitor.disabled()`` to strip every hook.
    """

    def __init__(
        self,
        config: SigmoConfig | None = None,
        serve: ServeConfig | None = None,
        clock: Clock | None = None,
        fault_plan: FaultPlan | None = None,
        cost_model: CostModel | None = None,
        monitor: ServeMonitor | None = None,
    ) -> None:
        self.serve_config = serve or ServeConfig()
        cfg = self.serve_config
        self._clock = clock or Clock()
        self._fault_plan = fault_plan
        self.cost_model = cost_model or CostModel()
        self.monitor = monitor or ServeMonitor(
            deadline_s=cfg.default_deadline_s or 0.05
        )
        if self.monitor.enabled:
            # Clockless recorder sites (record_now) stamp service time.
            self.monitor.recorder.clock = self._clock.now
        self.pool = SessionPool(
            self._clock,
            config=config,
            replicas=cfg.replicas,
            max_query_sets=cfg.max_query_sets,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown_s=cfg.breaker_cooldown_s,
            on_breaker_transition=self.monitor.on_breaker_transition,
        )
        self.admission = AdmissionController(
            self._clock,
            self.cost_model,
            max_queued=cfg.max_queued,
            requests_per_batch=cfg.requests_per_batch,
        )
        # max_attempts here only shapes delay(); exhaustion is governed
        # by each request's own max_retries budget.
        self._retry = RetryPolicy(
            max_attempts=max(2, cfg.max_batch_requests),
            backoff_base=cfg.backoff_base_s,
            backoff_factor=cfg.backoff_factor,
            jitter=cfg.backoff_jitter,
            seed=cfg.backoff_seed,
        )
        self._queue: list[_Ticket] = []
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self._seq = 0
        self._batches = 0
        self._outstanding = 0
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatcher tasks (idempotent)."""
        if self._running:
            return
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._running = True
        self._tasks = [
            asyncio.create_task(self._dispatch_loop())
            for _ in range(self.serve_config.dispatchers)
        ]

    async def stop(self, drain: bool = True) -> None:
        """Stop dispatching; with ``drain`` resolve all in-flight work first.

        Requests still queued after a no-drain stop resolve with typed
        ``unavailable`` rejections — stopping never hangs a future.
        """
        if not self._running:
            return
        if drain:
            await self.drain()
        self._running = False
        self._wake.set()
        await asyncio.gather(*self._tasks)
        self._tasks = []
        for ticket in list(self._queue):
            self._queue.remove(ticket)
            self._finish(
                ticket,
                self._rejection_response(
                    ticket.seq,
                    Rejection(REJECT_UNAVAILABLE, "service stopped"),
                    attempts=ticket.attempt + 1,
                ),
            )

    async def drain(self) -> None:
        """Wait until every admitted request has resolved."""
        if self._idle is not None:
            await self._idle.wait()

    async def __aenter__(self) -> "MatchService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=exc == (None, None, None))

    # -- registration ------------------------------------------------------------

    def register(
        self,
        queries: Iterable | GraphBatch | CSRGO,
        config: SigmoConfig | None = None,
    ) -> str:
        """Compile (or recall) a query set; returns its fingerprint key."""
        return self.pool.register(queries, config=config)

    # -- submission --------------------------------------------------------------

    async def submit(self, request: MatchRequest) -> MatchResponse:
        """Submit one request; resolves to exactly one typed response."""
        if not self._running:
            raise RuntimeError("service is not started")
        metrics = get_metrics()
        seq = self._seq
        self._seq += 1
        request_id = request.request_id or f"req-{seq:06d}"
        chain = (
            request.resume.chain
            if request.resume is not None and request.resume.chain
            else request_id
        )
        metrics.count("serve.requests")
        if self.pool.entry(request.query_key) is None:
            return self._submit_rejection(
                seq, request_id, chain,
                Rejection(
                    REJECT_FAILED, f"unknown query_key {request.query_key!r}"
                ),
                where="registration",
            )
        start_pair = 0
        if request.resume is not None:
            problem = self._validate_resume(request)
            if problem is not None:
                return self._submit_rejection(
                    seq, request_id, chain,
                    Rejection(REJECT_FAILED, problem),
                    where="resume-validation",
                )
            start_pair = request.resume.next_pair
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.serve_config.default_deadline_s
        )
        deadline = Deadline.after(self._clock, deadline_s)
        decision = self.admission.decide(len(self._queue), deadline)
        if not decision.admitted:
            metrics.count("serve.shed")
            return self._submit_rejection(
                seq, request_id, chain, decision.rejection, where="admission"
            )
        ticket = _Ticket(
            seq=seq,
            request=request,
            deadline=deadline,
            future=asyncio.get_running_loop().create_future(),
            submitted_at=self._clock.now(),
            n_graphs=len(request.data),
            n_nodes=int(sum(g.n_nodes for g in request.data)),
            request_id=request_id,
            chain=chain,
            start_pair=start_pair,
        )
        self._queue.append(ticket)
        self._outstanding += 1
        self._idle.clear()
        metrics.gauge("serve.queue_depth", len(self._queue))
        self.monitor.on_admitted(
            self._clock.now(), request_id, chain, seq, len(self._queue)
        )
        self._wake.set()
        return await ticket.future

    def _submit_rejection(
        self,
        seq: int,
        request_id: str,
        chain: str,
        rejection: Rejection,
        where: str,
    ) -> MatchResponse:
        """A pre-queue rejection, recorded on the monitor."""
        self.monitor.on_rejected(
            self._clock.now(), request_id, chain, seq, rejection.kind, where
        )
        self.monitor.tick(self._clock.now())
        return self._rejection_response(
            seq, rejection, request_id=request_id, chain=chain
        )

    def _validate_resume(self, request: MatchRequest) -> str | None:
        """Reason the resume token cannot be honored, or ``None``."""
        token = request.resume
        if token.query_key != request.query_key:
            return (
                f"resume token is bound to query_key {token.query_key!r}, "
                f"not {request.query_key!r}"
            )
        data_hash = graphs_fingerprint(list(request.data))
        if token.data_hash != data_hash:
            return "resume token is bound to a different data batch"
        if token.next_pair < 0:
            return "resume token next_pair must be >= 0"
        return None

    # -- dispatching -------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """One dispatcher: pull, coalesce, run — sleep when nothing fits."""
        try:
            while self._running:
                # Clear-before-scan so a lane release / submit between the
                # failed scan and the wait cannot be lost.
                self._wake.clear()
                progressed = await self._dispatch_once()
                if progressed:
                    continue
                if not self._running:
                    break
                await self._wake.wait()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            # A dispatcher dying is the post-mortem case par excellence:
            # freeze the flight recorder before the stack unwinds.
            self.monitor.dump(
                TRIGGER_CRASH, context={"error": repr(exc)}
            )
            raise

    async def _dispatch_once(self) -> bool:
        """Try to resolve or dispatch something; ``True`` on progress."""
        expired = [
            t for t in self._queue if t.deadline.expired(self._clock)
        ]
        if expired:
            for ticket in expired:
                self._queue.remove(ticket)
                self._finish(
                    ticket,
                    self._rejection_response(
                        ticket.seq,
                        Rejection(
                            REJECT_DEADLINE,
                            "deadline expired while queued",
                        ),
                        attempts=ticket.attempt + 1,
                    ),
                )
            return True
        blocked: set[str] = set()
        for ticket in list(self._queue):
            if ticket not in self._queue:
                continue
            key = ticket.request.query_key
            if key in blocked:
                continue
            entry = self.pool.entry(key)
            if entry is None:
                # LRU-evicted between admission and dispatch.
                self._queue.remove(ticket)
                self._finish(
                    ticket,
                    self._rejection_response(
                        ticket.seq,
                        Rejection(
                            REJECT_UNAVAILABLE, "query set evicted from pool"
                        ),
                        attempts=ticket.attempt + 1,
                    ),
                )
                return True
            lane = self.pool.acquire(key)
            if lane is None:
                if not entry.any_healthy_possible():
                    self._reject_key(key, "every session lane's breaker is open")
                    return True
                blocked.add(key)
                continue
            batch = self._coalesce(ticket)
            get_metrics().gauge("serve.queue_depth", len(self._queue))
            await self._run_batch(lane, batch)
            return True
        return False

    def _reject_key(self, key: str, detail: str) -> None:
        """Resolve every queued ticket of ``key`` with ``unavailable``."""
        for ticket in [
            t for t in self._queue if t.request.query_key == key
        ]:
            self._queue.remove(ticket)
            self._finish(
                ticket,
                self._rejection_response(
                    ticket.seq,
                    Rejection(REJECT_UNAVAILABLE, detail),
                    attempts=ticket.attempt + 1,
                ),
            )

    def _coalesce(self, head: _Ticket) -> list[_Ticket]:
        """Pull a batch led by ``head`` out of the queue.

        Same key, same mode, fresh (non-resume) requests only, bounded by
        ``max_batch_requests`` and the cost model's node capacity for
        ``target_batch_seconds``.  Resume requests run solo so the
        truncation point stays a pure function of the request's own
        batch.

        **Deduplication:** a queued request whose data batch is
        fingerprint-equal to a request already in the wave does not join
        the batch — it becomes a *follower* of that member: the join
        runs once and :meth:`_split_and_finish` fans the one result out
        to every follower.  Followers cost no batch slots and no node
        budget (hot Zipf keys collapse to a single join), counted in
        ``serve.coalesce.dedup_hits``.  Identity of the data list is the
        fast path; distinct-but-equal lists fall back to the content
        hash.
        """
        self._queue.remove(head)
        batch = [head]
        if head.start_pair or head.request.resume is not None:
            return batch
        node_limit = self.cost_model.batch_node_limit(
            self.serve_config.target_batch_seconds
        )
        nodes = head.n_nodes
        for ticket in list(self._queue):
            if ticket.request.query_key != head.request.query_key:
                continue
            if ticket.request.mode != head.request.mode:
                continue
            if ticket.start_pair or ticket.request.resume is not None:
                continue
            primary = self._dedup_primary(batch, ticket)
            if primary is not None:
                self._queue.remove(ticket)
                primary.followers.append(ticket)
                get_metrics().count("serve.coalesce.dedup_hits")
                self.monitor.on_dedup(
                    self._clock.now(),
                    ticket.request_id,
                    primary.request_id,
                    f"batch-{self._batches:05d}",
                )
                continue
            if len(batch) >= self.serve_config.max_batch_requests:
                continue
            if nodes + ticket.n_nodes > node_limit:
                continue
            self._queue.remove(ticket)
            batch.append(ticket)
            nodes += ticket.n_nodes
        return batch

    @staticmethod
    def _dedup_primary(
        batch: list[_Ticket], candidate: _Ticket
    ) -> _Ticket | None:
        """The batch member ``candidate`` duplicates, or ``None``."""
        for member in batch:
            if candidate.request.data is member.request.data:
                return member
        for member in batch:
            if candidate.fingerprint() == member.fingerprint():
                return member
        return None

    # -- batch execution ---------------------------------------------------------

    @staticmethod
    def _members(tickets: list[_Ticket]) -> list[_Ticket]:
        """Every request riding the batch: primaries plus followers."""
        out: list[_Ticket] = []
        for ticket in tickets:
            out.append(ticket)
            out.extend(ticket.followers)
        return out

    def _expire_or_promote(
        self, tickets: list[_Ticket], now: float
    ) -> list[_Ticket]:
        """Reject expired members; keep each dedup group's live head.

        A primary whose deadline expired at dispatch hands its role to
        its first unexpired follower (same data, so the batch shape is
        unchanged); expired followers are rejected in place.
        """
        live: list[_Ticket] = []
        for ticket in tickets:
            group = [ticket, *ticket.followers]
            ticket.followers = []
            survivors: list[_Ticket] = []
            for member in group:
                member.dispatched_at = now
                if member.deadline.expired(self._clock):
                    self._finish(
                        member,
                        self._rejection_response(
                            member.seq,
                            Rejection(
                                REJECT_DEADLINE, "deadline expired at dispatch"
                            ),
                            attempts=member.attempt + 1,
                        ),
                    )
                else:
                    survivors.append(member)
            if survivors:
                head, *rest = survivors
                head.followers = rest
                live.append(head)
        return live

    async def _run_batch(
        self, lane: SessionLane, tickets: list[_Ticket]
    ) -> None:
        """Run one coalesced batch on ``lane`` and resolve its tickets."""
        metrics = get_metrics()
        batch_id = f"batch-{self._batches:05d}"
        self._batches += 1
        started = self._clock.now()
        tickets = self._expire_or_promote(tickets, started)
        if not tickets:
            self.pool.release(lane, ok=True)
            return
        members = self._members(tickets)
        metrics.count("serve.batches")
        metrics.observe("serve.batch_requests", float(len(members)))
        failure: Exception | None = None
        try:
            with get_tracer().span(
                "serve:batch",
                category="serve",
                lane=lane.lane_id,
                batch=batch_id,
                requests=len(tickets),
                seqs=[t.seq for t in tickets],
                request_ids=[t.request_id for t in tickets],
                member_request_ids=[t.request_id for t in members],
            ):
                await self._execute(lane, tickets)
        except PoisonQuery as exc:
            failure = exc
        except (WorkerCrash, DeviceOutOfMemory, MemoryError) as exc:
            failure = exc
        except Exception as exc:  # noqa: BLE001 — a hung future is worse
            # than a broad catch: any engine bug surfaces as a typed,
            # retried-then-rejected failure instead of a stuck client.
            failure = exc
        trips_before = lane.breaker.trips
        self.pool.release(lane, ok=failure is None)
        if lane.breaker.trips > trips_before:
            metrics.count("serve.breaker_trips")
        self.monitor.on_batch(
            self._clock.now(),
            batch_id,
            lane.lane_id,
            [t.request_id for t in tickets],
            [t.request_id for t in members],
            duration_s=self._clock.now() - started,
            outcome="ok" if failure is None else type(failure).__name__,
        )
        if failure is None:
            return
        if isinstance(failure, PoisonQuery):
            await self._isolate_poison(tickets, failure)
        else:
            await self._retry_or_fail(tickets, failure)

    async def _execute(
        self, lane: SessionLane, tickets: list[_Ticket]
    ) -> None:
        """Inject faults, run the join, split and resolve per ticket."""
        plan = self._fault_plan
        if plan is not None:
            # Followers are real requests: their seq can be the poison
            # (or crash/OOM) unit even though their data rides a
            # batch-mate's join.
            members = self._members(tickets)
            for ticket in members:
                plan.check_poison(ticket.seq)
            for ticket in members:
                plan.check_crash(ticket.seq, ticket.attempt)
                plan.check_oom(ticket.seq, ticket.attempt)
        head = tickets[0]
        remaining = min(t.deadline.remaining(self._clock) for t in tickets)
        budget = self.cost_model.budget_for(
            remaining, slowdown=lane.slowdown.value
        )
        data, graph_offsets = self._assemble(tickets)
        started = time.perf_counter()
        result = lane.session.match(
            data,
            mode=head.request.mode,
            join_budget=budget,
            join_start_pair=head.start_pair,
        )
        elapsed = time.perf_counter() - started
        factor = (
            plan.straggler_factor(lane.index) if plan is not None else 1.0
        )
        if factor > 1.0:
            # The lane already spent `elapsed` for real; simulate the
            # rest of the straggler's service time on the service clock.
            await self._clock.sleep(elapsed * (factor - 1.0))
        lane.slowdown.observe(factor)
        self.cost_model.observe_batch(
            elapsed * factor,
            visits=int(result.join_result.stats.candidate_visits),
            nodes=sum(t.n_nodes for t in tickets),
        )
        self._split_and_finish(lane, tickets, graph_offsets, result)

    @staticmethod
    def _assemble(tickets: list[_Ticket]) -> tuple[list, list[int]]:
        """The batch's data plus per-ticket graph offsets.

        A single-ticket batch passes the request's *own list object*
        through, preserving its identity for the session's data-cache
        (and its content hash for the artifact cache) — the warm path
        repeated clients rely on.
        """
        if len(tickets) == 1:
            return tickets[0].request.data, [0, tickets[0].n_graphs]
        combined: list = []
        offsets = [0]
        for ticket in tickets:
            combined.extend(ticket.request.data)
            offsets.append(len(combined))
        return combined, offsets

    def _split_and_finish(
        self,
        lane: SessionLane,
        tickets: list[_Ticket],
        graph_offsets: list[int],
        result: MatchResult,
    ) -> None:
        """Slice one batch result back into per-ticket responses.

        Validity of the split rides on per-graph filter independence: a
        request's GMCR pairs appear in the same relative order whether
        its batch ran solo or coalesced, so batch pair indices minus the
        request's pair offset *are* solo pair indices — which is exactly
        the coordinate system :class:`ServeResumeToken` promises.
        """
        jr = result.join_result
        pair_offsets = result.gmcr.data_graph_offsets
        resume_pair = jr.resume_pair if jr.truncated else None
        all_matches = result.matched_pairs()
        for i, ticket in enumerate(tickets):
            g0, g1 = graph_offsets[i], graph_offsets[i + 1]
            p0, p1 = int(pair_offsets[g0]), int(pair_offsets[g1])
            matches = [(d - g0, q) for d, q in all_matches if g0 <= d < g1]
            if jr.pair_matches is not None:
                total = int(np.asarray(jr.pair_matches[p0:p1]).sum())
            else:
                total = len(matches)
            complete = resume_pair is None or resume_pair >= p1
            next_pair = 0 if complete else max(resume_pair - p0, 0)
            # The primary's result fans out to every deduplicated
            # follower: same matches, each follower's own identity (and
            # its own chain on the resume token, so resume hops stay
            # causally attributable per client).
            for member in (ticket, *ticket.followers):
                if complete:
                    response = MatchResponse(
                        seq=member.seq,
                        status=STATUS_COMPLETE,
                        matches=list(matches),
                        total_matches=total,
                        attempts=member.attempt + 1,
                        lane=lane.lane_id,
                    )
                else:
                    token = ServeResumeToken(
                        query_key=member.request.query_key,
                        data_hash=member.fingerprint(),
                        next_pair=next_pair,
                        chain=member.chain,
                    )
                    response = MatchResponse(
                        seq=member.seq,
                        status=STATUS_PARTIAL,
                        matches=list(matches),
                        total_matches=total,
                        resume=token,
                        truncate_reason=jr.truncate_reason,
                        attempts=member.attempt + 1,
                        lane=lane.lane_id,
                    )
                self._finish(member, response)
            ticket.followers = []

    # -- failure handling --------------------------------------------------------

    async def _isolate_poison(
        self, tickets: list[_Ticket], exc: PoisonQuery
    ) -> None:
        """Reject the poison request; requeue its innocent batch-mates.

        The culprit is named by the exception, so isolation is surgical:
        innocents go back to the queue *front* with their attempt count
        untouched — the failure was not theirs to pay for.
        """
        get_metrics().count("serve.poison")
        survivors = []
        for ticket in self._members(tickets):
            ticket.followers = []
            if ticket.seq == exc.request:
                self._finish(
                    ticket,
                    self._rejection_response(
                        ticket.seq,
                        Rejection(
                            REJECT_FAILED,
                            f"poison query: {exc}",
                        ),
                        attempts=ticket.attempt + 1,
                    ),
                )
            else:
                survivors.append(ticket)
        self._requeue(survivors)

    async def _retry_or_fail(
        self, tickets: list[_Ticket], exc: Exception
    ) -> None:
        """Charge one attempt to every ticket; back off, requeue, or reject.

        Followers pay too: they were members of the failed batch (their
        seq may even have been the crash unit), and leaving their attempt
        counter untouched would let a follower-targeted fault re-fire
        identically forever.
        """
        metrics = get_metrics()
        retryable: list[_Ticket] = []
        for ticket in self._members(tickets):
            ticket.followers = []
            ticket.attempt += 1
            if ticket.attempt > ticket.request.max_retries:
                self._finish(
                    ticket,
                    self._rejection_response(
                        ticket.seq,
                        Rejection(
                            REJECT_FAILED,
                            f"retries exhausted after {ticket.attempt} "
                            f"attempts: {exc}",
                        ),
                        attempts=ticket.attempt,
                    ),
                )
            else:
                retryable.append(ticket)
        if not retryable:
            return
        metrics.count("serve.retries", len(retryable))
        for ticket in retryable:
            self.monitor.on_retry(
                self._clock.now(), ticket.request_id, ticket.seq,
                ticket.attempt, repr(exc),
            )
        delay = max(
            self._retry.delay(t.attempt, unit=t.seq) for t in retryable
        )
        if delay > 0:
            await self._clock.sleep(delay)
        self._requeue(retryable)

    def _requeue(self, tickets: list[_Ticket]) -> None:
        """Put tickets back at the queue front (they waited already)."""
        live = [t for t in tickets if not t.future.done()]
        if not live:
            return
        self._queue[:0] = live
        get_metrics().gauge("serve.queue_depth", len(self._queue))
        self._wake.set()

    # -- resolution --------------------------------------------------------------

    def _rejection_response(
        self,
        seq: int,
        rejection: Rejection,
        attempts: int = 1,
        request_id: str = "",
        chain: str = "",
    ) -> MatchResponse:
        """A rejected response, with its rejection-kind counter bumped.

        Used both for pre-queue rejections (returned directly from
        ``submit``) and as the payload handed to :meth:`_finish`.
        """
        get_metrics().count(f"serve.rejected.{rejection.kind}")
        get_metrics().count(f"serve.responses.{STATUS_REJECTED}")
        return MatchResponse(
            seq=seq,
            status=STATUS_REJECTED,
            rejection=rejection,
            attempts=attempts,
            request_id=request_id,
            chain=chain,
        )

    def _finish(self, ticket: _Ticket, response: MatchResponse) -> None:
        """Resolve a ticket exactly once, stamping latency metrics."""
        if ticket.future.done():
            return
        metrics = get_metrics()
        now = self._clock.now()
        response.request_id = response.request_id or ticket.request_id
        response.chain = response.chain or ticket.chain
        response.latency_s = now - ticket.submitted_at
        response.queue_delay_s = (
            (ticket.dispatched_at if ticket.dispatched_at is not None else now)
            - ticket.submitted_at
        )
        if response.status != STATUS_REJECTED:
            metrics.count(f"serve.responses.{response.status}")
        metrics.observe("serve.latency_s", response.latency_s)
        metrics.observe("serve.queue_delay_s", response.queue_delay_s)
        ticket.future.set_result(response)
        self._outstanding -= 1
        if self._outstanding <= 0 and self._idle is not None:
            self._idle.set()
        self.monitor.on_finished(
            now,
            response.request_id,
            response.chain,
            ticket.seq,
            response.status,
            response.lane,
            response.latency_s,
            response.resume is not None,
        )

    # -- telemetry ---------------------------------------------------------------

    def health(self) -> ServiceHealth:
        """Typed point-in-time health snapshot (dashboard, tests).

        Ticks the SLO clock first, so the returned window summary and
        active-alert set are current as of the service clock's *now*.
        """
        now = self._clock.now()
        self.monitor.tick(now)
        return ServiceHealth(
            at_s=now,
            running=self._running,
            queue_depth=len(self._queue),
            outstanding=self._outstanding,
            requests=self._seq,
            pool_occupancy=self.pool.occupancy(),
            lanes=self.pool.lane_snapshots(),
            window=self.monitor.window_summary(),
            active_alerts=(
                self.monitor.engine.active_alerts()
                if self.monitor.enabled
                else []
            ),
            recorder=self.monitor.recorder_summary(),
        )

    def snapshot(self) -> dict:
        """Service-wide state for the CLI and tests."""
        return {
            "running": self._running,
            "queue_depth": len(self._queue),
            "outstanding": self._outstanding,
            "requests": self._seq,
            "admission": self.admission.stats.as_dict(),
            "cost_model": {
                "visits_per_second": self.cost_model.visits_per_second.value,
                "seconds_per_batch": self.cost_model.seconds_per_batch.value,
                "nodes_per_second": self.cost_model.nodes_per_second.value,
            },
            "pool": self.pool.snapshot(),
        }
