"""Per-session-lane circuit breakers.

A lane whose session keeps failing (worker crashes, OOMs) should stop
receiving traffic *before* it burns every request's retry budget: the
breaker trips after ``failure_threshold`` consecutive failures, the pool
rebuilds the lane's session behind it, and the router sends traffic to
the remaining healthy lanes.  After ``cooldown_s`` on the service clock
the breaker admits one half-open trial; success closes it, failure
re-opens it for another cooldown.

The state machine is the textbook three-state breaker, driven entirely
by the injected :class:`~repro.serve.deadline.Clock` so chaos tests can
step through trip → cooldown → half-open → close deterministically.
"""

from __future__ import annotations

from typing import Callable

from repro.serve.deadline import Clock

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with clock-driven half-open recovery.

    Examples
    --------
    >>> from repro.serve.deadline import ManualClock
    >>> clock = ManualClock()
    >>> b = CircuitBreaker(clock, failure_threshold=2, cooldown_s=1.0)
    >>> b.record_failure(); b.record_failure(); b.state
    'open'
    >>> b.allows()
    False
    >>> clock.advance(1.0); b.allows()  # admits the half-open trial
    True
    >>> b.record_success(); b.state
    'closed'
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        name: str = "",
        on_transition: "Callable[[float, str, str, str], None] | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        #: Identity reported to the transition listener (the lane id).
        self.name = name
        #: Observability hook: called as ``(at_s, name, old, new)`` on
        #: every state change (the serve monitor records these and
        #: auto-dumps a flight-recorder bundle on a trip).
        self.on_transition = on_transition

    def _set_state(self, new: str) -> None:
        old = self.state
        if new == old:
            return
        self.state = new
        if self.on_transition is not None:
            self.on_transition(self._clock.now(), self.name, old, new)

    def allows(self) -> bool:
        """Whether a new dispatch may use this lane right now.

        An ``open`` breaker past its cooldown transitions to
        ``half-open`` and admits exactly one in-flight trial.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock.now() - self._opened_at >= self.cooldown_s:
                self._set_state(HALF_OPEN)
                self._trial_in_flight = False
            else:
                return False
        # half-open: one trial at a time
        if self._trial_in_flight:
            return False
        self._trial_in_flight = True
        return True

    def record_success(self) -> None:
        """A dispatch on this lane completed (closes a half-open trial)."""
        self.consecutive_failures = 0
        self._trial_in_flight = False
        self._set_state(CLOSED)

    def record_failure(self) -> None:
        """A dispatch on this lane failed; trip past the threshold.

        A failed half-open trial re-opens immediately regardless of the
        threshold — the lane had exactly one chance to prove recovery.
        """
        self.consecutive_failures += 1
        was_trial = self.state == HALF_OPEN
        self._trial_in_flight = False
        if was_trial or self.consecutive_failures >= self.failure_threshold:
            if self.state != OPEN:
                self.trips += 1
            self._opened_at = self._clock.now()
            self._set_state(OPEN)

    def as_dict(self) -> dict:
        """Telemetry snapshot."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }
