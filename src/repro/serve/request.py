"""Typed requests, responses, and rejections of the matching service.

The service's robustness contract is encoded in these types: every
``submit`` resolves to exactly one :class:`MatchResponse` whose status is

* ``complete`` — the full, exact match set for the request;
* ``partial`` — a *correct prefix* of the match set (the pairs joined
  before the deadline-derived :class:`~repro.core.join.JoinBudget`
  fired) plus a usable :class:`ServeResumeToken`; resubmitting the token
  yields the remainder, and the concatenation equals the uninterrupted
  run bitwise;
* ``rejected`` — no result, with a typed :class:`Rejection` naming the
  reason (overload shed, expired deadline, no healthy session, exhausted
  retries).

The service never returns a wrong answer: a response either carries
verified-correct matches or a machine-readable reason why it carries
none.  The chaos harness (:mod:`repro.serve.chaos`) asserts exactly this
trichotomy under injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.join import FIND_ALL, FIND_FIRST

#: Response statuses (the full vocabulary — there is no fourth outcome).
STATUS_COMPLETE = "complete"
STATUS_PARTIAL = "partial"
STATUS_REJECTED = "rejected"

#: Typed rejection kinds.
REJECT_OVERLOADED = "overloaded"
REJECT_DEADLINE = "deadline-exceeded"
REJECT_UNAVAILABLE = "unavailable"
REJECT_FAILED = "request-failed"

REJECTION_KINDS = (
    REJECT_OVERLOADED,
    REJECT_DEADLINE,
    REJECT_UNAVAILABLE,
    REJECT_FAILED,
)


@dataclass(frozen=True)
class Rejection:
    """Machine-readable reason a request produced no result.

    Attributes
    ----------
    kind:
        One of :data:`REJECTION_KINDS`.
    detail:
        Human-readable elaboration (telemetry/logs, not for dispatch).
    retry_after_s:
        Suggested client backoff (load shedding sets it to the estimated
        queue drain time; ``None`` means retrying is pointless).
    """

    kind: str
    detail: str = ""
    retry_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in REJECTION_KINDS:
            raise ValueError(f"unknown rejection kind {self.kind!r}")


class ServeRejected(Exception):
    """Raise-style view of a rejection (``MatchResponse.raise_for_status``)."""

    def __init__(self, rejection: Rejection) -> None:
        super().__init__(f"{rejection.kind}: {rejection.detail}")
        self.rejection = rejection


class Overloaded(ServeRejected):
    """The admission controller shed this request (queue full or the
    queue-delay estimate already exceeds the request's deadline)."""


class DeadlineExceeded(ServeRejected):
    """The deadline expired before any join work could be attempted."""


class Unavailable(ServeRejected):
    """Every session lane for the query set has a tripped breaker."""


class RequestFailed(ServeRejected):
    """The retry budget was exhausted (e.g. a poison query that fails on
    every healthy session) or the resume token was invalid."""


_REJECTION_ERRORS = {
    REJECT_OVERLOADED: Overloaded,
    REJECT_DEADLINE: DeadlineExceeded,
    REJECT_UNAVAILABLE: Unavailable,
    REJECT_FAILED: RequestFailed,
}


@dataclass(frozen=True)
class ServeResumeToken:
    """Continuation point of a truncated (partial) response.

    ``next_pair`` is the first unprocessed GMCR pair index of a *solo*
    run of the request's own data batch.  Because candidate filtering is
    independent per data graph, the pair order of a request's graphs is
    identical whether the batch ran alone or coalesced with others, so
    the token is valid on any session with the same query-set
    fingerprint — including a freshly rebuilt one (see
    ``tests/runtime/test_cross_engine_resume.py`` for the engine-level
    guarantee this rides on).

    ``query_key`` / ``data_hash`` bind the token to its exact inputs;
    resubmitting it with different data is a typed ``request-failed``
    rejection, never a silently wrong merge.

    ``chain`` carries the *originating* request's id across resume hops,
    so every follow-up of a truncated request shares one causal chain id
    and ``repro trace-request <id>`` can reconstruct the whole story
    (admission wait, every batch each hop rode in, truncation points,
    final status) from the flight recorder.  Empty on tokens minted
    before request-scoped tracing existed — such tokens stay valid.
    """

    query_key: str
    data_hash: str
    next_pair: int
    chain: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the CLI prints this)."""
        payload = {
            "query_key": self.query_key,
            "data_hash": self.data_hash,
            "next_pair": self.next_pair,
        }
        if self.chain:
            payload["chain"] = self.chain
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeResumeToken":
        """Inverse of :meth:`to_dict`."""
        return cls(
            query_key=str(payload["query_key"]),
            data_hash=str(payload["data_hash"]),
            next_pair=int(payload["next_pair"]),
            chain=str(payload.get("chain", "")),
        )


@dataclass
class MatchRequest:
    """One client request: match a data batch against a registered query set.

    Attributes
    ----------
    query_key:
        Fingerprint returned by ``MatchService.register`` (the
        multi-tenant "register once, match forever" handle).
    data:
        The data batch — a list of ``LabeledGraph`` molecules.  Passing
        the *same list object* for repeated requests lets the warm
        session skip reconversion and recall cached filter artifacts.
    mode:
        ``find-all`` or ``find-first``.
    deadline_s:
        Relative latency budget; ``None`` means unbounded.  Propagates
        into admission (shed if the queue alone would consume it) and
        into a :class:`~repro.core.join.JoinBudget` sized by the cost
        model (truncate the join rather than blow through it).
    resume:
        Continuation token from a previous partial response; the request
        then joins only the remaining pairs.
    max_retries:
        Per-request retry budget against worker crashes/OOMs (backoff is
        exponential with seeded jitter).
    request_id:
        Client-supplied causal-trace id; the service assigns
        ``req-<seq>`` when empty.  A resume request keeps its *own*
        request id but inherits the originating request's ``chain``
        from the token.
    """

    query_key: str
    data: list
    mode: str = FIND_ALL
    deadline_s: float | None = None
    resume: ServeResumeToken | None = None
    max_retries: int = 2
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.mode not in (FIND_ALL, FIND_FIRST):
            raise ValueError(f"mode must be '{FIND_ALL}' or '{FIND_FIRST}'")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class MatchResponse:
    """The single, typed outcome of one submitted request.

    ``matches`` uses request-local indices: ``(data graph index within
    the request's own batch, query graph index within the registered
    set)`` — batching and routing never leak into the result shape.
    """

    seq: int
    status: str
    matches: list[tuple[int, int]] = field(default_factory=list)
    total_matches: int = 0
    resume: ServeResumeToken | None = None
    rejection: Rejection | None = None
    truncate_reason: str = ""
    attempts: int = 1
    lane: str = ""
    latency_s: float = 0.0
    queue_delay_s: float = 0.0
    request_id: str = ""
    chain: str = ""

    @property
    def ok(self) -> bool:
        """Whether the response carries (complete or partial) results."""
        return self.status in (STATUS_COMPLETE, STATUS_PARTIAL)

    def raise_for_status(self) -> "MatchResponse":
        """Return self, or raise the typed error for a rejection."""
        if self.status == STATUS_REJECTED:
            assert self.rejection is not None
            raise _REJECTION_ERRORS[self.rejection.kind](self.rejection)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (CLI output, chaos reports)."""
        payload: dict[str, Any] = {
            "seq": self.seq,
            "request_id": self.request_id,
            "chain": self.chain,
            "status": self.status,
            "total_matches": self.total_matches,
            "matches": [list(pair) for pair in self.matches],
            "attempts": self.attempts,
            "lane": self.lane,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
        }
        if self.resume is not None:
            payload["resume"] = self.resume.to_dict()
        if self.rejection is not None:
            payload["rejection"] = {
                "kind": self.rejection.kind,
                "detail": self.rejection.detail,
                "retry_after_s": self.rejection.retry_after_s,
            }
        if self.truncate_reason:
            payload["truncate_reason"] = self.truncate_reason
        return payload
