"""Deadlines, clocks, and the cost model that turns time into work.

Everything time-dependent in the service goes through a :class:`Clock`
so the chaos harness and the unit tests can drive a :class:`ManualClock`
deterministically (straggler slowdowns, breaker cooldowns, and backoff
sleeps advance virtual time instead of wall time).

The :class:`CostModel` is the deadline-to-budget translator: it keeps
EWMA estimates of the join's candidate-visit rate and of batch service
time, so a request arriving with ``deadline_s=0.05`` is dispatched with
``JoinBudget(max_visits=rate * remaining * safety)`` — the join then
truncates at a pair boundary instead of blowing the deadline, and the
client gets a correct partial result with a resume token.  The same
service-time estimate feeds admission control (shed when the queue alone
would consume the deadline) and batch sizing (coalesce until the batch
is predicted to take ``target_batch_seconds``).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass

from repro.core.join import JoinBudget


class Clock:
    """Monotonic wall clock (the production default)."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        """Asynchronously wait ``seconds``."""
        if seconds > 0:
            await asyncio.sleep(seconds)
        else:
            await asyncio.sleep(0)


class ManualClock(Clock):
    """Virtual clock for deterministic tests.

    ``sleep`` advances virtual time immediately (yielding once to the
    event loop so other tasks interleave), so simulated stragglers and
    backoff schedules run in microseconds of real time.  ``advance``
    moves time without yielding — for driving breaker cooldowns and
    deadline expiry from test code.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += seconds

    async def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds
        await asyncio.sleep(0)


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the service clock (``None`` = unbounded)."""

    at: float | None

    @classmethod
    def after(cls, clock: Clock, seconds: float | None) -> "Deadline":
        """Deadline ``seconds`` from now (``None`` = never)."""
        if seconds is None:
            return cls(at=None)
        return cls(at=clock.now() + seconds)

    def remaining(self, clock: Clock) -> float:
        """Seconds left (``inf`` when unbounded, clamped at 0)."""
        if self.at is None:
            return math.inf
        return max(0.0, self.at - clock.now())

    def expired(self, clock: Clock) -> bool:
        """Whether the deadline has passed."""
        return self.at is not None and clock.now() >= self.at


class Ewma:
    """Exponentially weighted moving average with a prior."""

    def __init__(self, initial: float, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.value = initial
        self.alpha = alpha
        self.samples = 0

    def observe(self, value: float) -> float:
        """Fold in one sample; returns the updated average."""
        self.value += self.alpha * (value - self.value)
        self.samples += 1
        return self.value


class CostModel:
    """Calibrated estimates translating deadlines into join budgets.

    Attributes
    ----------
    visits_per_second:
        EWMA of the join's candidate-visit throughput (the dominant work
        counter; see :class:`~repro.core.join.JoinBudget`).  Starts from
        a deliberately conservative prior and calibrates within a few
        batches.
    seconds_per_batch:
        EWMA of end-to-end batch service time — the admission
        controller's queue-delay unit.
    nodes_per_second:
        EWMA of data-node throughput — sizes coalesced batches so one
        batch is predicted to take ``target_batch_seconds``.
    """

    def __init__(
        self,
        visits_per_second: float = 200_000.0,
        seconds_per_batch: float = 0.05,
        nodes_per_second: float = 50_000.0,
        alpha: float = 0.3,
        min_budget_visits: int = 64,
        budget_safety: float = 0.5,
    ) -> None:
        if min_budget_visits < 1:
            raise ValueError("min_budget_visits must be >= 1")
        if not 0.0 < budget_safety <= 1.0:
            raise ValueError("budget_safety must be in (0, 1]")
        self.visits_per_second = Ewma(visits_per_second, alpha)
        self.seconds_per_batch = Ewma(seconds_per_batch, alpha)
        self.nodes_per_second = Ewma(nodes_per_second, alpha)
        self.min_budget_visits = min_budget_visits
        self.budget_safety = budget_safety

    # -- calibration -------------------------------------------------------------

    def observe_batch(
        self, seconds: float, visits: int, nodes: int
    ) -> None:
        """Fold one completed batch into the estimates."""
        if seconds <= 0:
            return
        self.seconds_per_batch.observe(seconds)
        if visits > 0:
            self.visits_per_second.observe(visits / seconds)
        if nodes > 0:
            self.nodes_per_second.observe(nodes / seconds)

    # -- translation -------------------------------------------------------------

    def budget_for(
        self, remaining_s: float, slowdown: float = 1.0
    ) -> JoinBudget | None:
        """Join budget for a deadline ``remaining_s`` away.

        ``slowdown`` is the target lane's observed straggler factor (a
        lane running 3x slow gets a 3x smaller visit budget for the same
        wall-clock deadline).  Unbounded deadlines get no budget.  The
        budget is floored at ``min_budget_visits`` so even a nearly
        expired request makes *some* progress — the partial-result
        contract needs forward motion to eventually drain a resume
        chain.
        """
        if math.isinf(remaining_s):
            return None
        rate = self.visits_per_second.value / max(slowdown, 1.0)
        visits = int(remaining_s * self.budget_safety * rate)
        return JoinBudget(max_visits=max(visits, self.min_budget_visits))

    def estimated_queue_delay(self, queued_batches: float) -> float:
        """Predicted wait for ``queued_batches`` batches ahead in line."""
        return queued_batches * self.seconds_per_batch.value

    def batch_node_limit(self, target_batch_seconds: float) -> int:
        """Data-node capacity of one coalesced batch.

        Sized so a batch is predicted to take ``target_batch_seconds``;
        floored at 1 so a single oversized request still dispatches (as
        its own batch) instead of starving.
        """
        return max(1, int(target_batch_seconds * self.nodes_per_second.value))
