"""Closed-loop Zipf traffic generation for the matching service.

Molecular-search traffic is heavily skewed: a few reference compound
sets are matched over and over while a long tail is touched once.  The
generator models that with a Zipf draw over a *pool of data batches* —
and, crucially for the serving layer's warm path, repeated draws return
the *same list object*, so the session's identity-keyed conversion cache
and the fingerprint-keyed artifact cache both hit exactly as they would
for a real repeated client.

The loop is *closed*: each simulated client submits, awaits the typed
response (optionally following resume chains of partial responses), then
issues its next request.  Offered load therefore adapts to service
capacity — the right model for benchmarking GoodPut under overload,
because an open loop would conflate queueing collapse with generator
pacing.  Everything is seeded; two runs with the same arguments submit
the identical request sequence per client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serve.request import (
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    MatchRequest,
    MatchResponse,
)
from repro.serve.service import MatchService


class ZipfSampler:
    """Seeded Zipf(``exponent``) draw over ``n`` items (rank 0 hottest).

    Probability of rank ``r`` is proportional to ``1 / (r + 1) **
    exponent``; ``exponent=0`` degenerates to uniform.
    """

    def __init__(
        self, n: int, exponent: float = 1.1, seed: int | list[int] = 0
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** exponent
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(seed)
        self.n = n

    def sample(self) -> int:
        """Next item index."""
        return int(self._rng.choice(self.n, p=self._probs))


@dataclass
class LoadResult:
    """Aggregate outcome of one closed-loop load run."""

    responses: list[MatchResponse] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_requests(self) -> int:
        """Responses collected (resume-chain hops included)."""
        return len(self.responses)

    def count(self, status: str) -> int:
        """Responses with the given status."""
        return sum(1 for r in self.responses if r.status == status)

    @property
    def goodput(self) -> float:
        """Completed-or-partial responses per wall second."""
        served = self.count(STATUS_COMPLETE) + self.count(STATUS_PARTIAL)
        return served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile over non-rejected responses (0 when empty)."""
        lat = [r.latency_s for r in self.responses if r.status != STATUS_REJECTED]
        if not lat:
            return 0.0
        return float(np.percentile(np.asarray(lat), pct))

    def as_dict(self) -> dict:
        """JSON-ready summary (benchmarks, CLI)."""
        return {
            "n_requests": self.n_requests,
            "complete": self.count(STATUS_COMPLETE),
            "partial": self.count(STATUS_PARTIAL),
            "rejected": self.count(STATUS_REJECTED),
            "wall_seconds": self.wall_seconds,
            "goodput_rps": self.goodput,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p99_s": self.latency_percentile(99),
        }


async def run_load(
    service: MatchService,
    query_key: str,
    batches: list[list],
    n_clients: int = 4,
    requests_per_client: int = 8,
    zipf_exponent: float = 1.1,
    deadline_s: float | None = None,
    max_retries: int = 2,
    follow_resume: bool = True,
    max_resume_hops: int = 32,
    seed: int = 0,
) -> LoadResult:
    """Drive ``n_clients`` closed-loop clients against a started service.

    Each client draws its batch from ``batches`` with a per-client-seeded
    Zipf sampler (``[seed, client]``), so the schedule is deterministic
    per client regardless of interleaving.  Partial responses are
    followed up to ``max_resume_hops`` resume submissions when
    ``follow_resume`` (each hop is its own response in the result).

    Wall time is measured on the *service clock*, so a
    :class:`~repro.serve.deadline.ManualClock` run reports virtual
    throughput.
    """
    import asyncio

    result = LoadResult()
    clock = service._clock

    async def client(idx: int) -> list[MatchResponse]:
        sampler = ZipfSampler(
            len(batches), exponent=zipf_exponent, seed=[seed, idx]
        )
        out: list[MatchResponse] = []
        for _ in range(requests_per_client):
            data = batches[sampler.sample()]
            response = await service.submit(
                MatchRequest(
                    query_key=query_key,
                    data=data,
                    deadline_s=deadline_s,
                    max_retries=max_retries,
                )
            )
            out.append(response)
            hops = 0
            while (
                follow_resume
                and response.status == STATUS_PARTIAL
                and hops < max_resume_hops
            ):
                response = await service.submit(
                    MatchRequest(
                        query_key=query_key,
                        data=data,
                        deadline_s=deadline_s,
                        max_retries=max_retries,
                        resume=response.resume,
                    )
                )
                out.append(response)
                hops += 1
        return out

    started = clock.now()
    per_client = await asyncio.gather(
        *[client(i) for i in range(n_clients)]
    )
    result.wall_seconds = clock.now() - started
    for responses in per_client:
        result.responses.extend(responses)
    return result
