"""Deterministic chaos harness: prove degradation is never a wrong answer.

Each scenario builds a :class:`~repro.serve.service.MatchService` on a
:class:`~repro.serve.deadline.ManualClock` with a seeded
:class:`~repro.runtime.faults.FaultPlan`, runs a fixed request schedule,
and verifies the service's robustness contract response by response:

* a ``complete`` response must equal the solo fresh-engine result for
  its request **exactly** (same total, same matched pairs);
* a ``partial`` response must carry a resume token, and its matches must
  be a subset of the solo result; when the harness drains the resume
  chain, the accumulated union must equal the solo result exactly;
* a ``rejected`` response must carry a typed rejection kind and no
  matches.

There is no fourth outcome, and there is no tolerance: a single
mismatched pair anywhere is a violation.  Because every fault decision
is a pure function of ``(seed, kind, unit, attempt)`` and all time is
virtual, a failing scenario replays bit-for-bit.

Scenarios cover the ISSUE's fault menu: session crashes (retried with
jittered backoff), stragglers (deadline budgets shrink, not blow), OOMs,
poison queries (isolated and rejected, innocents unharmed), and 2x
overload (typed sheds, no latency collapse).

Every scenario additionally finishes with at least one flight-recorder
**post-mortem bundle** on its report: auto-dumps collected along the way
(breaker trips, page-severity SLO burns) plus a final scenario bundle —
``chaos-violation`` when the contract broke, ``manual`` otherwise — so a
failing run always carries the event ring that explains *why*.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.runtime.faults import FaultPlan
from repro.serve.deadline import ManualClock
from repro.serve.monitor import TRIGGER_CHAOS, TRIGGER_MANUAL
from repro.serve.request import (
    REJECTION_KINDS,
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    MatchRequest,
    MatchResponse,
)
from repro.serve.service import MatchService, ServeConfig

#: Scenario registry (name -> coroutine factory), filled by _scenario.
SCENARIOS: dict = {}


def _scenario(name: str):
    def register(fn):
        SCENARIOS[name] = fn
        return fn

    return register


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    scenario: str
    responses: list[MatchResponse] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    notes: dict = field(default_factory=dict)
    #: Post-mortem bundles collected from the service's flight recorder
    #: (auto-dumps plus the final scenario bundle).
    bundles: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the contract held for every response."""
        return not self.violations

    def count(self, status: str) -> int:
        """Responses with the given status."""
        return sum(1 for r in self.responses if r.status == status)

    def as_dict(self) -> dict:
        """JSON-ready summary (the CLI prints this)."""
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "responses": len(self.responses),
            "complete": self.count(STATUS_COMPLETE),
            "partial": self.count(STATUS_PARTIAL),
            "rejected": self.count(STATUS_REJECTED),
            "violations": list(self.violations),
            "notes": dict(self.notes),
            "bundles": [b["trigger"] for b in self.bundles],
        }


def _finalize(report: ChaosReport, service: MatchService) -> None:
    """Freeze the scenario's post-mortem story onto its report.

    Dumps one final bundle — ``chaos-violation`` (with the violation
    list in the context) when the contract broke, ``manual`` otherwise —
    then copies every bundle the monitor collected (breaker trips,
    page-severity SLO burns, the final one) onto the report.
    """
    monitor = service.monitor
    if not monitor.enabled:
        return
    if report.violations:
        monitor.dump(
            TRIGGER_CHAOS,
            context={
                "scenario": report.scenario,
                "violations": list(report.violations),
            },
        )
    else:
        monitor.dump(TRIGGER_MANUAL, context={"scenario": report.scenario})
    report.bundles = list(monitor.bundles)
    report.notes["bundle_triggers"] = [b["trigger"] for b in report.bundles]


class _Workload:
    """Shared fixture: query set, data batches, and solo ground truth."""

    def __init__(self, seed: int = 0) -> None:
        dataset = build_benchmark(
            scale=1.0, n_queries=5, n_data_graphs=24, seed=seed
        )
        self.config = SigmoConfig(refinement_iterations=2)
        self.queries = dataset.queries
        # Distinct, reused batch objects (the Zipf-pool shape).
        self.batches = [
            dataset.data[0:8],
            dataset.data[8:16],
            dataset.data[16:24],
            dataset.data[4:12],
        ]
        self._truth: dict[int, tuple[int, list[tuple[int, int]]]] = {}

    def truth(self, batch_index: int) -> tuple[int, list[tuple[int, int]]]:
        """Solo fresh-engine (total, matched pairs) for one batch."""
        if batch_index not in self._truth:
            result = SigmoEngine(
                self.queries, self.batches[batch_index], self.config
            ).run()
            self._truth[batch_index] = (
                result.total_matches,
                sorted(result.matched_pairs()),
            )
        return self._truth[batch_index]

    def service(
        self,
        fault_plan: FaultPlan | None = None,
        serve: ServeConfig | None = None,
    ) -> tuple[MatchService, ManualClock, str]:
        """A registered service on a fresh virtual clock."""
        clock = ManualClock()
        service = MatchService(
            config=self.config,
            serve=serve or ServeConfig(replicas=2, dispatchers=2),
            clock=clock,
            fault_plan=fault_plan,
        )
        key = service.register(self.queries)
        return service, clock, key


def _verify(
    report: ChaosReport,
    response: MatchResponse,
    expected_total: int,
    expected_pairs: list[tuple[int, int]],
    continuation: bool = False,
) -> None:
    """Check one response against the trichotomy contract.

    A ``continuation`` (resume-chain hop) carries only the *tail* of the
    match set, so its ``complete`` is checked as a subset here; the
    chain-accumulation check in :func:`_submit_and_drain` is the exact
    one.
    """
    if response.status == STATUS_COMPLETE:
        if continuation:
            if not set(response.matches) <= set(expected_pairs):
                report.violations.append(
                    f"seq {response.seq}: continuation contains pairs the "
                    "solo engine never matched"
                )
        elif response.total_matches != expected_total or sorted(
            response.matches
        ) != expected_pairs:
            report.violations.append(
                f"seq {response.seq}: complete response differs from the "
                f"solo engine result ({response.total_matches} vs "
                f"{expected_total} matches)"
            )
    elif response.status == STATUS_PARTIAL:
        if response.resume is None:
            report.violations.append(
                f"seq {response.seq}: partial response without resume token"
            )
        if not set(response.matches) <= set(expected_pairs):
            report.violations.append(
                f"seq {response.seq}: partial response contains pairs the "
                "solo engine never matched"
            )
    elif response.status == STATUS_REJECTED:
        if response.rejection is None or (
            response.rejection.kind not in REJECTION_KINDS
        ):
            report.violations.append(
                f"seq {response.seq}: rejection without a typed kind"
            )
        if response.matches:
            report.violations.append(
                f"seq {response.seq}: rejected response carries matches"
            )
    else:
        report.violations.append(
            f"seq {response.seq}: unknown status {response.status!r}"
        )


async def _submit_and_drain(
    service: MatchService,
    report: ChaosReport,
    key: str,
    workload: _Workload,
    batch_index: int,
    deadline_s: float | None = None,
    max_retries: int = 2,
    max_hops: int = 64,
) -> None:
    """Submit one request, verify it, and drain any resume chain.

    A drained chain must accumulate to *exactly* the solo result; a
    chain that ends in a typed rejection is accepted as degraded-but-
    honest (the accumulated prefix was still verified correct).
    """
    expected_total, expected_pairs = workload.truth(batch_index)
    data = workload.batches[batch_index]
    response = await service.submit(
        MatchRequest(
            query_key=key,
            data=data,
            deadline_s=deadline_s,
            max_retries=max_retries,
        )
    )
    report.responses.append(response)
    _verify(report, response, expected_total, expected_pairs)
    accumulated = list(response.matches)
    total = response.total_matches
    hops = 0
    while response.status == STATUS_PARTIAL and hops < max_hops:
        response = await service.submit(
            MatchRequest(
                query_key=key,
                data=data,
                deadline_s=deadline_s,
                max_retries=max_retries,
                resume=response.resume,
            )
        )
        report.responses.append(response)
        _verify(
            report, response, expected_total, expected_pairs, continuation=True
        )
        accumulated.extend(response.matches)
        total += response.total_matches
        hops += 1
    if response.status == STATUS_COMPLETE and hops > 0:
        if total != expected_total or sorted(accumulated) != expected_pairs:
            report.violations.append(
                f"drained resume chain for batch {batch_index} does not "
                f"reassemble the solo result ({total} vs {expected_total})"
            )


@_scenario("crash")
async def scenario_crash(seed: int = 0) -> ChaosReport:
    """Every first attempt of two requests crashes; retries recover."""
    report = ChaosReport("crash")
    workload = _Workload(seed)
    plan = FaultPlan(seed=seed, crash_at=((0, 0), (1, 0)))
    service, _, key = workload.service(fault_plan=plan)
    async with service:
        await asyncio.gather(
            *[
                _submit_and_drain(service, report, key, workload, i % 4)
                for i in range(6)
            ]
        )
    retried = [r for r in report.responses if r.attempts > 1]
    if not retried:
        report.violations.append("no response records a retried attempt")
    if report.count(STATUS_COMPLETE) != len(report.responses):
        report.violations.append(
            "transient crashes must not surface to clients"
        )
    report.notes["retried"] = len(retried)
    _finalize(report, service)
    return report


@_scenario("session-crash-breaker")
async def scenario_breaker(seed: int = 0) -> ChaosReport:
    """A crash storm trips breakers; the pool rebuilds and recovers."""
    report = ChaosReport("session-crash-breaker")
    workload = _Workload(seed)
    # Crash every attempt below 3 for the first four requests: enough
    # consecutive failures to trip a threshold-2 breaker on both lanes.
    plan = FaultPlan(
        seed=seed,
        crash_at=tuple(
            (unit, attempt) for unit in range(4) for attempt in range(3)
        ),
    )
    serve = ServeConfig(
        replicas=2,
        dispatchers=2,
        breaker_threshold=2,
        breaker_cooldown_s=0.5,
        backoff_base_s=0.01,
    )
    service, clock, key = workload.service(fault_plan=plan, serve=serve)
    async with service:
        # Three crashes before success (crash_at covers attempts 0-2):
        # round-robin routing lands a second consecutive failure on a
        # lane before the retries clear, tripping its threshold-2
        # breaker and forcing a rebuild.
        await asyncio.gather(
            *[
                _submit_and_drain(
                    service, report, key, workload, i % 4, max_retries=3
                )
                for i in range(4)
            ]
        )
        trips = service.pool.snapshot()["rebuilds"]
        clock.advance(1.0)  # let breakers cool down to half-open
        await asyncio.gather(
            *[
                _submit_and_drain(service, report, key, workload, i % 4)
                for i in range(4)
            ]
        )
    if trips == 0:
        report.violations.append("crash storm never tripped a breaker")
    late = report.responses[-4:]
    if any(r.status != STATUS_COMPLETE for r in late):
        report.violations.append(
            "service did not recover after breaker cooldown + rebuild"
        )
    report.notes["rebuilds"] = trips
    _finalize(report, service)
    return report


@_scenario("straggler")
async def scenario_straggler(seed: int = 0) -> ChaosReport:
    """A 4x-slow lane degrades deadlines into partials, not wrong answers."""
    report = ChaosReport("straggler")
    workload = _Workload(seed)
    plan = FaultPlan(seed=seed, stragglers=(0,), straggler_slowdown=4.0)
    service, _, key = workload.service(fault_plan=plan)
    async with service:
        await asyncio.gather(
            *[
                _submit_and_drain(
                    service, report, key, workload, i % 4, deadline_s=0.002
                )
                for i in range(8)
            ]
        )
    slowdowns = [
        lane["slowdown"]
        for lanes in service.pool.snapshot()["lanes"].values()
        for lane in lanes
    ]
    if max(slowdowns) <= 1.0:
        report.violations.append("straggler lane never observed a slowdown")
    report.notes["max_lane_slowdown"] = max(slowdowns)
    report.notes["partials"] = report.count(STATUS_PARTIAL)
    _finalize(report, service)
    return report


@_scenario("oom")
async def scenario_oom(seed: int = 0) -> ChaosReport:
    """Injected device OOMs retry; an always-OOM request fails typed."""
    report = ChaosReport("oom")
    workload = _Workload(seed)
    plan = FaultPlan(
        seed=seed,
        oom_at=((0, 0), (2, 0), (2, 1), (2, 2)),
    )
    # Single-request batches: the persistent OOM burns only its own
    # retry budget instead of its coalesced batch-mates'.
    serve = ServeConfig(replicas=2, dispatchers=2, max_batch_requests=1)
    service, _, key = workload.service(fault_plan=plan, serve=serve)
    async with service:
        await asyncio.gather(
            *[
                _submit_and_drain(service, report, key, workload, i % 4)
                for i in range(4)
            ]
        )
    rejected = [r for r in report.responses if r.status == STATUS_REJECTED]
    if not any(
        r.rejection is not None and "retries exhausted" in r.rejection.detail
        for r in rejected
    ):
        report.violations.append(
            "persistently OOMing request did not exhaust retries into a "
            "typed rejection"
        )
    if report.count(STATUS_COMPLETE) == 0:
        report.violations.append("transient OOMs should have recovered")
    report.notes["rejected"] = len(rejected)
    _finalize(report, service)
    return report


@_scenario("poison")
async def scenario_poison(seed: int = 0) -> ChaosReport:
    """A poison request is isolated and rejected; batch-mates succeed."""
    report = ChaosReport("poison")
    workload = _Workload(seed)
    plan = FaultPlan(seed=seed, poison_requests=(1,))
    # One dispatcher + one lane forces the poison to coalesce with
    # innocent neighbours, exercising the isolation path.
    serve = ServeConfig(replicas=1, dispatchers=1)
    service, _, key = workload.service(fault_plan=plan, serve=serve)
    async with service:
        await asyncio.gather(
            *[
                _submit_and_drain(service, report, key, workload, 0)
                for i in range(4)
            ]
        )
    poisoned = [r for r in report.responses if r.seq == 1]
    if not poisoned or poisoned[0].status != STATUS_REJECTED:
        report.violations.append("poison request was not rejected")
    innocents = [r for r in report.responses if r.seq != 1]
    if any(r.status != STATUS_COMPLETE for r in innocents):
        report.violations.append(
            "innocent batch-mates of the poison request did not complete"
        )
    _finalize(report, service)
    return report


@_scenario("overload")
async def scenario_overload(seed: int = 0) -> ChaosReport:
    """2x queue overload sheds typed ``overloaded``; the rest is served."""
    report = ChaosReport("overload")
    workload = _Workload(seed)
    serve = ServeConfig(
        replicas=1, dispatchers=1, max_queued=4, requests_per_batch=1.0
    )
    service, _, key = workload.service(serve=serve)
    async with service:
        # Twice the queue bound, submitted at once: the surplus must be
        # shed with typed rejections rather than queued into collapse.
        await asyncio.gather(
            *[
                _submit_and_drain(service, report, key, workload, i % 4)
                for i in range(8)
            ]
        )
    shed = service.admission.stats.shed
    if shed == 0:
        report.violations.append("overload never shed a request")
    for response in report.responses:
        if response.status == STATUS_REJECTED and (
            response.rejection is not None
            and response.rejection.kind == "overloaded"
            and response.rejection.retry_after_s is None
        ):
            report.violations.append(
                f"seq {response.seq}: overload shed without retry_after_s"
            )
    report.notes["shed"] = shed
    _finalize(report, service)
    return report


async def run_chaos(
    scenarios: list[str] | None = None, seed: int = 0
) -> list[ChaosReport]:
    """Run the named scenarios (all when ``None``); returns their reports."""
    names = scenarios or list(SCENARIOS)
    reports = []
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
            )
        reports.append(await SCENARIOS[name](seed=seed))
    return reports


def run_chaos_sync(
    scenarios: list[str] | None = None, seed: int = 0
) -> list[ChaosReport]:
    """Blocking wrapper around :func:`run_chaos` (the CLI entry)."""
    return asyncio.run(run_chaos(scenarios, seed=seed))
