"""Admission control: bounded queueing with deadline-aware load shedding.

The service's first line of overload defense runs *before* a request is
queued: a request is shed — with a typed ``overloaded`` rejection
carrying a ``retry_after_s`` hint — when either

* the queue is at its bound (``max_queued`` requests waiting), or
* the cost model's queue-delay estimate already exceeds the request's
  deadline, so admitting it would only burn service capacity on a
  response the client will consider dead on arrival.

Shedding at admission keeps the queue short and the queue-delay estimate
honest: under 2x overload the service degrades into a predictable mix of
served-within-deadline and fast typed rejections instead of a collapsing
latency tail (the classic GoodPut-vs-offered-load curve the chaos
harness's overload scenario checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serve.deadline import Clock, CostModel, Deadline
from repro.serve.request import REJECT_OVERLOADED, Rejection


@dataclass
class AdmissionStats:
    """Shed/admit counters of one controller (telemetry, tests)."""

    admitted: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0

    @property
    def shed(self) -> int:
        """Total requests shed."""
        return self.shed_queue_full + self.shed_deadline

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view."""
        return {
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
        }


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    rejection: Rejection | None = None
    estimated_delay_s: float = 0.0


@dataclass
class AdmissionController:
    """Bounded-queue admission with queue-delay estimation.

    Parameters
    ----------
    clock / cost_model:
        Shared with the service (the cost model's ``seconds_per_batch``
        EWMA is what turns queue depth into estimated delay).
    max_queued:
        Hard bound on requests waiting for dispatch; arrivals beyond it
        are shed unconditionally.
    requests_per_batch:
        Expected coalescing factor — queue depth in requests is divided
        by it before multiplying by the per-batch service estimate.
    """

    clock: Clock
    cost_model: CostModel
    max_queued: int = 256
    requests_per_batch: float = 4.0
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.requests_per_batch < 1:
            raise ValueError("requests_per_batch must be >= 1")

    def decide(self, queue_depth: int, deadline: Deadline) -> AdmissionDecision:
        """Admit or shed one arriving request.

        ``queue_depth`` is the number of requests already waiting; the
        arriving request would be ``queue_depth + 1``-th in line.
        """
        estimated = self.cost_model.estimated_queue_delay(
            queue_depth / self.requests_per_batch
        )
        if queue_depth >= self.max_queued:
            self.stats.shed_queue_full += 1
            return AdmissionDecision(
                admitted=False,
                rejection=Rejection(
                    kind=REJECT_OVERLOADED,
                    detail=f"queue full ({queue_depth} >= {self.max_queued})",
                    retry_after_s=estimated,
                ),
                estimated_delay_s=estimated,
            )
        remaining = deadline.remaining(self.clock)
        if not math.isinf(remaining) and estimated >= remaining:
            self.stats.shed_deadline += 1
            return AdmissionDecision(
                admitted=False,
                rejection=Rejection(
                    kind=REJECT_OVERLOADED,
                    detail=(
                        f"estimated queue delay {estimated:.3f}s exceeds "
                        f"deadline budget {remaining:.3f}s"
                    ),
                    retry_after_s=estimated,
                ),
                estimated_delay_s=estimated,
            )
        self.stats.admitted += 1
        return AdmissionDecision(admitted=True, estimated_delay_s=estimated)
