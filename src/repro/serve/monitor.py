"""Serve-side observability: SLO engine + flight recorder, composed.

:class:`ServeMonitor` is the glue between the generic pieces in
:mod:`repro.obs.slo` / :mod:`repro.obs.recorder` and the serving layer:
the :class:`~repro.serve.service.MatchService` calls its hooks on every
request life-cycle edge (admitted, shed, dispatched, retried, finished),
on every coalesced batch, and on every breaker transition; the monitor

* feeds the events into its always-on :class:`~repro.obs.recorder.
  FlightRecorder` ring,
* ticks the :class:`~repro.obs.slo.SLOEngine` on the service's
  (virtual) clock so windows close and burn-rate alerts fire
  deterministically,
* **auto-dumps** a post-mortem bundle on a breaker trip or a
  page-severity SLO firing (collected in :attr:`bundles`; the chaos
  harness additionally dumps on contract violations).

``ServeMonitor.disabled()`` swaps every hook for a no-op — the obs-off
arm of ``benchmarks/bench_obs_overhead.py`` and the escape hatch for
latency-critical deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import get_metrics
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import (
    SEVERITY_PAGE,
    AlertTransition,
    BurnRatePolicy,
    SLOEngine,
    SLOSpec,
    WindowAggregator,
    default_policies,
    default_serve_slos,
)

#: Auto-dump triggers (bundle ``trigger`` values).
TRIGGER_BREAKER = "breaker-trip"
TRIGGER_SLO_PAGE = "slo-page-burn"
TRIGGER_CHAOS = "chaos-violation"
TRIGGER_CRASH = "dispatcher-crash"
TRIGGER_MANUAL = "manual"


@dataclass
class ServiceHealth:
    """Typed point-in-time snapshot of the whole service."""

    at_s: float
    running: bool
    queue_depth: int
    outstanding: int
    requests: int
    pool_occupancy: float
    lanes: list[dict[str, Any]] = field(default_factory=list)
    window: dict[str, Any] = field(default_factory=dict)
    active_alerts: list[dict[str, Any]] = field(default_factory=list)
    recorder: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the dashboard renders exactly this)."""
        return {
            "at_s": self.at_s,
            "running": self.running,
            "queue_depth": self.queue_depth,
            "outstanding": self.outstanding,
            "requests": self.requests,
            "pool_occupancy": self.pool_occupancy,
            "lanes": list(self.lanes),
            "window": dict(self.window),
            "active_alerts": list(self.active_alerts),
            "recorder": dict(self.recorder),
        }


class ServeMonitor:
    """Always-on serving-layer monitor (recorder + SLO engine).

    Parameters
    ----------
    window_s:
        SLO window width on the service clock.
    capacity:
        Flight-recorder ring capacity (events).
    specs / policies:
        SLO objectives and burn-rate alert conditions; defaults are the
        stock serve set.
    deadline_s:
        Latency-SLO threshold used when ``specs`` is not given.
    max_bundles:
        Auto-dumped bundles retained (oldest dropped past it).
    """

    enabled = True

    def __init__(
        self,
        window_s: float = 0.5,
        capacity: int = 4096,
        specs: list[SLOSpec] | None = None,
        policies: list[BurnRatePolicy] | None = None,
        deadline_s: float = 0.05,
        max_bundles: int = 16,
    ) -> None:
        self.recorder = FlightRecorder(capacity=capacity)
        self.aggregator = WindowAggregator(get_metrics, width_s=window_s)
        self.engine = SLOEngine(
            self.aggregator,
            specs if specs is not None else default_serve_slos(deadline_s),
            policies if policies is not None else default_policies(),
        )
        self.bundles: list[dict[str, Any]] = []
        self.max_bundles = max_bundles
        self._now = 0.0

    @classmethod
    def disabled(cls) -> "_DisabledMonitor":
        """A monitor whose every hook is a no-op (the obs-off arm)."""
        return _DisabledMonitor()

    # -- request life cycle ----------------------------------------------------

    def on_admitted(
        self, at_s: float, request_id: str, chain: str, seq: int,
        queue_depth: int,
    ) -> None:
        """A request passed admission and joined the queue."""
        self._now = at_s
        self.recorder.record(
            "request", at_s, phase="admitted", request_id=request_id,
            chain=chain, request_seq=seq, queue_depth=queue_depth,
        )

    def on_rejected(
        self, at_s: float, request_id: str, chain: str, seq: int,
        kind: str, where: str,
    ) -> None:
        """A request resolved to a typed rejection (any stage)."""
        self._now = at_s
        self.recorder.record(
            "request", at_s, phase="rejected", request_id=request_id,
            chain=chain, request_seq=seq, rejection=kind, where=where,
        )

    def on_dedup(
        self, at_s: float, request_id: str, primary_id: str, batch_id: str,
    ) -> None:
        """A request piggybacked on a fingerprint-equal batch member."""
        self.recorder.record(
            "request", at_s, phase="dedup", request_id=request_id,
            primary=primary_id, batch=batch_id,
        )

    def on_batch(
        self,
        at_s: float,
        batch_id: str,
        lane: str,
        request_ids: list[str],
        member_request_ids: list[str],
        duration_s: float = 0.0,
        outcome: str = "ok",
    ) -> None:
        """One coalesced batch ran (successfully or not) on a lane."""
        self._now = at_s
        self.recorder.record_span(
            "serve:batch", at_s, lane=lane, duration_s=duration_s,
            batch=batch_id, request_ids=list(request_ids),
            member_request_ids=list(member_request_ids), outcome=outcome,
        )

    def on_retry(
        self, at_s: float, request_id: str, seq: int, attempt: int,
        error: str,
    ) -> None:
        """A request was charged a failed attempt and requeued."""
        self.recorder.record(
            "request", at_s, phase="retry", request_id=request_id,
            request_seq=seq, attempt=attempt, error=error,
        )

    def on_finished(
        self,
        at_s: float,
        request_id: str,
        chain: str,
        seq: int,
        status: str,
        lane: str,
        latency_s: float,
        truncated: bool,
    ) -> None:
        """A request resolved; also drives the SLO clock forward."""
        self.recorder.record(
            "request", at_s, phase="finished", request_id=request_id,
            chain=chain, request_seq=seq, status=status, lane=lane,
            latency_s=latency_s, truncated=truncated,
        )
        self.tick(at_s)

    # -- infrastructure events -------------------------------------------------

    def on_breaker_transition(
        self, at_s: float, lane: str, old: str, new: str,
    ) -> None:
        """A lane breaker changed state; a trip auto-dumps a bundle."""
        self._now = at_s
        self.recorder.record(
            "breaker", at_s, lane=lane, old=old, new=new,
        )
        if new == "open":
            self.dump(TRIGGER_BREAKER, context={"lane": lane})

    def note(self, at_s: float, text: str, **payload: Any) -> None:
        """Free-form annotation into the ring."""
        self.recorder.record("note", at_s, text=text, **payload)

    # -- SLO clock ---------------------------------------------------------------

    def tick(self, at_s: float) -> list[AlertTransition]:
        """Advance window time; record transitions; dump on page burn."""
        self._now = max(self._now, at_s)
        transitions = self.engine.tick(at_s)
        for t in transitions:
            payload = t.as_dict()
            payload.pop("at_s", None)
            self.recorder.record("alert", t.at_s, **payload)
            if t.severity == SEVERITY_PAGE and t.state == "firing":
                self.dump(
                    TRIGGER_SLO_PAGE,
                    context={"slo": t.slo, "burn_long": t.burn_long,
                             "burn_short": t.burn_short},
                )
        return transitions

    # -- bundles -----------------------------------------------------------------

    def dump(
        self, trigger: str, context: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Dump a post-mortem bundle now; retained in :attr:`bundles`."""
        bundle = self.recorder.dump(trigger, self._now, context)
        self.bundles.append(bundle)
        if len(self.bundles) > self.max_bundles:
            del self.bundles[: len(self.bundles) - self.max_bundles]
        return bundle

    # -- health ------------------------------------------------------------------

    def window_summary(self) -> dict[str, Any]:
        """Headline numbers of the most recent closed window."""
        recent = self.aggregator.last(1)
        if not recent:
            return {}
        w = recent[0]
        return {
            "index": w.index,
            "start_s": w.start_s,
            "end_s": w.end_s,
            "request_rate": w.rate("serve.requests"),
            "shed_rate": w.rate("serve.shed"),
            "latency_p50_s": w.quantile("serve.latency_s", 50),
            "latency_p99_s": w.quantile("serve.latency_s", 99),
            "partial_responses": int(w.total("serve.responses.partial")),
            "rejected_responses": int(w.total("serve.responses.rejected")),
        }

    def recorder_summary(self) -> dict[str, Any]:
        """Ring-buffer occupancy block of the health snapshot."""
        return {
            "buffered": len(self.recorder.events),
            "recorded": self.recorder.recorded,
            "dumps": self.recorder.dumps,
            "bundles": len(self.bundles),
        }


def format_request_story(
    request_id: str,
    events: list[dict[str, Any]],
    trigger: str = "",
) -> str:
    """Render one request's end-to-end story as human-readable lines.

    ``events`` is the (already filtered) slice of a flight-recorder ring
    or bundle involving ``request_id`` — see
    :func:`repro.obs.recorder.events_for_request`.  The header names the
    resume chain when the slice spans multiple request ids (follow-up
    hops carry the first request's id as their causal ``chain``).
    """
    header = f"{request_id}: {len(events)} event(s)"
    if trigger:
        header += f"  [bundle trigger: {trigger}]"
    lines = [header]
    hops: list[str] = []
    for e in events:
        rid = e.get("request_id")
        if e.get("kind") == "request" and rid and rid not in hops:
            hops.append(rid)
    if len(hops) > 1:
        lines.append("resume chain: " + " -> ".join(hops))
    skip = ("seq", "kind", "at_s", "phase", "name", "request_id", "chain")
    for e in events:
        at = float(e.get("at_s", 0.0))
        kind = e.get("kind", "?")
        label = e.get("phase") or e.get("name") or kind
        who = e.get("request_id", "")
        details = " ".join(
            f"{k}={e[k]}" for k in e if k not in skip and e[k] not in ("", [], None)
        )
        lines.append(f"  {at:9.4f}s  {str(label):<12} {who:<12} {details}".rstrip())
    return "\n".join(lines)


class _DisabledMonitor(ServeMonitor):
    """Every hook a no-op; ``health()`` still works off live state."""

    enabled = False

    def __init__(self) -> None:  # noqa: D401 — deliberately skips super
        self.bundles = []
        self.max_bundles = 0
        self._now = 0.0
        self.recorder = None  # type: ignore[assignment]
        self.aggregator = None  # type: ignore[assignment]
        self.engine = None  # type: ignore[assignment]

    def on_admitted(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_rejected(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_dedup(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_batch(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_retry(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_finished(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def on_breaker_transition(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def note(self, *a: Any, **kw: Any) -> None:  # noqa: D102
        pass

    def tick(self, at_s: float) -> list[AlertTransition]:  # noqa: D102
        return []

    def dump(self, trigger: str, context: dict[str, Any] | None = None) -> dict:  # noqa: D102
        return {}

    def window_summary(self) -> dict[str, Any]:  # noqa: D102
        return {}

    def recorder_summary(self) -> dict[str, Any]:  # noqa: D102
        return {}
