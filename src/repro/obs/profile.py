"""Pipeline profiles: one run distilled into the metrics schema.

A :class:`Profile` condenses one engine run into the ``repro.metrics/1``
payload plus the derived tables the human report shows — the
filter/map/join wall-clock split, the top-k kernels by simulated bytes
(from :mod:`repro.device.counters`), and per-kernel roofline placement
(bound + fraction-of-roof, paper Fig. 9).  The same payload feeds
``repro profile --json``, ``BENCH_obs.json`` from the benchmark driver,
and :class:`ProfileBaseline` regression comparison.

Metric naming convention (dotted, lowercase):

* ``engine.matches``, ``engine.stage_count.<stage>`` — counters.
* ``kernel.<name>.{instructions,bytes_hbm,bytes_l2,bytes_l1,work_items}``
  — simulated work counters per kernel launch.
* ``join.{candidate_visits,edge_checks,stack_pushes}`` — join stats.
* ``join.backend_pairs.<backend>``, ``join.backend_visits.<backend>`` —
  per-join-backend dispatch split (``dfs`` / ``tabular`` / ``fused``;
  see :mod:`repro.accel`).
* ``join.fused.tables`` — fused frontier tables launched;
  ``join.fused.pairs_per_table`` — histogram of how many pairs each
  table carried; ``join.fused.early_exit_depth`` — histogram of the
  frontier depth at which Find First retired each matched pair.
* ``engine.stage_seconds.<stage>`` — wall-clock gauges (noisy; compared
  with a generous tolerance).
* ``model.kernel_seconds.<kernel>``, ``model.total_seconds`` — analytic
  device-model times (deterministic).
* ``roofline.{intensity,roof_fraction}.<kernel>`` — roofline placement.
* ``join.pair_{matches,visits}`` — histograms over GMCR pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.device.counters import counters_from_result
from repro.device.roofline import build_roofline
from repro.device.spec import DeviceSpec, device_by_name
from repro.obs.export import load_metrics, metrics_payload
from repro.obs.metrics import MetricsRegistry

#: Default device for profile modeling (the paper's primary GPU).
DEFAULT_DEVICE = "nvidia-v100s"

#: Stages whose wall-clock times make up the filter/map/join split.
PIPELINE_STAGES = ("initialize_candidates", "filter", "mapping", "join")

#: Minimum absolute growth (seconds) before a wall-clock gauge counts as a
#: regression — relative tolerances are meaningless at microsecond scale.
WALL_CLOCK_FLOOR_SECONDS = 0.005


@dataclass
class Profile:
    """One run's observability snapshot (metrics + derived tables)."""

    metrics: MetricsRegistry
    context: dict[str, Any] = field(default_factory=dict)
    stages: list[dict[str, Any]] = field(default_factory=list)
    kernels: list[dict[str, Any]] = field(default_factory=list)

    def payload(self) -> dict[str, Any]:
        """The ``repro.metrics/1`` JSON payload of this profile."""
        return metrics_payload(self.metrics, self.context)

    def top_kernels(self, k: int = 5) -> list[dict[str, Any]]:
        """The ``k`` kernels with the most simulated traffic."""
        return sorted(self.kernels, key=lambda r: -r["bytes_total"])[:k]


def build_profile(
    result,
    query,
    data,
    device: DeviceSpec | str = DEFAULT_DEVICE,
    context: dict[str, Any] | None = None,
    metrics: MetricsRegistry | None = None,
) -> Profile:
    """Distill a finished run into a :class:`Profile`.

    Parameters
    ----------
    result:
        :class:`~repro.core.results.MatchResult` of the run.
    query / data:
        The CSR-GO batches of the run (counter extraction needs sizes).
    device:
        Device spec (or catalog name) for the analytic model/roofline.
    context:
        Extra context recorded into the payload (label, seed, workload).
    metrics:
        Registry to extend (e.g. the run's live registry with runtime
        counters already in it); a fresh one by default.
    """
    from repro.perf.model import PerformanceModel

    if isinstance(device, str):
        device = device_by_name(device)
    m = metrics if metrics is not None else MetricsRegistry()

    # -- engine-level ----------------------------------------------------------
    m.count("engine.matches", result.total_matches)
    m.count("engine.filter_iterations", len(result.filter_result.iterations))
    m.count("gmcr.pairs", result.gmcr.n_pairs)
    stage_counts = getattr(result, "stage_counts", {}) or {}
    stages: list[dict[str, Any]] = []
    for name in PIPELINE_STAGES:
        seconds = result.timings.get(name, 0.0)
        count = stage_counts.get(name, 1 if name in result.timings else 0)
        if name not in result.timings:
            continue
        m.gauge(f"engine.stage_seconds.{name}", seconds)
        m.count(f"engine.stage_count.{name}", count)
        stages.append({"stage": name, "seconds": seconds, "count": count})
    m.gauge("engine.total_seconds", result.total_seconds)
    m.gauge("memory.total_bytes", float(result.memory.total))

    # -- join work -------------------------------------------------------------
    js = result.join_result.stats
    m.count("join.candidate_visits", js.candidate_visits)
    m.count("join.edge_checks", js.edge_checks)
    m.count("join.stack_pushes", js.stack_pushes)
    if result.join_result.pair_matches is not None:
        m.histogram("join.pair_matches").observe_array(
            result.join_result.pair_matches
        )
    if result.join_result.pair_visits is not None:
        m.histogram("join.pair_visits").observe_array(result.join_result.pair_visits)
    for backend, pairs in sorted(
        (getattr(result.join_result, "backend_pairs", None) or {}).items()
    ):
        m.count(f"join.backend_pairs.{backend}", pairs)
    for backend, visits in sorted(
        (getattr(result.join_result, "backend_visits", None) or {}).items()
    ):
        m.count(f"join.backend_visits.{backend}", visits)
    fused_tables = getattr(result.join_result, "fused_tables", 0)
    if fused_tables:
        m.count("join.fused.tables", fused_tables)
        m.histogram("join.fused.pairs_per_table").observe_array(
            np.asarray(result.join_result.fused_pairs_per_table)
        )
    early_exits = getattr(result.join_result, "fused_early_exit_depths", None)
    if early_exits:
        m.histogram("join.fused.early_exit_depth").observe_array(
            np.asarray(early_exits)
        )

    # -- device-model kernels --------------------------------------------------
    counters = counters_from_result(result, query, data)
    model = PerformanceModel(device)
    times = model.estimate(counters)
    roof = build_roofline(counters, times.per_kernel, device)
    roof_rows = {row["kernel"]: row for row in roof.table()}
    kernels: list[dict[str, Any]] = []
    for k in counters.all_kernels():
        m.count(f"kernel.{k.name}.instructions", k.instructions)
        m.count(f"kernel.{k.name}.bytes_hbm", k.bytes_hbm)
        m.count(f"kernel.{k.name}.bytes_l2", k.bytes_l2)
        m.count(f"kernel.{k.name}.bytes_l1", k.bytes_l1)
        m.count(f"kernel.{k.name}.work_items", k.work_items)
        seconds = times.per_kernel.get(k.name, 0.0)
        m.gauge(f"model.kernel_seconds.{k.name}", seconds)
        row = {
            "kernel": k.name,
            "instructions": k.instructions,
            "bytes_total": k.total_bytes,
            "bytes_hbm": k.bytes_hbm,
            "model_seconds": seconds,
            "bound": "-",
            "roof_fraction": 0.0,
            "intensity": k.instruction_intensity(),
        }
        if k.name in roof_rows:
            r = roof_rows[k.name]
            row["bound"] = r["bound"]
            row["roof_fraction"] = r["roof_fraction"]
            m.gauge(f"roofline.intensity.{k.name}", r["intensity_instr_per_byte"])
            m.gauge(f"roofline.roof_fraction.{k.name}", r["roof_fraction"])
        kernels.append(row)
    m.gauge("model.total_seconds", times.total_seconds)

    ctx = {"device": device.name, "mode": result.mode}
    ctx.update(context or {})
    return Profile(metrics=m, context=ctx, stages=stages, kernels=kernels)


def smoke_profile(
    n_queries: int = 40,
    n_data_graphs: int = 200,
    seed: int = 0,
    mode: str = "find-all",
    device: str = DEFAULT_DEVICE,
    iterations: int = 6,
    metrics: MetricsRegistry | None = None,
) -> Profile:
    """Profile the deterministic synthetic smoke workload.

    The workload matches ``repro selftest`` (seeded synthetic benchmark)
    so all work counters are reproducible run-to-run; only the
    ``engine.stage_seconds.*`` gauges carry wall-clock noise.
    """
    from repro.chem.datasets import build_benchmark
    from repro.core.config import SigmoConfig
    from repro.core.engine import SigmoEngine

    ds = build_benchmark(
        scale=1.0, n_queries=n_queries, n_data_graphs=n_data_graphs, seed=seed
    )
    config = SigmoConfig(refinement_iterations=iterations)
    engine = SigmoEngine(ds.queries, ds.data, config)
    result = engine.run(mode=mode)
    context = {
        "workload": "smoke",
        "seed": seed,
        "n_queries": n_queries,
        "n_data_graphs": n_data_graphs,
        "iterations": iterations,
    }
    return build_profile(
        result, engine.query, engine.data, device=device, context=context,
        metrics=metrics,
    )


# -- human report ---------------------------------------------------------------


def format_profile(profile: Profile, top_k: int = 5) -> str:
    """Render the human ``repro profile`` report."""
    ctx = profile.context
    lines: list[str] = []
    matches = profile.metrics.counters.get("engine.matches", 0)
    head = f"profile: {int(matches)} matches"
    if "n_data_graphs" in ctx:
        head += f", {ctx.get('n_queries')} queries x {ctx['n_data_graphs']} molecules"
    head += f" ({ctx.get('mode', '?')}, device {ctx.get('device', '?')})"
    lines.append(head)

    total = sum(s["seconds"] for s in profile.stages) or 1.0
    lines.append("")
    lines.append("stage breakdown (wall clock):")
    lines.append(f"  {'stage':<22} {'seconds':>10} {'count':>6} {'share':>7}")
    for s in profile.stages:
        lines.append(
            f"  {s['stage']:<22} {s['seconds']:>10.4f} {s['count']:>6d} "
            f"{s['seconds'] / total:>6.1%}"
        )
    lines.append(f"  {'total':<22} {total:>10.4f}")

    counters = profile.metrics.counters
    backends = sorted(
        name.rsplit(".", 1)[1]
        for name in counters
        if name.startswith("join.backend_pairs.")
    )
    if backends:
        split = ", ".join(
            f"{b}: {int(counters[f'join.backend_pairs.{b}'])} pairs / "
            f"{int(counters.get(f'join.backend_visits.{b}', 0))} visits"
            for b in backends
        )
        lines.append("")
        lines.append(f"join backend split: {split}")

    fused_tables = counters.get("join.fused.tables")
    if fused_tables:
        hist = profile.metrics.histograms.get("join.fused.pairs_per_table")
        pairs = int(hist.count) if hist is not None else 0
        mean = hist.sum / hist.count if hist is not None and hist.count else 0.0
        line = (
            f"fused join: {int(fused_tables)} table(s), {pairs} pairs "
            f"({mean:.1f} pairs/table)"
        )
        exits = profile.metrics.histograms.get("join.fused.early_exit_depth")
        if exits is not None and exits.count:
            line += (
                f", {int(exits.count)} early exits "
                f"(mean depth {exits.sum / exits.count:.1f})"
            )
        lines.append(line)

    lines.append("")
    lines.append(f"top {top_k} kernels by simulated bytes:")
    lines.append(
        f"  {'kernel':<12} {'bytes':>12} {'instr':>12} {'model_s':>10} "
        f"{'bound':>8} {'roof':>6}"
    )
    for row in profile.top_kernels(top_k):
        lines.append(
            f"  {row['kernel']:<12} {row['bytes_total']:>12.3e} "
            f"{row['instructions']:>12.3e} {row['model_seconds']:>10.2e} "
            f"{row['bound']:>8} {row['roof_fraction']:>6.1%}"
        )
    return "\n".join(lines)


# -- baseline comparison --------------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One flagged difference against a profile baseline."""

    metric: str
    baseline: float
    current: float
    kind: str  # "work" | "time" | "matches" | "missing"

    def describe(self) -> str:
        """One-line human description."""
        if self.kind == "missing":
            return f"{self.metric}: present in baseline, missing now"
        ratio = self.current / self.baseline if self.baseline else float("inf")
        return (
            f"{self.metric}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({ratio:.2f}x, {self.kind})"
        )


class ProfileBaseline:
    """Compare a profile payload against a committed baseline payload.

    Deterministic *work* counters (simulated instructions/bytes, join
    visits) regress when they grow beyond ``tolerance``; wall-clock
    ``*seconds*`` gauges use the much looser ``time_tolerance`` (CI
    machines are noisy) and additionally require the absolute growth to
    exceed :data:`WALL_CLOCK_FLOOR_SECONDS` — microsecond-scale stages
    can double from scheduler jitter alone; ``engine.matches`` must
    agree exactly in both directions (a correctness signal, not a
    performance one).
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        self.payload = payload
        self.counters: dict[str, float] = dict(payload.get("counters", {}))
        self.gauges: dict[str, float] = dict(payload.get("gauges", {}))

    @classmethod
    def from_file(cls, path: str | Path) -> "ProfileBaseline":
        """Load (and schema-validate) a baseline JSON file."""
        return cls(load_metrics(path))

    def compare(
        self,
        current: dict[str, Any],
        tolerance: float = 0.1,
        time_tolerance: float = 1.0,
    ) -> list[Regression]:
        """Regressions of ``current`` (a metrics payload) vs. this baseline."""
        out: list[Regression] = []
        cur_counters: dict[str, float] = current.get("counters", {})
        for name, base in sorted(self.counters.items()):
            if name not in cur_counters:
                out.append(Regression(name, base, 0.0, "missing"))
                continue
            cur = cur_counters[name]
            if name == "engine.matches":
                if cur != base:
                    out.append(Regression(name, base, cur, "matches"))
            elif cur > base * (1.0 + tolerance):
                out.append(Regression(name, base, cur, "work"))
        cur_gauges: dict[str, float] = current.get("gauges", {})
        for name, base in sorted(self.gauges.items()):
            if "seconds" not in name:
                continue  # non-time gauges (occupancy, roofline) informational
            if name not in cur_gauges:
                out.append(Regression(name, base, 0.0, "missing"))
                continue
            cur = cur_gauges[name]
            if _is_wall_clock(name):
                if (
                    cur > base * (1.0 + time_tolerance)
                    and cur - base > WALL_CLOCK_FLOOR_SECONDS
                ):
                    out.append(Regression(name, base, cur, "time"))
            elif cur > base * (1.0 + tolerance):
                out.append(Regression(name, base, cur, "time"))
        return out


def _is_wall_clock(name: str) -> bool:
    """Whether a gauge carries wall-clock noise (vs. the analytic model)."""
    return not name.startswith("model.")


def format_regressions(regressions: list[Regression]) -> str:
    """Render a regression list for the CLI (empty string when clean)."""
    if not regressions:
        return ""
    lines = [f"{len(regressions)} regression(s) against baseline:"]
    lines.extend(f"  {r.describe()}" for r in regressions)
    return "\n".join(lines)
