"""Structured span tracing for the whole pipeline.

One tracer records *spans* — named, nested, attributed intervals — across
every subsystem: engine stages, simulated kernel launches, runtime retry
attempts, per-rank cluster execution.  The design goals mirror the
paper's evaluation needs (per-stage kernel splits, per-rank lanes) plus
two reproduction-specific constraints:

* **Zero cost when disabled.**  The default tracer is a no-op singleton
  (:data:`NULL_TRACER`); instrumented call sites pay one global read and
  one no-op context-manager enter/exit.  Hot loops can additionally guard
  on :attr:`Tracer.enabled`.
* **Deterministic under seeded runs.**  Span ordering uses a *tick
  clock* — a monotonic event counter, not wall-clock — so two identical
  seeded runs produce byte-identical trace exports.  Wall-clock durations
  are recorded alongside (for the human profile report) but excluded
  from exports by default.

Lanes model threads/ranks: every span belongs to a lane (``"main"`` by
default); the cluster simulator opens one lane per rank, the Chrome
exporter renders one track per lane.

Usage::

    from repro.obs import tracing, get_tracer

    with tracing() as tracer:           # install a live tracer
        result = engine.run()           # instrumented internally
    trace = tracer.spans                # list[Span], start order

Instrumentation sites use the module-level current tracer::

    tracer = get_tracer()
    with tracer.span("kernel:join", category="kernel", pairs=n) as sp:
        ...
        sp.set(matches=found)           # attach attributes mid-span
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TypeVar

#: Default lane for spans opened outside any :meth:`Tracer.lane` scope.
MAIN_LANE = "main"

#: Span categories used by the built-in instrumentation (informal; any
#: string is accepted).  ``engine`` > ``stage`` > ``kernel`` >
#: ``workgroup`` is the nesting the acceptance trace shows.
CATEGORIES = ("engine", "stage", "kernel", "workgroup", "device", "runtime", "cluster")


@dataclass
class Span:
    """One completed (or in-flight) traced interval.

    Attributes
    ----------
    span_id / parent_id:
        Ids within one tracer; ``parent_id`` is ``None`` for roots.
    name / category:
        Identity (``"kernel:join"``) and coarse class (``"kernel"``).
    lane:
        Worker/rank lane the span belongs to (one Chrome track each).
    depth:
        Nesting depth within its lane (0 for lane roots).
    start_tick / end_tick:
        Deterministic event-counter timestamps (see module docstring).
    wall_seconds:
        Wall-clock duration; excluded from deterministic exports.
    attrs:
        Free-form JSON-safe attributes.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    lane: str
    depth: int
    start_tick: int
    end_tick: int = -1
    wall_seconds: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ticks(self) -> int:
        """Tick-clock duration (>= 1 for completed spans)."""
        return self.end_tick - self.start_tick if self.end_tick >= 0 else 0


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach/overwrite attributes on the open span."""
        self._span.attrs.update(attrs)
        return self

    @property
    def span(self) -> Span:
        """The underlying span record."""
        return self._span

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)


class _NullHandle:
    """Reusable no-op span handle (the zero-cost path)."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullHandle":
        return self

    @property
    def span(self) -> None:
        return None

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects nested spans across lanes with a deterministic tick clock.

    Examples
    --------
    >>> t = Tracer()
    >>> with t.span("run", category="engine"):
    ...     with t.span("stage:filter", category="stage"):
    ...         pass
    >>> [s.name for s in t.spans]
    ['run', 'stage:filter']
    >>> t.spans[1].parent_id == t.spans[0].span_id
    True
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.lanes: list[str] = []
        self._tick = 0
        self._next_id = 0
        self._stacks: dict[str, list[Span]] = {}
        self._lane_stack: list[str] = [MAIN_LANE]

    # -- recording ------------------------------------------------------------

    def span(
        self, name: str, category: str = "span", lane: str | None = None, **attrs: Any
    ) -> _SpanHandle:
        """Open a span; use as a context manager."""
        lane = lane or self._lane_stack[-1]
        if lane not in self._stacks:
            self._stacks[lane] = []
            self.lanes.append(lane)
        stack = self._stacks[lane]
        parent = stack[-1] if stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            lane=lane,
            depth=len(stack),
            start_tick=self._tick,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._tick += 1
        span.wall_seconds = -time.perf_counter()
        stack.append(span)
        self.spans.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.wall_seconds += time.perf_counter()
        span.end_tick = self._tick
        self._tick += 1
        stack = self._stacks.get(span.lane, [])
        # Pop through abandoned children (exceptions unwinding) as well.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()

    @contextmanager
    def lane(self, name: str) -> Iterator[None]:
        """Scope: spans opened inside belong to lane ``name``."""
        self._lane_stack.append(name)
        try:
            yield
        finally:
            self._lane_stack.pop()

    # -- views ---------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Top-level spans (no parent), in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """Spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def max_depth(self) -> int:
        """Deepest nesting level observed (0-based); -1 when empty."""
        return max((s.depth for s in self.spans), default=-1)


class NullTracer:
    """No-op tracer: every instrumented site becomes a cheap no-op."""

    enabled = False
    spans: tuple = ()
    lanes: tuple = ()

    def span(self, name: str, category: str = "span", lane: str | None = None, **attrs):
        """Return the shared no-op handle."""
        return _NULL_HANDLE

    @contextmanager
    def lane(self, name: str) -> Iterator[None]:
        """No-op lane scope."""
        yield

    def roots(self) -> list:
        """Always empty (nothing is recorded)."""
        return []

    def children(self, span) -> list:
        """Always empty (nothing is recorded)."""
        return []

    def find(self, name: str) -> list:
        """Always empty (nothing is recorded)."""
        return []

    def max_depth(self) -> int:
        """Always -1 (nothing is recorded)."""
        return -1


#: The process-wide no-op tracer (default).
NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently installed tracer (the no-op singleton by default)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (``None`` restores the no-op); returns the previous."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a live tracer for the scope; restores the previous on exit.

    Examples
    --------
    >>> from repro.obs.trace import tracing, get_tracer
    >>> with tracing() as t:
    ...     with get_tracer().span("x"):
    ...         pass
    >>> len(t.spans)
    1
    """
    tracer = tracer or Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


F = TypeVar("F", bound=Callable)


def traced(name: str | None = None, category: str = "func") -> Callable[[F], F]:
    """Decorator: wrap calls of ``fn`` in a span on the current tracer.

    Examples
    --------
    >>> @traced("work")
    ... def work(x):
    ...     return x + 1
    >>> with tracing() as t:
    ...     work(1)
    2
    >>> t.spans[0].name
    'work'
    """

    def decorate(fn: F) -> F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _current
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name, category=category):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
