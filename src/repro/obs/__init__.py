"""Unified observability: span tracing, metrics, and profile export.

Three layers (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nested span tracer with worker/rank lanes,
  zero-cost when disabled, deterministic tick-clock ordering.
* :mod:`repro.obs.metrics` — counters / gauges / exact-bucket histogram
  registry serialising to the ``repro.metrics/1`` schema.
* :mod:`repro.obs.export` — Chrome trace-event (Perfetto) and metrics
  JSON writers with byte-stable encoding, plus schema validators.

:mod:`repro.obs.profile` (profile building, ``repro profile`` report,
baseline comparison) imports the engine-side modules and is therefore
*not* re-exported here — import it directly to avoid import cycles with
the instrumented packages.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_payload,
    stable_json,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    collecting,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    tracing,
)

__all__ = [
    "METRICS_SCHEMA",
    "NULL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "collecting",
    "get_metrics",
    "get_tracer",
    "metrics_payload",
    "set_metrics",
    "set_tracer",
    "stable_json",
    "traced",
    "tracing",
    "validate_chrome_trace",
    "validate_metrics",
    "write_chrome_trace",
    "write_metrics",
]
