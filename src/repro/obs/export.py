"""Trace and metrics exporters with byte-stable JSON encoding.

Two machine-readable formats leave the observability layer:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loadable in
  Perfetto / ``chrome://tracing``.  Spans become ``ph: "X"`` complete
  events; each tracer lane becomes one track (``tid``), named via
  ``ph: "M"`` ``thread_name`` metadata.  Timestamps default to the
  tracer's deterministic tick clock so two identical seeded runs export
  byte-identical traces; pass ``clock="wall"`` for wall-time traces.
* **``repro.metrics/1``** (:func:`metrics_payload`) — the flat metrics
  schema produced by :meth:`MetricsRegistry.as_dict`, wrapped with a
  context block (label, seed, workload) so benchmark baselines are
  self-describing.

All writers serialise via :func:`stable_json` — sorted keys, fixed
separators, trailing newline — making exports diff- and byte-comparable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Process id used for all lanes (the simulation is one process).
TRACE_PID = 0


def stable_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, newline-terminated."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


# -- Chrome trace-event ---------------------------------------------------------


def chrome_trace(tracer: Tracer, clock: str = "tick") -> dict[str, Any]:
    """Render a tracer as a Chrome trace-event JSON object.

    ``clock="tick"`` (default) uses the deterministic tick counter as
    microseconds — byte-identical across seeded reruns.  ``clock="wall"``
    scales each span's wall-clock duration to microseconds (start times
    still come from tick ordering so nesting is preserved).
    """
    if clock not in ("tick", "wall"):
        raise ValueError(f"unknown trace clock {clock!r}")
    events: list[dict[str, Any]] = []
    tids = {lane: i for i, lane in enumerate(tracer.lanes)}
    for lane, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
    for span in tracer.spans:
        events.append(_span_event(span, tids[span.lane], clock))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "exporter": "repro.obs"},
    }


def _span_event(span: Span, tid: int, clock: str) -> dict[str, Any]:
    if clock == "wall":
        ts = float(span.start_tick)
        dur = max(span.wall_seconds * 1e6, 0.0)
    else:
        ts = float(span.start_tick)
        dur = float(max(span.duration_ticks, 1))
    args = {k: _json_safe(v) for k, v in span.attrs.items()}
    return {
        "ph": "X",
        "pid": TRACE_PID,
        "tid": tid,
        "ts": ts,
        "dur": dur,
        "name": span.name,
        "cat": span.category,
        "args": args,
    }


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other oddballs to plain JSON types."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def write_chrome_trace(tracer: Tracer, path: str | Path, clock: str = "tick") -> Path:
    """Write a Perfetto-loadable trace file; returns the path."""
    path = Path(path)
    path.write_text(stable_json(chrome_trace(tracer, clock=clock)))
    return path


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Schema-check a Chrome trace object; returns a list of problems.

    Checks the invariants Perfetto's JSON importer relies on: a
    ``traceEvents`` list, known phase codes, numeric ``ts``/``dur`` on
    complete events, and ``name``/``pid``/``tid`` presence.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    problems.append(f"event {i}: {key!r} not numeric")
            if ev.get("dur", 0) < 0:
                problems.append(f"event {i}: negative dur")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"event {i}: args not an object")
    return problems


# -- metrics payload ------------------------------------------------------------


def metrics_payload(
    registry: MetricsRegistry, context: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Wrap a registry's ``repro.metrics/1`` dict with a context block."""
    payload = registry.as_dict()
    payload["context"] = dict(context or {})
    return payload


def write_metrics(
    registry: MetricsRegistry,
    path: str | Path,
    context: dict[str, Any] | None = None,
) -> Path:
    """Write the metrics payload as stable JSON; returns the path."""
    path = Path(path)
    path.write_text(stable_json(metrics_payload(registry, context)))
    return path


def validate_metrics(payload: dict[str, Any]) -> list[str]:
    """Schema-check a ``repro.metrics/1`` payload; returns problems."""
    problems: list[str] = []
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, want {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges"):
        block = payload.get(section)
        if not isinstance(block, dict):
            problems.append(f"{section} missing or not an object")
            continue
        for name, value in block.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}[{name!r}]: not numeric")
    hists = payload.get("histograms")
    if not isinstance(hists, dict):
        problems.append("histograms missing or not an object")
    else:
        for name, h in hists.items():
            if not isinstance(h, dict):
                problems.append(f"histograms[{name!r}]: not an object")
                continue
            for key in ("count", "sum", "min", "max", "buckets"):
                if key not in h:
                    problems.append(f"histograms[{name!r}]: missing {key!r}")
            problems.extend(_validate_histogram(name, h))
    if "context" in payload and not isinstance(payload["context"], dict):
        problems.append("context not an object")
    return problems


def _validate_histogram(name: str, h: dict[str, Any]) -> list[str]:
    """Round-trip invariants of one serialised histogram.

    Beyond key presence: sparse buckets must be well-formed ``[index,
    count]`` pairs with strictly increasing indices and positive counts
    (bucket *monotonicity* — an out-of-order or duplicated index means
    the sparse encoding was corrupted); the bucket counts must sum to
    ``count``; explicit bound lists must be strictly ascending; and
    ``min``/``max``/``sum`` must be mutually consistent.
    """
    problems: list[str] = []
    buckets = h.get("buckets", [])
    if not isinstance(buckets, list):
        return [f"histograms[{name!r}]: buckets not a list"]
    bounds = h.get("bounds", "geometric")
    n_bounds: int | None = None
    if bounds == "geometric":
        n_bounds = None  # default layout, any index up to its width is fine
    elif isinstance(bounds, list):
        n_bounds = len(bounds)
        for i in range(1, len(bounds)):
            if not bounds[i - 1] < bounds[i]:
                problems.append(
                    f"histograms[{name!r}]: bounds not strictly ascending "
                    f"at position {i}"
                )
                break
    else:
        problems.append(f"histograms[{name!r}]: bounds neither 'geometric' nor a list")
    last_index = -1
    total = 0
    for i, pair in enumerate(buckets):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or isinstance(pair[0], bool)
            or isinstance(pair[1], bool)
            or not isinstance(pair[0], int)
            or not isinstance(pair[1], int)
        ):
            problems.append(
                f"histograms[{name!r}]: bucket {i} not an [index, count] "
                "integer pair"
            )
            continue
        index, count = pair
        if index <= last_index:
            problems.append(
                f"histograms[{name!r}]: bucket indices not strictly "
                f"increasing at {index}"
            )
        last_index = max(last_index, index)
        if n_bounds is not None and index > n_bounds:
            problems.append(
                f"histograms[{name!r}]: bucket index {index} beyond the "
                f"{n_bounds}-bound layout's overflow bucket"
            )
        if count <= 0:
            problems.append(
                f"histograms[{name!r}]: bucket {index} has non-positive "
                f"count {count} (empty buckets must be elided)"
            )
        else:
            total += count
    count = h.get("count")
    if isinstance(count, int) and not isinstance(count, bool):
        if total != count:
            problems.append(
                f"histograms[{name!r}]: bucket counts sum to {total} but "
                f"count is {count}"
            )
        lo, hi = h.get("min"), h.get("max")
        if (
            count > 0
            and isinstance(lo, (int, float))
            and isinstance(hi, (int, float))
            and lo > hi
        ):
            problems.append(f"histograms[{name!r}]: min {lo} > max {hi}")
        s = h.get("sum")
        if (
            count > 0
            and isinstance(s, (int, float))
            and isinstance(lo, (int, float))
            and isinstance(hi, (int, float))
            # float tolerance: sums accumulate rounding error
            and not (lo * count - 1e-9 <= s <= hi * count + 1e-9)
        ):
            problems.append(
                f"histograms[{name!r}]: sum {s} outside [min*count, "
                f"max*count]"
            )
    elif count is not None:
        problems.append(f"histograms[{name!r}]: count not an integer")
    return problems


def load_metrics(path: str | Path) -> dict[str, Any]:
    """Load and validate a metrics JSON file; raises ``ValueError`` on bad schema."""
    payload = json.loads(Path(path).read_text())
    problems = validate_metrics(payload)
    if problems:
        raise ValueError(
            f"{path}: not a valid {METRICS_SCHEMA} payload: " + "; ".join(problems[:5])
        )
    return payload
