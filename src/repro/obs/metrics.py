"""Metrics registry: counters, gauges, and exact-percentile histograms.

A :class:`MetricsRegistry` is the flat, machine-readable complement to
the span tracer: every subsystem increments named counters (work done),
sets gauges (last-seen state), and observes histograms (distributions).
The registry serialises to the ``repro.metrics/1`` JSON schema shared by
the CLI (``repro profile --json``, ``repro match --json``), benchmarks
(``BENCH_obs.json``), and :class:`repro.obs.profile.ProfileBaseline`.

Histograms use fixed geometric buckets, not sampling reservoirs, so
percentiles are *exact to bucket resolution* and — crucially for seeded
reproducibility — deterministic: observing the same values in any order
yields the same serialised histogram.

Like the tracer, a registry is cheap and always-on: a counter increment
is one dict update.  The process-wide registry is reachable via
:func:`get_metrics`; scope a fresh one with :func:`collecting`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

import numpy as np

#: Version tag stamped into every serialised registry.
METRICS_SCHEMA = "repro.metrics/1"

#: Default geometric bucket layout: 1e-6 .. ~1e9 at 4 buckets/decade.
#: Wide enough for seconds (1 µs .. years) and for integer work counts.
_DEFAULT_BASE = 10.0 ** 0.25
_DEFAULT_LO = 1e-6
_DEFAULT_N = 61


def default_buckets() -> list[float]:
    """The default geometric bucket upper bounds (no +inf sentinel)."""
    return [_DEFAULT_LO * _DEFAULT_BASE**i for i in range(_DEFAULT_N)]


class Histogram:
    """Fixed-bucket histogram with exact bucket-resolution percentiles.

    ``buckets`` are ascending upper bounds; a value lands in the first
    bucket whose bound is >= the value, or an implicit overflow bucket.

    Examples
    --------
    >>> h = Histogram("lat", buckets=[1.0, 2.0, 4.0])
    >>> for v in (0.5, 1.5, 1.6, 3.0):
    ...     h.observe(v)
    >>> h.count
    4
    >>> h.percentile(50)
    2.0
    """

    def __init__(self, name: str, buckets: Iterable[float] | None = None) -> None:
        self.name = name
        self.buckets = sorted(buckets) if buckets is not None else default_buckets()
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.buckets[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        """Record one value."""
        self.counts[self._index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_array(self, values: np.ndarray) -> None:
        """Record every element of ``values`` (vectorised bucketing)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.buckets), values, side="left")
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += int(n)
        self.count += int(values.size)
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    def percentile(self, pct: float) -> float:
        """Bucket upper bound covering the ``pct``-th percentile.

        Exact to bucket resolution: the returned bound is >= the true
        percentile and < one geometric step above it.  The overflow
        bucket reports the observed max.
        """
        if self.count == 0:
            return 0.0
        rank = math.ceil(self.count * pct / 100.0)
        rank = max(rank, 1)
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank:
                return self.buckets[i] if i < len(self.buckets) else self.max
        return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of observed values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` (same bucket layout) into this histogram."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: incompatible bucket layouts"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "Histogram":
        """Independent deep copy (same layout, same counts)."""
        h = Histogram(self.name, buckets=list(self.buckets))
        h.counts = list(self.counts)
        h.count = self.count
        h.sum = self.sum
        h.min = self.min
        h.max = self.max
        return h

    def snapshot_delta(self, earlier: "Histogram") -> "Histogram":
        """Bucket-wise ``self - earlier``: the observations made since.

        The windowing primitive of the SLO engine: two registry
        snapshots of the same (monotonically growing) histogram subtract
        into the histogram of exactly the values observed between them,
        so windowed quantiles stay exact to bucket resolution.

        Raises ``ValueError`` on mismatched bucket layouts and on any
        negative bucket delta (the earlier snapshot must be a true
        prefix — a negative delta means the snapshots are unrelated or
        out of order).
        """
        if earlier.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: incompatible bucket layouts"
            )
        delta = Histogram(self.name, buckets=list(self.buckets))
        for i, (now, then) in enumerate(zip(self.counts, earlier.counts)):
            d = now - then
            if d < 0:
                raise ValueError(
                    f"histogram {self.name!r}: negative delta in bucket "
                    f"{i} ({now} - {then}); snapshots are out of order"
                )
            delta.counts[i] = d
        delta.count = self.count - earlier.count
        if delta.count < 0:
            raise ValueError(
                f"histogram {self.name!r}: negative count delta; "
                "snapshots are out of order"
            )
        delta.sum = self.sum - earlier.sum
        if delta.count:
            # min/max of the window are not recoverable from cumulative
            # extrema; bound them by the bucket layout of the occupied
            # range instead (consistent with bucket-resolution quantiles).
            occupied = [i for i, n in enumerate(delta.counts) if n]
            lo, hi = occupied[0], occupied[-1]
            delta.min = self.buckets[lo - 1] if lo > 0 else 0.0
            delta.max = (
                self.buckets[hi] if hi < len(self.buckets) else self.max
            )
        return delta

    def as_dict(self) -> dict[str, Any]:
        """Serialise; empty buckets are elided via sparse (index, count)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": [
                [i, n] for i, n in enumerate(self.counts) if n
            ],
            "bounds": "geometric" if self.buckets == default_buckets() else self.buckets,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`as_dict`."""
        bounds = payload.get("bounds", "geometric")
        h = cls(name, buckets=None if bounds == "geometric" else bounds)
        for i, n in payload.get("buckets", []):
            h.counts[int(i)] = int(n)
        h.count = int(payload.get("count", 0))
        h.sum = float(payload.get("sum", 0.0))
        if h.count:
            h.min = float(payload.get("min", 0.0))
            h.max = float(payload.get("max", 0.0))
        return h


class MetricsRegistry:
    """Named counters, gauges, and histograms with flat serialisation.

    Examples
    --------
    >>> m = MetricsRegistry()
    >>> m.count("engine.kernel_launches")
    1
    >>> m.gauge("device.occupancy", 0.75)
    >>> m.observe("join.stack_depth", 3.0)
    >>> sorted(m.as_dict()["counters"])
    ['engine.kernel_launches']
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> float:
        """Add ``delta`` to counter ``name``; returns the new total."""
        total = self.counters.get(name, 0) + delta
        self.counters[name] = total
        return total

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float, buckets: Iterable[float] | None = None) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        self.histogram(name, buckets).observe(value)

    def histogram(self, name: str, buckets: Iterable[float] | None = None) -> Histogram:
        """The histogram ``name``, created with ``buckets`` on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name, buckets)
            self.histograms[name] = h
        return h

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges last-write-wins,
        histograms merge bucket-wise."""
        for name, v in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + v
        self.gauges.update(other.gauges)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(name, h.as_dict())
            else:
                mine.merge(h)

    # -- windowing ------------------------------------------------------------

    def snapshot(self) -> "MetricsRegistry":
        """Deep, independent copy of the current state.

        The windowing primitive: take one snapshot per window boundary
        and :meth:`diff` consecutive snapshots into per-window deltas.
        """
        snap = MetricsRegistry()
        snap.counters = dict(self.counters)
        snap.gauges = dict(self.gauges)
        snap.histograms = {
            name: h.copy() for name, h in self.histograms.items()
        }
        return snap

    def diff(self, earlier: "MetricsRegistry") -> "MetricsRegistry":
        """What happened between ``earlier`` and now, as a registry.

        Counters subtract (a counter present only now contributes its
        full value; a negative delta raises — counters are monotonic by
        contract).  Gauges keep their *latest* value (last-write-wins
        has no meaningful delta).  Histograms subtract bucket-wise via
        :meth:`Histogram.snapshot_delta`.  ``diff`` is order-independent
        in the sense that the same set of observations produces the same
        delta regardless of the order they were recorded in.
        """
        delta = MetricsRegistry()
        for name, now in self.counters.items():
            d = now - earlier.counters.get(name, 0)
            if d < 0:
                raise ValueError(
                    f"counter {name!r}: negative delta ({d}); counters "
                    "are monotonic, snapshots are out of order"
                )
            if d:
                delta.counters[name] = d
        for name in earlier.counters:
            if name not in self.counters:
                raise ValueError(
                    f"counter {name!r}: present earlier but missing now; "
                    "snapshots are out of order"
                )
        delta.gauges = dict(self.gauges)
        for name, h in self.histograms.items():
            then = earlier.histograms.get(name)
            if then is None:
                then = Histogram(name, buckets=list(h.buckets))
            d = h.snapshot_delta(then)
            if d.count:
                delta.histograms[name] = d
        return delta

    # -- serialisation --------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Serialise to the ``repro.metrics/1`` schema (sorted keys)."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`as_dict` (schema tag tolerated but unchecked)."""
        m = cls()
        m.counters.update(payload.get("counters", {}))
        m.gauges.update(payload.get("gauges", {}))
        for name, h in payload.get("histograms", {}).items():
            m.histograms[name] = Histogram.from_dict(name, h)
        return m

    def clear(self) -> None:
        """Drop all recorded metrics."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_current = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The currently installed process-wide registry."""
    return _current


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (``None`` installs a fresh one); returns the previous."""
    global _current
    previous = _current
    _current = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scope a fresh (or given) registry as the current one.

    Examples
    --------
    >>> with collecting() as m:
    ...     _ = get_metrics().count("x")
    >>> m.counters["x"]
    1
    """
    registry = registry or MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
