"""Declarative service-level objectives over windowed telemetry.

An :class:`SLOSpec` names an objective ("99% of requests succeed"),
points at the counters/histograms that measure it, and knows how to
compute the *bad-event fraction* of one closed :class:`~repro.obs.slo.
windows.Window`.  Everything downstream — burn rates, multi-window
alerting — is generic arithmetic in :mod:`repro.obs.slo.engine`; the
spec is the only place that knows what "bad" means.

Four kinds cover the serving layer's contract:

``availability``
    rejected responses / all responses.
``latency``
    responses slower than ``threshold_s`` / all latency observations —
    computed from windowed histogram bucket deltas, exact to bucket
    resolution.
``partial-ratio``
    correct-partial responses / successful responses (a service that
    only ever truncates is degraded even though nothing "failed").
``shed-rate``
    admission-shed requests / submitted requests.

A window with no traffic for the spec yields ``None`` ("no data"), not
0.0 — an idle service neither burns nor repays error budget.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.obs.metrics import Histogram
from repro.obs.slo.windows import Window

#: Spec kinds (the full vocabulary).
KIND_AVAILABILITY = "availability"
KIND_LATENCY = "latency"
KIND_PARTIAL_RATIO = "partial-ratio"
KIND_SHED_RATE = "shed-rate"

SLO_KINDS = (
    KIND_AVAILABILITY,
    KIND_LATENCY,
    KIND_PARTIAL_RATIO,
    KIND_SHED_RATE,
)


def fraction_over(hist: Histogram, threshold: float) -> float | None:
    """Fraction of observations strictly above ``threshold``'s bucket.

    Exact to bucket resolution: observations land in the first bucket
    whose upper bound is >= the value, so counting the buckets *after*
    the threshold's bucket counts exactly the observations the histogram
    can prove exceeded the threshold.  ``None`` when the histogram is
    empty.
    """
    if hist.count == 0:
        return None
    cutoff = bisect_left(hist.buckets, threshold)
    over = sum(hist.counts[cutoff + 1 :])
    return over / hist.count


@dataclass(frozen=True)
class SLOSpec:
    """One objective: what fraction of events may go bad.

    Attributes
    ----------
    name:
        Stable identifier (alert keys, dashboards).
    kind:
        One of :data:`SLO_KINDS`.
    objective:
        Target good fraction in (0, 1); the error budget is
        ``1 - objective``.
    threshold_s:
        ``latency`` only: the latency bound the objective applies to
        (the request deadline, typically).
    counter_prefix:
        Metric namespace; the serving layer's is ``serve``.

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> from repro.obs.slo.windows import Window
    >>> delta = MetricsRegistry()
    >>> _ = delta.count("serve.responses.complete", 9)
    >>> _ = delta.count("serve.responses.rejected", 1)
    >>> spec = SLOSpec("avail", "availability", objective=0.99)
    >>> spec.bad_total(Window(0, 0.0, 1.0, delta))
    (1.0, 10.0)
    """

    name: str
    kind: str
    objective: float
    threshold_s: float = 0.0
    counter_prefix: str = "serve"

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; known: {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == KIND_LATENCY and self.threshold_s <= 0:
            raise ValueError("latency SLOs need a positive threshold_s")

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction (``1 - objective``)."""
        return 1.0 - self.objective

    def _counter(self, suffix: str) -> str:
        return f"{self.counter_prefix}.{suffix}"

    def bad_total(self, window: Window) -> tuple[float, float] | None:
        """``(bad events, total events)`` in the window; ``None`` if idle."""
        if self.kind == KIND_AVAILABILITY:
            bad = window.total(self._counter("responses.rejected"))
            total = bad + sum(
                window.total(self._counter(f"responses.{s}"))
                for s in ("complete", "partial")
            )
        elif self.kind == KIND_LATENCY:
            hist = window.histogram(self._counter("latency_s"))
            if hist is None:
                return None
            frac = fraction_over(hist, self.threshold_s)
            if frac is None:
                return None
            return (frac * hist.count, float(hist.count))
        elif self.kind == KIND_PARTIAL_RATIO:
            bad = window.total(self._counter("responses.partial"))
            total = bad + window.total(self._counter("responses.complete"))
        else:  # shed-rate
            bad = window.total(self._counter("shed"))
            total = window.total(self._counter("requests"))
        if total <= 0:
            return None
        return (float(bad), float(total))

    def bad_fraction(self, window: Window) -> float | None:
        """Bad-event fraction of one window; ``None`` when idle."""
        bt = self.bad_total(window)
        if bt is None:
            return None
        bad, total = bt
        return bad / total


def default_serve_slos(deadline_s: float = 0.05) -> list[SLOSpec]:
    """The serving layer's stock objectives (tuned for the simulator)."""
    return [
        SLOSpec("serve-availability", KIND_AVAILABILITY, objective=0.99),
        SLOSpec(
            "serve-latency",
            KIND_LATENCY,
            objective=0.95,
            threshold_s=deadline_s,
        ),
        SLOSpec("serve-partial-ratio", KIND_PARTIAL_RATIO, objective=0.90),
        SLOSpec("serve-shed-rate", KIND_SHED_RATE, objective=0.95),
    ]
