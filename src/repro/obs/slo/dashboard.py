"""Text dashboard rendering of a service health snapshot.

``repro serve-sim --dashboard`` renders the dict produced by
:meth:`repro.serve.service.MatchService.health` periodically; this
module owns only the formatting so it stays importable from the generic
observability layer (no serve dependency).
"""

from __future__ import annotations

from typing import Any


def render_dashboard(health: dict[str, Any]) -> str:
    """One fixed-layout text frame of a health snapshot.

    Sections: headline service state, per-lane table, recent window
    rates/quantiles, active alerts, recorder occupancy.  Input is the
    JSON-ready health dict so saved snapshots render identically.
    """
    lines: list[str] = []
    at = health.get("at_s", 0.0)
    lines.append(f"== repro serve dashboard @ t={at:.3f}s ==")
    lines.append(
        "queue={queue_depth} outstanding={outstanding} requests={requests} "
        "occupancy={occupancy:.2f}".format(
            queue_depth=health.get("queue_depth", 0),
            outstanding=health.get("outstanding", 0),
            requests=health.get("requests", 0),
            occupancy=float(health.get("pool_occupancy", 0.0)),
        )
    )
    lanes = health.get("lanes", [])
    if lanes:
        lines.append("-- lanes --")
        lines.append(
            f"{'lane':>20} {'breaker':>10} {'busy':>5} "
            f"{'slowdown':>8} {'dispatches':>10} {'failures':>8}"
        )
        for lane in lanes:
            lines.append(
                f"{lane.get('lane', '?'):>20} "
                f"{lane.get('breaker', {}).get('state', '?'):>10} "
                f"{str(lane.get('busy', False)):>5} "
                f"{float(lane.get('slowdown', 1.0)):8.2f} "
                f"{lane.get('dispatches', 0):>10} "
                f"{lane.get('failures', 0):>8}"
            )
    window = health.get("window")
    if window:
        lines.append("-- last window --")
        lines.append(
            "rps={rps:.1f} shed/s={shed:.1f} p50={p50:.4f}s p99={p99:.4f}s "
            "partials={partials}".format(
                rps=float(window.get("request_rate", 0.0)),
                shed=float(window.get("shed_rate", 0.0)),
                p50=float(window.get("latency_p50_s", 0.0)),
                p99=float(window.get("latency_p99_s", 0.0)),
                partials=window.get("partial_responses", 0),
            )
        )
    alerts = health.get("active_alerts", [])
    lines.append("-- alerts --")
    if alerts:
        for alert in alerts:
            lines.append(
                "FIRING [{sev}] {slo}: burn long={bl:.1f} short={bs:.1f} "
                "since t={since:.1f}s".format(
                    sev=alert.get("severity", "?"),
                    slo=alert.get("slo", "?"),
                    bl=float(alert.get("burn_long", 0.0)),
                    bs=float(alert.get("burn_short", 0.0)),
                    since=float(alert.get("since_s", 0.0)),
                )
            )
    else:
        lines.append("all objectives within budget")
    recorder = health.get("recorder")
    if recorder:
        lines.append(
            "recorder: {n} buffered / {total} recorded / {dumps} dumps".format(
                n=recorder.get("buffered", 0),
                total=recorder.get("recorded", 0),
                dumps=recorder.get("dumps", 0),
            )
        )
    return "\n".join(lines)
