"""Fixed-width telemetry windows diffed out of registry snapshots.

The metrics registry is cumulative — counters only grow, histograms only
fill.  Operability needs *rates*: requests per second over the last few
seconds, the p99 of the latency distribution *of this window*, not of
the whole process lifetime.  The :class:`WindowAggregator` turns the
cumulative registry into that view with two primitives added to
:mod:`repro.obs.metrics` for exactly this purpose:

* :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — a deep copy
  taken at each window boundary;
* :meth:`~repro.obs.metrics.MetricsRegistry.diff` — consecutive
  snapshots subtracted into a per-window delta registry, bucket-wise for
  histograms so windowed quantiles stay exact to bucket resolution.

Time is supplied by the caller (``tick(now)``), never read from the wall
clock, so the aggregator runs on the serving layer's virtual
:class:`~repro.serve.deadline.Clock` and window closing — and therefore
every SLO alert built on top — is seeded-deterministic and testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque

from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass(frozen=True)
class Window:
    """One closed fixed-width window of metric activity.

    ``delta`` is a registry of exactly what happened inside the window:
    counter increments, gauge last-values, and bucket-wise histogram
    deltas.

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> delta = MetricsRegistry()
    >>> _ = delta.count("serve.requests", 10)
    >>> w = Window(index=0, start_s=0.0, end_s=2.0, delta=delta)
    >>> w.rate("serve.requests")
    5.0
    """

    index: int
    start_s: float
    end_s: float
    delta: MetricsRegistry

    @property
    def width_s(self) -> float:
        """Window width in (virtual) seconds."""
        return self.end_s - self.start_s

    def total(self, counter: str) -> float:
        """Counter increments inside this window (0 when absent)."""
        return self.delta.counters.get(counter, 0)

    def rate(self, counter: str) -> float:
        """Counter increments per second inside this window."""
        width = self.width_s
        return self.total(counter) / width if width > 0 else 0.0

    def histogram(self, name: str) -> Histogram | None:
        """The windowed histogram delta for ``name`` (``None`` if quiet)."""
        return self.delta.histograms.get(name)

    def quantile(self, name: str, pct: float) -> float:
        """Windowed percentile of histogram ``name`` (0.0 when quiet).

        Exact to bucket resolution: the value is the upper bound of the
        bucket covering the requested rank *within the window*.
        """
        h = self.histogram(name)
        return h.percentile(pct) if h is not None else 0.0

    def observations(self, name: str) -> int:
        """Observation count of histogram ``name`` inside the window."""
        h = self.histogram(name)
        return h.count if h is not None else 0


class WindowAggregator:
    """Close fixed-width windows out of a cumulative registry.

    Parameters
    ----------
    registry:
        The registry to snapshot — either a :class:`MetricsRegistry` or
        a zero-argument callable returning one (pass
        :func:`repro.obs.metrics.get_metrics` so the aggregator follows
        ``collecting()`` registry swaps instead of diffing a stale one).
    width_s:
        Window width in (virtual) seconds.
    history:
        Closed windows retained (a bounded deque; the SLO engine's
        longest burn-rate lookback must fit).
    origin_s:
        Clock value the first window starts at; ``None`` (the default)
        aligns the origin to the first ``tick`` — required for clocks
        that do not start near zero (``time.monotonic``), where a fixed
        origin would make the first tick close thousands of empty
        windows.

    ``tick(now)`` closes every whole window the clock has crossed since
    the last call and returns the newly closed windows.  All activity
    since the previous snapshot is attributed to the *first* window
    closed by the tick (later windows in the same tick are empty); with
    ticks at least as frequent as window boundaries — the serving layer
    ticks on every request resolution — attribution is exact.

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> m = MetricsRegistry()
    >>> agg = WindowAggregator(m, width_s=1.0, origin_s=0.0)
    >>> _ = m.count("x", 3)
    >>> [int(w.total("x")) for w in agg.tick(1.0)]
    [3]
    >>> agg.tick(1.5)
    []
    """

    def __init__(
        self,
        registry: MetricsRegistry | Callable[[], MetricsRegistry],
        width_s: float = 1.0,
        history: int = 240,
        origin_s: float | None = None,
    ) -> None:
        if width_s <= 0:
            raise ValueError("width_s must be positive")
        if history < 1:
            raise ValueError("history must be >= 1")
        self._registry = registry
        self.width_s = width_s
        self.windows: Deque[Window] = deque(maxlen=history)
        self._start = origin_s
        self._index = 0
        self._snapshot = self.registry().snapshot()

    def registry(self) -> MetricsRegistry:
        """The live registry being windowed."""
        reg = self._registry
        return reg() if callable(reg) else reg

    def tick(self, now: float) -> list[Window]:
        """Close every window boundary crossed by ``now``; return them."""
        if self._start is None:
            # Lazy origin: align to the width grid at the first tick.
            self._start = (now // self.width_s) * self.width_s
        closed: list[Window] = []
        while now - self._start >= self.width_s:
            registry = self.registry()
            snap = registry.snapshot()
            try:
                delta = snap.diff(self._snapshot)
            except ValueError:
                # The ambient registry was swapped (collecting() scope)
                # or reset between ticks: re-baseline and attribute
                # nothing rather than crash the monitoring path.
                delta = MetricsRegistry()
            closed.append(
                Window(
                    index=self._index,
                    start_s=self._start,
                    end_s=self._start + self.width_s,
                    delta=delta,
                )
            )
            self.windows.append(closed[-1])
            self._snapshot = snap
            self._start += self.width_s
            self._index += 1
        return closed

    def last(self, n: int) -> list[Window]:
        """The most recent ``n`` closed windows, oldest first."""
        if n <= 0:
            return []
        return list(self.windows)[-n:]
