"""Windowed SLO evaluation with multi-window burn-rate alerting.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.slo.windows` — fixed-width windows diffed out of
  cumulative registry snapshots (caller-driven virtual time).
* :mod:`repro.obs.slo.spec` — declarative :class:`SLOSpec` objectives
  (availability, latency-vs-deadline, partial ratio, shed rate) that
  turn one window into a bad-event fraction.
* :mod:`repro.obs.slo.engine` — :class:`SLOEngine` evaluating page- and
  ticket-severity :class:`BurnRatePolicy` pairs over long+short window
  spans, with a deterministic OK <-> firing state machine.

The serving layer composes these (plus the sibling
:mod:`repro.obs.recorder` flight recorder) in
:mod:`repro.serve.monitor`.
"""

from repro.obs.slo.dashboard import render_dashboard
from repro.obs.slo.engine import (
    ALERT_FIRING,
    ALERT_OK,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    AlertTransition,
    BurnRatePolicy,
    SLOEngine,
    burn_rate,
    default_policies,
)
from repro.obs.slo.spec import (
    SLO_KINDS,
    SLOSpec,
    default_serve_slos,
    fraction_over,
)
from repro.obs.slo.windows import Window, WindowAggregator

__all__ = [
    "ALERT_FIRING",
    "ALERT_OK",
    "SEVERITY_PAGE",
    "SEVERITY_TICKET",
    "SLO_KINDS",
    "AlertTransition",
    "BurnRatePolicy",
    "SLOEngine",
    "SLOSpec",
    "Window",
    "WindowAggregator",
    "burn_rate",
    "default_policies",
    "default_serve_slos",
    "fraction_over",
    "render_dashboard",
]
