"""Multi-window burn-rate alerting over closed telemetry windows.

The *burn rate* of an SLO over a span of windows is::

    burn = (bad events / total events) / error_budget

Burn 1.0 spends the budget exactly at the sustainable pace; burn 10
exhausts it ten times too fast.  Following the multi-window discipline
of the SRE workbook, an alert condition pairs a **long** lookback (is
the budget really burning?) with a **short** one (is it *still*
burning right now?) and fires only when both exceed the policy's
threshold — the long window keeps a transient blip from paging, the
short window un-fires the alert promptly once the bleeding stops.

Two stock severities:

* ``page`` — fast burn (threshold 10 over 6+2 windows): the budget is
  gone within tens of windows; a human should look now.  A page-level
  firing also triggers a flight-recorder dump upstream.
* ``ticket`` — slow burn (threshold 2 over 24+6 windows): sustainable
  for hours, not for days.

All evaluation happens on window indices of the caller-driven
:class:`~repro.obs.slo.windows.WindowAggregator`, so under the virtual
clock the whole OK → firing → OK life cycle replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.slo.spec import SLOSpec
from repro.obs.slo.windows import Window, WindowAggregator

#: Alert states (per spec x policy).
ALERT_OK = "ok"
ALERT_FIRING = "firing"

#: Stock severities.
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"


@dataclass(frozen=True)
class BurnRatePolicy:
    """One multi-window alert condition.

    Fires when the burn rate over the last ``long_windows`` *and* over
    the last ``short_windows`` both reach ``threshold``; clears as soon
    as the short-window burn drops back below it.
    """

    severity: str
    long_windows: int
    short_windows: int
    threshold: float

    def __post_init__(self) -> None:
        if self.long_windows < 1 or self.short_windows < 1:
            raise ValueError("window counts must be >= 1")
        if self.short_windows > self.long_windows:
            raise ValueError("short lookback cannot exceed the long one")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


def default_policies() -> list[BurnRatePolicy]:
    """The stock page/ticket pair."""
    return [
        BurnRatePolicy(SEVERITY_PAGE, long_windows=6, short_windows=2, threshold=10.0),
        BurnRatePolicy(SEVERITY_TICKET, long_windows=24, short_windows=6, threshold=2.0),
    ]


@dataclass(frozen=True)
class AlertTransition:
    """One OK <-> firing edge of the alert-state machine."""

    at_s: float
    window_index: int
    slo: str
    severity: str
    state: str  # ALERT_OK | ALERT_FIRING
    burn_long: float
    burn_short: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (recorder events, bundles)."""
        return {
            "at_s": self.at_s,
            "window_index": self.window_index,
            "slo": self.slo,
            "severity": self.severity,
            "state": self.state,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


@dataclass
class _AlertKey:
    """Mutable state of one (spec, policy) alert."""

    spec: SLOSpec
    policy: BurnRatePolicy
    state: str = ALERT_OK
    since_s: float = 0.0
    last_burn_long: float = 0.0
    last_burn_short: float = 0.0


def burn_rate(spec: SLOSpec, windows: list[Window]) -> float:
    """Budget-normalised bad fraction aggregated over ``windows``.

    Events are pooled across the span (a busy window weighs more than an
    idle one); a span with no events burns 0.
    """
    bad = total = 0.0
    for window in windows:
        bt = spec.bad_total(window)
        if bt is not None:
            bad += bt[0]
            total += bt[1]
    if total <= 0:
        return 0.0
    return (bad / total) / spec.error_budget


@dataclass
class SLOEngine:
    """Evaluate burn-rate policies as the aggregator closes windows.

    Drive it with ``tick(now)``; each closed window re-evaluates every
    (spec, policy) pair and returns the state transitions (empty almost
    always).  ``active_alerts()`` is the currently-firing set for
    dashboards and :meth:`~repro.serve.service.MatchService.health`.

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> from repro.obs.slo.spec import SLOSpec
    >>> from repro.obs.slo.windows import WindowAggregator
    >>> m = MetricsRegistry()
    >>> agg = WindowAggregator(m, width_s=1.0)
    >>> spec = SLOSpec("avail", "availability", objective=0.9)
    >>> policy = BurnRatePolicy("page", long_windows=2, short_windows=1,
    ...                         threshold=5.0)
    >>> eng = SLOEngine(agg, [spec], [policy])
    >>> _ = m.count("serve.responses.rejected", 5)
    >>> _ = eng.tick(1.0)  # every response rejected: burn 10 > 5
    >>> _ = m.count("serve.responses.rejected", 5)
    >>> _ = eng.tick(2.0)
    >>> [a["severity"] for a in eng.active_alerts()]
    ['page']
    """

    aggregator: WindowAggregator
    specs: list[SLOSpec]
    policies: list[BurnRatePolicy] = field(default_factory=default_policies)
    transitions: list[AlertTransition] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._alerts = [
            _AlertKey(spec, policy)
            for spec in self.specs
            for policy in self.policies
        ]

    def tick(self, now: float) -> list[AlertTransition]:
        """Advance window time; returns any alert-state transitions."""
        fresh: list[AlertTransition] = []
        for window in self.aggregator.tick(now):
            fresh.extend(self._evaluate(window))
        self.transitions.extend(fresh)
        return fresh

    def _evaluate(self, window: Window) -> list[AlertTransition]:
        out: list[AlertTransition] = []
        for alert in self._alerts:
            policy = alert.policy
            long = burn_rate(
                alert.spec, self.aggregator.last(policy.long_windows)
            )
            short = burn_rate(
                alert.spec, self.aggregator.last(policy.short_windows)
            )
            alert.last_burn_long = long
            alert.last_burn_short = short
            if alert.state == ALERT_OK:
                firing = long >= policy.threshold and short >= policy.threshold
                if firing:
                    alert.state = ALERT_FIRING
                    alert.since_s = window.end_s
                    out.append(self._transition(alert, window))
            else:
                if short < policy.threshold:
                    alert.state = ALERT_OK
                    alert.since_s = window.end_s
                    out.append(self._transition(alert, window))
        return out

    def _transition(self, alert: _AlertKey, window: Window) -> AlertTransition:
        return AlertTransition(
            at_s=window.end_s,
            window_index=window.index,
            slo=alert.spec.name,
            severity=alert.policy.severity,
            state=alert.state,
            burn_long=alert.last_burn_long,
            burn_short=alert.last_burn_short,
        )

    def active_alerts(self) -> list[dict[str, Any]]:
        """Currently-firing alerts (JSON-ready, stable order)."""
        return [
            {
                "slo": a.spec.name,
                "severity": a.policy.severity,
                "since_s": a.since_s,
                "burn_long": a.last_burn_long,
                "burn_short": a.last_burn_short,
            }
            for a in self._alerts
            if a.state == ALERT_FIRING
        ]

    def state_of(self, slo: str, severity: str) -> str:
        """Alert state of one (spec, policy) pair."""
        for a in self._alerts:
            if a.spec.name == slo and a.policy.severity == severity:
                return a.state
        raise KeyError(f"no alert for slo={slo!r} severity={severity!r}")
