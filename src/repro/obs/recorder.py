"""Always-on flight recorder: a bounded ring of recent telemetry events.

Production incidents are post-hoc: by the time a breaker trips or an SLO
pages, the interesting spans already happened.  The
:class:`FlightRecorder` keeps the last ``capacity`` events — request
life-cycle marks, span summaries, windowed metric deltas, alert
transitions, free-form notes — in a ``deque`` ring whose append cost is
a dict build and a pointer swap, cheap enough to leave on permanently.

On a trigger (breaker trip, chaos violation, page-level SLO burn,
dispatcher crash) the ring is frozen into a **post-mortem bundle**: one
self-contained JSON object carrying the trigger, a context block, every
buffered event, and a Chrome trace-event rendering of the buffered spans
(loadable in Perfetto as-is).  Bundles explain the failure without any
live process left to ask.

A process-wide recorder is reachable via :func:`get_recorder` (a no-op
:data:`NULL_RECORDER` by default, mirroring the tracer idiom) so deep
layers — the resilient runtime's chunk attempts, for example — can
record ambiently without plumbing.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Deque, Iterable, Iterator

#: Schema tag stamped into every bundle.
POSTMORTEM_SCHEMA = "repro.postmortem/1"

#: Event kinds written by the built-in instrumentation (informal; any
#: string is accepted).
EVENT_KINDS = ("request", "span", "window", "alert", "breaker", "note")


class FlightRecorder:
    """Bounded ring buffer of telemetry events with bundle dumps.

    Examples
    --------
    >>> r = FlightRecorder(capacity=2)
    >>> r.record("note", 0.0, text="a")
    >>> r.record("note", 1.0, text="b")
    >>> r.record("note", 2.0, text="c")  # evicts "a"
    >>> [e["text"] for e in r.events]
    ['b', 'c']
    >>> bundle = r.dump("unit-test", at_s=2.0)
    >>> bundle["trigger"], len(bundle["events"])
    ('unit-test', 2)
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 4096,
        clock: "Any | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: Deque[dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0  # total ever, including evicted
        self.dumps = 0
        self._seq = 0
        self._last_at = 0.0
        #: Optional zero-argument time source for :meth:`record_now`
        #: (the serving layer installs its virtual clock here).
        self.clock = clock

    # -- recording ------------------------------------------------------------

    def record(self, kind: str, at_s: float, **payload: Any) -> None:
        """Append one event (O(1); evicts the oldest past capacity).

        The ring's own ``seq``/``kind``/``at_s`` always win over payload
        keys of the same name — ``seq`` is the authoritative event order.
        """
        event = dict(payload)
        event["kind"] = kind
        event["at_s"] = at_s
        event["seq"] = self._seq
        self._seq += 1
        self.recorded += 1
        self._last_at = max(self._last_at, at_s)
        self.events.append(event)

    def record_now(self, kind: str, **payload: Any) -> None:
        """Append an event stamped by the recorder's own clock.

        For call sites with no clock of their own (the resilient
        runtime's attempt log): uses the installed :attr:`clock` when
        present, else the latest timestamp seen — the ring's ``seq``
        remains the authoritative order either way.
        """
        at_s = float(self.clock()) if self.clock is not None else self._last_at
        self.record(kind, at_s, **payload)

    def record_span(
        self,
        name: str,
        at_s: float,
        lane: str = "main",
        duration_s: float = 0.0,
        **attrs: Any,
    ) -> None:
        """Append a span-summary event (rendered into the Chrome trace)."""
        self.record(
            "span",
            at_s,
            name=name,
            lane=lane,
            duration_s=duration_s,
            **attrs,
        )

    # -- querying -------------------------------------------------------------

    def find(self, kind: str) -> list[dict[str, Any]]:
        """Buffered events of one kind, oldest first."""
        return [e for e in self.events if e["kind"] == kind]

    def for_request(self, request_id: str) -> list[dict[str, Any]]:
        """Buffered events involving ``request_id`` (as id, chain, or
        batch member), oldest first."""
        return events_for_request(self.events, request_id)

    # -- dumping --------------------------------------------------------------

    def dump(
        self,
        trigger: str,
        at_s: float,
        context: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Freeze the ring into a self-contained post-mortem bundle."""
        self.dumps += 1
        events = [dict(e) for e in self.events]
        return {
            "schema": POSTMORTEM_SCHEMA,
            "trigger": trigger,
            "at_s": at_s,
            "context": dict(context or {}),
            "recorded_total": self.recorded,
            "events": events,
            "chrome_trace": self._chrome_trace(events),
        }

    @staticmethod
    def _chrome_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
        """Perfetto-loadable rendering of the buffered span events.

        Timestamps are the recorder's (virtual) clock seconds scaled to
        microseconds — deterministic whenever the clock is.  Non-span
        events become instant (``ph: "i"``) marks on their lane.
        """
        trace_events: list[dict[str, Any]] = []
        lanes: dict[str, int] = {}

        def tid(lane: str) -> int:
            if lane not in lanes:
                lanes[lane] = len(lanes)
                trace_events.append(
                    {
                        "ph": "M",
                        "pid": 0,
                        "tid": lanes[lane],
                        "name": "thread_name",
                        "args": {"name": lane},
                    }
                )
            return lanes[lane]

        for e in events:
            lane = str(e.get("lane") or e.get("kind", "events"))
            args = {
                k: v
                for k, v in e.items()
                if k not in ("kind", "at_s", "name", "lane", "duration_s")
            }
            if e["kind"] == "span":
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": 0,
                        "tid": tid(lane),
                        "ts": float(e["at_s"]) * 1e6,
                        "dur": max(float(e.get("duration_s", 0.0)) * 1e6, 1.0),
                        "name": str(e.get("name", "span")),
                        "cat": "recorder",
                        "args": args,
                    }
                )
            else:
                trace_events.append(
                    {
                        "ph": "i",
                        "pid": 0,
                        "tid": tid(lane),
                        "ts": float(e["at_s"]) * 1e6,
                        "s": "t",
                        "name": str(e.get("name", e["kind"])),
                        "cat": e["kind"],
                        "args": args,
                    }
                )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "virtual", "exporter": "repro.obs.recorder"},
        }

    def write_bundle(
        self,
        path: str | Path,
        trigger: str,
        at_s: float,
        context: dict[str, Any] | None = None,
    ) -> Path:
        """Dump and write a bundle as stable JSON; returns the path."""
        path = Path(path)
        bundle = self.dump(trigger, at_s, context)
        path.write_text(
            json.dumps(bundle, sort_keys=True, separators=(",", ":")) + "\n"
        )
        return path


class NullFlightRecorder:
    """No-op recorder: ambient recording sites become cheap no-ops."""

    enabled = False
    events: tuple = ()
    recorded = 0
    dumps = 0

    def record(self, kind: str, at_s: float, **payload: Any) -> None:
        """Discard."""

    def record_now(self, kind: str, **payload: Any) -> None:
        """Discard."""

    def record_span(self, name: str, at_s: float, lane: str = "main",
                    duration_s: float = 0.0, **attrs: Any) -> None:
        """Discard."""

    def find(self, kind: str) -> list:
        """Always empty."""
        return []

    def for_request(self, request_id: str) -> list:
        """Always empty."""
        return []


#: The process-wide no-op recorder (default).
NULL_RECORDER = NullFlightRecorder()

_current: FlightRecorder | NullFlightRecorder = NULL_RECORDER


def get_recorder() -> FlightRecorder | NullFlightRecorder:
    """The currently installed ambient recorder (no-op by default)."""
    return _current


def set_recorder(
    recorder: FlightRecorder | NullFlightRecorder | None,
) -> FlightRecorder | NullFlightRecorder:
    """Install ``recorder`` (``None`` restores the no-op); returns the previous."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(
    recorder: FlightRecorder | None = None,
) -> Iterator[FlightRecorder]:
    """Install a live ambient recorder for the scope.

    Examples
    --------
    >>> with recording() as r:
    ...     get_recorder().record("note", 0.0, text="hi")
    >>> len(r.events)
    1
    """
    recorder = recorder or FlightRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def events_for_request(
    events: "Iterable[dict[str, Any]]", request_id: str
) -> list[dict[str, Any]]:
    """Events involving ``request_id``, oldest first.

    Matches the id against an event's own ``request_id``, its causal
    ``chain``, or batch membership (``request_ids`` /
    ``member_request_ids``) — the same linkage the serving layer writes,
    so this works on a live ring and on the ``events`` list of a
    deserialized post-mortem bundle alike.
    """
    out = []
    for e in events:
        if (
            e.get("request_id") == request_id
            or e.get("chain") == request_id
            or request_id in (e.get("request_ids") or ())
            or request_id in (e.get("member_request_ids") or ())
        ):
            out.append(e)
    return out


def validate_bundle(payload: dict[str, Any]) -> list[str]:
    """Schema-check a post-mortem bundle; returns a list of problems."""
    problems: list[str] = []
    if payload.get("schema") != POSTMORTEM_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, want {POSTMORTEM_SCHEMA!r}"
        )
    if not isinstance(payload.get("trigger"), str) or not payload.get("trigger"):
        problems.append("trigger missing or empty")
    if not isinstance(payload.get("at_s"), (int, float)):
        problems.append("at_s not numeric")
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("events missing or not a list")
    else:
        last_seq = -1
        for i, e in enumerate(events):
            if not isinstance(e, dict):
                problems.append(f"event {i}: not an object")
                continue
            if not isinstance(e.get("kind"), str):
                problems.append(f"event {i}: kind missing")
            if not isinstance(e.get("at_s"), (int, float)):
                problems.append(f"event {i}: at_s not numeric")
            seq = e.get("seq")
            if not isinstance(seq, int) or seq <= last_seq:
                problems.append(f"event {i}: seq not strictly increasing")
            else:
                last_seq = seq
    if not isinstance(payload.get("chrome_trace"), dict):
        problems.append("chrome_trace missing or not an object")
    return problems
