"""repro — a faithful reproduction of SIGMo (SC '25).

SIGMo is a high-throughput batched subgraph-isomorphism framework for
molecular matching.  This package reimplements the full system in Python:
the filter-and-join engine (CSR-GO, masked bitset signatures, candidate
bitmaps, GMCR mapping, stack-based DFS join), a calibrated synthetic
molecular dataset, CPU/GPU-style baselines, a SIMT device simulator with an
analytic cross-GPU performance model, and a simulated multi-GPU cluster.

Quickstart
----------
>>> from repro import SigmoEngine
>>> from repro.chem import mol_from_smiles
>>> water = mol_from_smiles("O")
>>> hydroxyl = mol_from_smiles("[OH]")
>>> engine = SigmoEngine([hydroxyl.graph()], [water.graph()])
>>> engine.run().total_matches > 0
True
"""

from repro.core import (
    CSRGO,
    MatchRecord,
    MatchResult,
    SigmoConfig,
    SigmoEngine,
    find_all,
    find_first,
)
from repro.graph import GraphBatch, LabeledGraph

__version__ = "1.0.0"

__all__ = [
    "CSRGO",
    "GraphBatch",
    "LabeledGraph",
    "MatchRecord",
    "MatchResult",
    "SigmoConfig",
    "SigmoEngine",
    "find_all",
    "find_first",
    "__version__",
]
