"""Unit tests for the ASCII chart renderer used by the bench reports."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.experiments.textplot import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*=a" in out and "o=b" in out
        assert out.count("|") >= 2

    def test_monotone_series_orientation(self):
        out = ascii_chart({"up": [0.0, 10.0]}, width=10, height=5)
        lines = out.splitlines()
        # the max (10) labels the top row, the min (0) the bottom row
        assert lines[0].strip().startswith("10")
        assert "0.00" in lines[4]

    def test_log_scale(self):
        out = ascii_chart({"t": [1e6, 1e7, 1e8]}, log_y=True, y_label="tp")
        assert "(log)" in out
        assert "1.0e+08" in out

    def test_x_labels(self):
        out = ascii_chart({"a": [1, 2]}, x_values=[16, 256], x_label="GPUs")
        assert "16" in out and "256" in out and "(GPUs)" in out

    def test_flat_series(self):
        out = ascii_chart({"flat": [5.0, 5.0, 5.0]})
        assert "*" in out  # renders without dividing by zero

    def test_single_point(self):
        out = ascii_chart({"p": [2.0]})
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})
