"""Unit tests for deterministic fault injection."""

import pickle

import pytest

from repro.device.memory import DeviceOutOfMemory
from repro.runtime.faults import (
    NO_FAULTS,
    FaultPlan,
    PoisonQuery,
    RankFailure,
    WorkerCrash,
)

pytestmark = pytest.mark.robustness


class TestValidation:
    def test_rates_in_unit_interval(self):
        with pytest.raises(ValueError):
            FaultPlan(oom_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(rank_failure_rate=2.0)

    def test_slowdown_and_attempts(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan(fault_attempts=-1)


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        a = FaultPlan(seed=3, oom_rate=0.5, crash_rate=0.5)
        b = FaultPlan(seed=3, oom_rate=0.5, crash_rate=0.5)
        decisions = [(u, t) for u in range(20) for t in range(2)]
        assert [a.injects_oom(u, t) for u, t in decisions] == [
            b.injects_oom(u, t) for u, t in decisions
        ]
        assert [a.injects_crash(u, t) for u, t in decisions] == [
            b.injects_crash(u, t) for u, t in decisions
        ]

    def test_kinds_draw_independently(self):
        plan = FaultPlan(seed=3, oom_rate=0.5, crash_rate=0.5)
        decisions = [(u, 0) for u in range(64)]
        ooms = [plan.injects_oom(u, t) for u, t in decisions]
        crashes = [plan.injects_crash(u, t) for u, t in decisions]
        assert ooms != crashes  # astronomically unlikely to collide

    def test_survives_pickling(self):
        plan = FaultPlan(seed=9, oom_rate=0.4, crash_at=((1, 0),))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert [clone.injects_oom(u, 0) for u in range(32)] == [
            plan.injects_oom(u, 0) for u in range(32)
        ]


class TestFiring:
    def test_explicit_coordinates_always_fire(self):
        plan = FaultPlan(oom_at=((2, 1),), crash_at=((3, 0),))
        assert plan.injects_oom(2, 1) and not plan.injects_oom(2, 0)
        assert plan.injects_crash(3, 0) and not plan.injects_crash(3, 1)

    def test_rate_faults_stop_after_fault_attempts(self):
        plan = FaultPlan(seed=1, oom_rate=1.0, crash_rate=1.0, fault_attempts=2)
        assert plan.injects_oom(0, 0) and plan.injects_oom(0, 1)
        assert not plan.injects_oom(0, 2)
        assert not plan.injects_crash(0, 2)

    def test_check_oom_raises_device_oom(self):
        plan = FaultPlan(oom_at=((0, 0),))
        with pytest.raises(DeviceOutOfMemory):
            plan.check_oom(0, 0)
        plan.check_oom(0, 1)  # no fault scheduled: no raise

    def test_check_crash_raises_worker_crash(self):
        plan = FaultPlan(crash_at=((4, 2),))
        with pytest.raises(WorkerCrash) as exc:
            plan.check_crash(4, 2)
        assert exc.value.unit == 4 and exc.value.attempt == 2

    def test_rank_failures_and_stragglers(self):
        plan = FaultPlan(failed_ranks=(1,), stragglers=(2,), straggler_slowdown=3.0)
        assert plan.rank_failed(1) and not plan.rank_failed(0)
        assert plan.straggler_factor(2) == 3.0
        assert plan.straggler_factor(0) == 1.0

    def test_no_faults_plan_is_inert(self):
        for unit in range(16):
            assert not NO_FAULTS.injects_oom(unit, 0)
            assert not NO_FAULTS.injects_crash(unit, 0)
            assert not NO_FAULTS.rank_failed(unit)
            assert NO_FAULTS.straggler_factor(unit) == 1.0

    def test_rank_failure_exception_carries_rank(self):
        exc = RankFailure(7)
        assert exc.rank == 7 and "7" in str(exc)


class TestPoison:
    def test_explicit_poison_requests_always_fire(self):
        plan = FaultPlan(poison_requests=(3,))
        assert plan.poisons_request(3)
        assert not plan.poisons_request(2)
        with pytest.raises(PoisonQuery) as exc:
            plan.check_poison(3)
        assert exc.value.request == 3

    def test_poison_is_not_gated_by_fault_attempts(self):
        # unlike crash/OOM rates, poison fires regardless of retries:
        # the request itself is broken, so attempt never appears in
        # the decision
        plan = FaultPlan(seed=5, poison_rate=1.0, fault_attempts=0)
        assert plan.poisons_request(0)

    def test_poison_rate_is_deterministic_per_request(self):
        plan = FaultPlan(seed=9, poison_rate=0.5)
        decisions = [plan.poisons_request(r) for r in range(32)]
        assert decisions == [plan.poisons_request(r) for r in range(32)]
        assert any(decisions) and not all(decisions)

    def test_poison_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(poison_rate=1.5)

    def test_poison_exception_survives_pickling(self):
        exc = pickle.loads(pickle.dumps(PoisonQuery(11)))
        assert exc.request == 11 and "11" in str(exc)

    def test_no_faults_plan_has_no_poison(self):
        for request in range(16):
            assert not NO_FAULTS.poisons_request(request)
