"""Integration tests for the fault-tolerant pool driver."""

import pytest

from repro.core.engine import SigmoEngine
from repro.runtime import COMPLETE, PARTIAL, FaultPlan, run_parallel_resilient

pytestmark = pytest.mark.robustness


@pytest.fixture(scope="module")
def workload(small_dataset):
    return small_dataset.queries[:6], small_dataset.data[:24]


@pytest.fixture(scope="module")
def serial(workload):
    queries, data = workload
    return SigmoEngine(queries, data).run()


def assert_equals_serial(result, serial):
    assert result.total_matches == serial.total_matches
    assert result.matched_pairs == sorted(serial.matched_pairs())


class TestFaultFree:
    def test_matches_serial(self, workload, serial):
        queries, data = workload
        result = run_parallel_resilient(queries, data, n_workers=3, chunk_size=5)
        assert result.status == COMPLETE
        assert result.report.n_retries == 0
        assert_equals_serial(result, serial)

    def test_timings_and_chunks_aggregate(self, workload):
        queries, data = workload
        result = run_parallel_resilient(queries, data, n_workers=3, chunk_size=5)
        assert result.n_chunks == 6  # 3 slices of 8 graphs, chunked by 5
        assert "join" in result.timings and result.total_seconds > 0

    def test_validation(self, workload):
        queries, data = workload
        with pytest.raises(ValueError):
            run_parallel_resilient(queries, [])
        with pytest.raises(ValueError):
            run_parallel_resilient(queries, data, chunk_size=0)
        with pytest.raises(ValueError):
            run_parallel_resilient(queries, data, max_attempts=0)
        with pytest.raises(ValueError):
            run_parallel_resilient(queries, data, backoff_factor=0.5)


class TestRecovery:
    def test_soft_crashes_and_ooms_recovered(self, workload, serial):
        queries, data = workload
        plan = FaultPlan(seed=1, crash_rate=0.6, oom_rate=0.3, fault_attempts=2)
        result = run_parallel_resilient(
            queries, data, n_workers=3, chunk_size=5, fault_plan=plan, max_attempts=6
        )
        assert result.status == COMPLETE
        assert result.report.n_retries > 0
        assert_equals_serial(result, serial)

    def test_oom_halves_chunk_size(self, workload, serial):
        queries, data = workload
        plan = FaultPlan(oom_at=((0, 0), (0, 1)))
        result = run_parallel_resilient(
            queries, data, n_workers=3, chunk_size=8, fault_plan=plan, max_attempts=6
        )
        assert result.status == COMPLETE
        sizes = [
            a.chunk_size for a in result.report.attempts if a.unit.startswith("slice-0")
        ]
        assert sizes == [8, 4, 2]  # halved on each OOM
        assert_equals_serial(result, serial)

    def test_hard_crash_breaks_and_rebuilds_pool(self, workload, serial):
        queries, data = workload
        plan = FaultPlan(crash_at=((1, 0),), crash_hard=True)
        result = run_parallel_resilient(
            queries, data, n_workers=3, chunk_size=5, fault_plan=plan, max_attempts=6
        )
        assert result.status == COMPLETE
        assert result.report.n_retries >= 1
        assert_equals_serial(result, serial)

    def test_inline_single_slice_recovers(self, workload, serial):
        queries, data = workload
        plan = FaultPlan(crash_at=((0, 0),), crash_hard=True)
        # single slice runs inline; a hard crash downgrades to a raise
        result = run_parallel_resilient(
            queries, data, n_workers=1, chunk_size=50, fault_plan=plan, max_attempts=3
        )
        assert result.status == COMPLETE
        assert result.n_workers == 1
        assert_equals_serial(result, serial)

    def test_exhausted_slice_goes_partial(self, workload):
        queries, data = workload
        plan = FaultPlan(crash_at=tuple((0, a) for a in range(10)))
        result = run_parallel_resilient(
            queries, data, n_workers=3, chunk_size=5, fault_plan=plan, max_attempts=3
        )
        assert result.status == PARTIAL
        assert (0, 8) in result.failed_slices
        # the surviving slices still contributed their exact results
        assert result.total_matches > 0

    def test_backoff_schedule_recorded(self, workload):
        queries, data = workload
        plan = FaultPlan(crash_at=((0, 0), (0, 1)))
        result = run_parallel_resilient(
            queries,
            data,
            n_workers=3,
            chunk_size=5,
            fault_plan=plan,
            max_attempts=4,
            backoff_base=0.001,
            backoff_factor=2.0,
            backoff_jitter=0.0,  # exact schedule without jitter
        )
        delays = [
            a.backoff_seconds
            for a in result.report.attempts
            if a.unit.startswith("slice-0") and a.outcome == "crash"
        ]
        assert delays == [0.0, 0.002]


class TestBackoffJitter:
    """Seeded jitter: spread retries without losing replayability."""

    def test_jittered_delay_stays_in_band_and_replays(self, workload):
        queries, data = workload
        plan = FaultPlan(crash_at=((0, 0), (0, 1)))

        def run_once():
            result = run_parallel_resilient(
                queries,
                data,
                n_workers=3,
                chunk_size=5,
                fault_plan=plan,
                max_attempts=4,
                backoff_base=0.001,
                backoff_factor=2.0,
                backoff_jitter=0.25,
                backoff_seed=17,
            )
            return [
                a.backoff_seconds
                for a in result.report.attempts
                if a.unit.startswith("slice-0") and a.outcome == "crash"
            ]

        first = run_once()
        assert first[0] == 0.0
        # attempt 1: base delay 0.002, jitter adds up to 25%
        assert 0.002 <= first[1] <= 0.002 * 1.25
        assert first[1] != 0.002  # jitter actually drew
        assert run_once() == first  # pure function of (seed, unit, attempt)

    def test_jitter_decorrelates_units(self):
        from repro.pipeline.policies import RetryPolicy

        policy = RetryPolicy(
            max_attempts=4,
            backoff_base=0.001,
            backoff_factor=2.0,
            jitter=0.5,
            seed=3,
        )
        delays = {policy.delay(1, unit=u) for u in range(8)}
        assert len(delays) == 8  # no two units retry in lockstep

    def test_jitter_validation(self):
        from repro.pipeline.policies import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
