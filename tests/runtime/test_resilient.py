"""Integration tests for the resilient chunked driver.

The invariant under every fault scenario: total matches and sorted
matched pairs are bitwise-equal to a fault-free serial run.
"""

import pytest

from repro.core.chunked import run_chunked
from repro.core.config import SigmoConfig
from repro.core.join import JoinBudget
from repro.device.memory import DeviceMemoryPool
from repro.runtime import (
    COMPLETE,
    PARTIAL,
    FaultPlan,
    ResumeToken,
    combine_results,
    run_resilient,
    workload_fingerprint,
)
from repro.runtime.resilient import predict_chunk_footprint

pytestmark = pytest.mark.robustness


@pytest.fixture(scope="module")
def workload(small_dataset):
    return small_dataset.queries[:6], small_dataset.data[:30]


@pytest.fixture(scope="module")
def serial(workload):
    queries, data = workload
    return run_chunked(queries, data, 8)


@pytest.fixture(scope="module")
def rich_workload(small_dataset):
    # the full query set: enough matches/GMCR pairs per chunk that a join
    # budget actually truncates
    return small_dataset.queries, small_dataset.data[:30]


@pytest.fixture(scope="module")
def rich_serial(rich_workload):
    queries, data = rich_workload
    return run_chunked(queries, data, 8)


def assert_equals_serial(result, serial):
    assert result.total_matches == serial.total_matches
    assert sorted(result.matched_pairs) == sorted(serial.matched_pairs)


class TestPlainExecution:
    def test_matches_serial(self, workload, serial):
        queries, data = workload
        result = run_resilient(queries, data, chunk_size=8)
        assert result.status == COMPLETE
        assert_equals_serial(result, serial)
        assert result.n_chunks == 4
        assert result.report.n_retries == 0

    def test_pairs_in_serial_order(self, workload, serial):
        queries, data = workload
        result = run_resilient(queries, data, chunk_size=8)
        assert result.matched_pairs == serial.matched_pairs

    def test_validation(self, workload):
        queries, data = workload
        with pytest.raises(ValueError):
            run_resilient(queries, [], chunk_size=4)
        with pytest.raises(ValueError):
            run_resilient(queries, data, chunk_size=0)
        with pytest.raises(ValueError):
            run_resilient(queries, data, on_truncate="explode")
        with pytest.raises(ValueError):
            run_resilient(queries, data, max_attempts=0)


class TestOOMDegradation:
    def test_injected_ooms_recovered(self, workload, serial):
        queries, data = workload
        plan = FaultPlan(seed=3, oom_rate=0.7, fault_attempts=2)
        result = run_resilient(
            queries, data, chunk_size=8, fault_plan=plan, max_attempts=6
        )
        assert result.status == COMPLETE
        assert result.report.n_retries > 0
        assert_equals_serial(result, serial)

    def test_memory_budget_splits_chunks(self, workload, serial):
        queries, data = workload
        full = sum(predict_chunk_footprint(queries, data).values())
        pool = DeviceMemoryPool(capacity_bytes=full // 3, reserve_fraction=0.0)
        result = run_resilient(
            queries, data, chunk_size=len(data), memory=pool, max_attempts=8
        )
        assert result.status == COMPLETE
        assert result.n_chunks > 1  # the single chunk had to split
        assert_equals_serial(result, serial)
        # leases were all returned; peak shows the budget was exercised
        assert pool.used == 0
        assert 0 < pool.peak <= pool.capacity

    def test_auto_chunk_size_from_budget(self, workload, serial):
        queries, data = workload
        full = sum(predict_chunk_footprint(queries, data).values())
        result = run_resilient(
            queries, data, chunk_size=None, memory_budget_bytes=full // 2
        )
        assert result.status == COMPLETE
        assert result.n_chunks > 1
        assert_equals_serial(result, serial)

    def test_exhausted_attempts_go_partial(self, workload):
        queries, data = workload
        plan = FaultPlan(seed=1, oom_rate=1.0, fault_attempts=10**6)
        result = run_resilient(
            queries, data, chunk_size=8, fault_plan=plan, max_attempts=2
        )
        assert result.status == PARTIAL
        assert result.total_matches == 0
        assert any(rec.status == "failed" for rec in result.chunk_records)

    def test_infeasible_graph_skipped(self, workload):
        queries, data = workload
        # a pool so small no single graph fits: every range degrades to
        # span 1 and is then declared infeasible instead of looping
        pool = DeviceMemoryPool(capacity_bytes=16, reserve_fraction=0.0)
        result = run_resilient(
            queries, data[:4], chunk_size=4, memory=pool, max_attempts=8
        )
        assert result.status == PARTIAL
        assert all(
            rec.status in ("infeasible", "failed") for rec in result.chunk_records
        )


class TestJoinWatchdog:
    def test_token_chain_recombines_to_serial(self, rich_workload, rich_serial):
        queries, data = rich_workload
        serial = rich_serial
        budget = JoinBudget(max_matches=20)
        parts = [
            run_resilient(
                queries, data, chunk_size=8, join_budget=budget, on_truncate="token"
            )
        ]
        while parts[-1].resume_token is not None:
            assert parts[-1].status == PARTIAL
            parts.append(
                run_resilient(
                    queries,
                    data,
                    chunk_size=8,
                    join_budget=budget,
                    on_truncate="token",
                    resume_token=parts[-1].resume_token,
                )
            )
            assert len(parts) < 50  # must converge
        combined = combine_results(*parts)
        assert combined.status == COMPLETE
        assert_equals_serial(combined, serial)
        assert combined.matched_pairs == sorted(serial.matched_pairs)

    def test_truncated_partial_is_verified_prefix(self, rich_workload, rich_serial):
        queries, data = rich_workload
        serial = rich_serial
        result = run_resilient(
            queries,
            data,
            chunk_size=8,
            join_budget=JoinBudget(max_matches=20),
            on_truncate="token",
        )
        assert result.status == PARTIAL
        assert result.resume_token is not None
        assert any(rec.status == "truncated" for rec in result.chunk_records)
        # everything returned so far is a subset of the serial result
        assert set(result.matched_pairs) <= set(serial.matched_pairs)

    def test_auto_resume_matches_serial(self, rich_workload, rich_serial):
        queries, data = rich_workload
        serial = rich_serial
        result = run_resilient(
            queries,
            data,
            chunk_size=30,
            join_budget=JoinBudget(max_matches=20),
            on_truncate="resume",
        )
        assert result.status == COMPLETE
        assert_equals_serial(result, serial)
        assert result.chunk_records[0].segments > 1

    def test_token_roundtrips_via_dict(self, workload):
        token = ResumeToken(start=8, stop=16, next_pair=3)
        assert ResumeToken.from_dict(token.to_dict()) == token
        queries, data = workload
        with pytest.raises(ValueError):
            run_resilient(
                queries, data, resume_token=ResumeToken(0, len(data) + 5, 0)
            )


class TestCheckpointResume:
    def test_kill_and_resume_identical(self, workload, serial, tmp_path):
        queries, data = workload
        ckpt = tmp_path / "ckpt"
        first = run_resilient(queries, data, chunk_size=8, checkpoint=ckpt)
        assert first.status == COMPLETE
        # simulate a crash that lost two chunks: delete one, corrupt one
        (ckpt / "chunk-0000000-0000008.npz").unlink()
        (ckpt / "chunk-0000008-0000016.npz").write_bytes(b"torn write")
        resumed = run_resilient(queries, data, chunk_size=8, checkpoint=ckpt)
        assert resumed.status == COMPLETE
        assert resumed.chunks_from_checkpoint == 2
        assert_equals_serial(resumed, serial)
        assert resumed.matched_pairs == serial.matched_pairs

    def test_fresh_checkpoint_runs_everything(self, workload, tmp_path):
        queries, data = workload
        result = run_resilient(
            queries, data, chunk_size=8, checkpoint=tmp_path / "new"
        )
        assert result.chunks_from_checkpoint == 0
        assert result.status == COMPLETE

    def test_truncated_chunk_resumes_from_pair(self, rich_workload, rich_serial, tmp_path):
        queries, data = rich_workload
        serial = rich_serial
        ckpt = tmp_path / "trunc"
        partial = run_resilient(
            queries,
            data,
            chunk_size=8,
            join_budget=JoinBudget(max_matches=20),
            on_truncate="token",
            checkpoint=ckpt,
        )
        assert partial.status == PARTIAL
        # restart without the budget: cached OK chunks skip, the
        # truncated chunk continues from its persisted pair token
        resumed = run_resilient(queries, data, chunk_size=8, checkpoint=ckpt)
        assert resumed.status == COMPLETE
        assert_equals_serial(resumed, serial)

    def test_fingerprint_binds_workload(self, workload):
        queries, data = workload
        a = workload_fingerprint(queries, data, "find-all", None)
        b = workload_fingerprint(queries, data[:-1], "find-all", None)
        c = workload_fingerprint(queries, data, "find-first", None)
        d = workload_fingerprint(
            queries, data, "find-all", SigmoConfig(refinement_iterations=2)
        )
        assert len({a, b, c, d}) == 4

    def test_faulted_checkpointed_run_still_exact(self, workload, serial, tmp_path):
        queries, data = workload
        plan = FaultPlan(seed=5, oom_rate=0.6, fault_attempts=1)
        faulted = run_resilient(
            queries,
            data,
            chunk_size=8,
            checkpoint=tmp_path / "f",
            fault_plan=plan,
            max_attempts=6,
        )
        assert faulted.status == COMPLETE
        assert_equals_serial(faulted, serial)
        resumed = run_resilient(
            queries, data, chunk_size=8, checkpoint=tmp_path / "f"
        )
        assert resumed.report.n_attempts == resumed.chunks_from_checkpoint
        assert_equals_serial(resumed, serial)


class TestTelemetry:
    def test_attempts_recorded(self, workload):
        queries, data = workload
        plan = FaultPlan(seed=3, oom_rate=0.7, fault_attempts=2)
        result = run_resilient(
            queries, data, chunk_size=8, fault_plan=plan, max_attempts=6
        )
        assert result.report.n_faults > 0
        assert result.report.outcomes()["ok"] >= result.n_chunks
        summary = result.report.summary()
        assert "retrie" in summary and "oom" in summary
        payload = result.report.to_dict()
        assert len(payload["attempts"]) == result.report.n_attempts
