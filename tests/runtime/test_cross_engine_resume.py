"""Cross-engine resume: a truncation token is portable, not engine-local.

The serving layer's resume tokens (:class:`repro.serve.request.
ServeResumeToken`) promise that the continuation of a truncated join can
run on a *different* engine/session instance — a rebuilt pool lane, a
different replica, even a fresh process — as long as the query/data
fingerprints match.  That promise rests on an engine-level invariant
tested here: the filter and mapping stages are deterministic functions
of (batches, config), so a second engine over the same inputs rebuilds
the exact same GMCR and the pair index in the token stays valid.
"""

import pytest

from repro.core.engine import SigmoEngine
from repro.core.join import FIND_ALL, FIND_FIRST, JoinBudget
from repro.pipeline.session import MatcherSession

pytestmark = pytest.mark.robustness

BUDGET = JoinBudget(max_visits=200)


@pytest.fixture(scope="module")
def workload(small_dataset):
    return small_dataset.queries[:6], small_dataset.data[:24]


@pytest.fixture(scope="module")
def unbudgeted(workload):
    queries, data = workload
    return SigmoEngine(queries, data).run()


def drain(run_once, first):
    """Accumulate a truncation chain into (total, pairs, hops)."""
    total = first.total_matches
    pairs = list(first.matched_pairs())
    hops = 0
    result = first
    while result.truncated:
        result = run_once(result.resume_pair)
        total += result.total_matches
        pairs.extend(result.matched_pairs())
        hops += 1
    return total, pairs, hops


class TestCrossEngineResume:
    def test_resume_on_a_fresh_engine_is_bitwise_equal(
        self, workload, unbudgeted
    ):
        queries, data = workload
        first = SigmoEngine(queries, data).run(join_budget=BUDGET)
        assert first.truncated, "budget must actually truncate"

        def fresh_engine_hop(resume_pair):
            # a brand-new engine instance per hop: nothing shared but
            # the input batches
            return SigmoEngine(queries, data).run(
                join_budget=BUDGET, join_start_pair=resume_pair
            )

        total, pairs, hops = drain(fresh_engine_hop, first)
        assert hops >= 1
        assert total == unbudgeted.total_matches
        assert sorted(pairs) == sorted(unbudgeted.matched_pairs())

    def test_cross_engine_chain_equals_same_engine_chain(self, workload):
        queries, data = workload
        engine = SigmoEngine(queries, data)
        first_same = engine.run(join_budget=BUDGET)
        total_same, pairs_same, _ = drain(
            lambda p: engine.run(join_budget=BUDGET, join_start_pair=p),
            first_same,
        )
        first_cross = SigmoEngine(queries, data).run(join_budget=BUDGET)
        total_cross, pairs_cross, _ = drain(
            lambda p: SigmoEngine(queries, data).run(
                join_budget=BUDGET, join_start_pair=p
            ),
            first_cross,
        )
        assert total_cross == total_same
        assert sorted(pairs_cross) == sorted(pairs_same)

    def test_resume_on_a_fresh_session_instance(self, workload, unbudgeted):
        queries, data = workload
        maker = lambda: MatcherSession(queries)  # noqa: E731
        first = maker().match(data, join_budget=BUDGET)
        assert first.truncated
        total, pairs, hops = drain(
            lambda p: maker().match(
                data, join_budget=BUDGET, join_start_pair=p
            ),
            first,
        )
        assert hops >= 1
        assert total == unbudgeted.total_matches
        assert sorted(pairs) == sorted(unbudgeted.matched_pairs())

    def test_find_first_resume_crosses_engines_too(self, workload):
        queries, data = workload
        expected = SigmoEngine(queries, data).run(mode=FIND_FIRST)
        first = SigmoEngine(queries, data).run(
            mode=FIND_FIRST, join_budget=JoinBudget(max_visits=100)
        )
        if not first.truncated:
            pytest.skip("budget did not truncate this workload")
        total, pairs, _ = drain(
            lambda p: SigmoEngine(queries, data).run(
                mode=FIND_FIRST,
                join_budget=JoinBudget(max_visits=100),
                join_start_pair=p,
            ),
            first,
        )
        assert total == expected.total_matches
        assert sorted(pairs) == sorted(expected.matched_pairs())

    def test_resume_pair_is_a_pair_boundary(self, workload):
        queries, data = workload
        first = SigmoEngine(queries, data).run(join_budget=BUDGET)
        assert first.truncated
        assert 0 < first.resume_pair <= first.gmcr.n_pairs
        # pairs strictly before the resume point are fully joined: the
        # continuation must not re-report them
        cont = SigmoEngine(queries, data).run(
            join_budget=None, join_start_pair=first.resume_pair
        )
        overlap = set(first.matched_pairs()) & set(cont.matched_pairs())
        assert not overlap
