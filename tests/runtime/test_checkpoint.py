"""Unit tests for the atomic, checksummed checkpoint store."""

import json

import numpy as np
import pytest

from repro.core.results import MatchRecord
from repro.runtime.checkpoint import (
    STATUS_OK,
    STATUS_TRUNCATED,
    CheckpointMismatch,
    CheckpointStore,
    ChunkPayload,
)

pytestmark = pytest.mark.robustness


def make_payload(start=0, stop=4, status=STATUS_OK, next_pair=0):
    return ChunkPayload(
        start=start,
        stop=stop,
        status=status,
        next_pair=next_pair,
        total_matches=3,
        matched_pairs=[(start, 0), (start + 1, 1), (start + 2, 0)],
        embeddings=[
            MatchRecord(start, 0, np.array([0, 1], dtype=np.int32)),
            MatchRecord(start + 1, 1, np.array([2, 0, 1], dtype=np.int32)),
        ],
        timings={"join": 0.25, "filter": 0.5},
        peak_memory_bytes=4096,
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", fingerprint="fp")
        store.save_chunk(make_payload())
        store.save_chunk(make_payload(start=4, stop=8))
        loaded = CheckpointStore(tmp_path / "ckpt", fingerprint="fp").load()
        assert set(loaded) == {(0, 4), (4, 8)}
        payload = loaded[(0, 4)]
        assert payload.total_matches == 3
        assert payload.matched_pairs == [(0, 0), (1, 1), (2, 0)]
        assert payload.timings == {"join": 0.25, "filter": 0.5}
        assert payload.peak_memory_bytes == 4096
        assert [(r.data_graph, r.query_graph, r.mapping.tolist()) for r in payload.embeddings] == [
            (0, 0, [0, 1]),
            (1, 1, [2, 0, 1]),
        ]

    def test_truncated_status_and_pair_persist(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload(status=STATUS_TRUNCATED, next_pair=17))
        loaded = CheckpointStore(tmp_path, fingerprint="fp").load()
        assert loaded[(0, 4)].status == STATUS_TRUNCATED
        assert loaded[(0, 4)].next_pair == 17

    def test_resave_overwrites(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload(status=STATUS_TRUNCATED, next_pair=5))
        store.save_chunk(make_payload(status=STATUS_OK))
        loaded = CheckpointStore(tmp_path, fingerprint="fp").load()
        assert loaded[(0, 4)].status == STATUS_OK

    def test_empty_directory_loads_empty(self, tmp_path):
        assert CheckpointStore(tmp_path / "none", fingerprint="fp").load() == {}

    def test_no_stray_tmp_files(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload())
        assert not [p for p in tmp_path.iterdir() if ".tmp." in p.name]


class TestCorruption:
    def test_fingerprint_mismatch_refuses(self, tmp_path):
        CheckpointStore(tmp_path, fingerprint="a").save_chunk(make_payload())
        with pytest.raises(CheckpointMismatch):
            CheckpointStore(tmp_path, fingerprint="b").load()

    def test_version_mismatch_refuses(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload())
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = 999
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointMismatch):
            CheckpointStore(tmp_path, fingerprint="fp").load()

    def test_corrupt_chunk_dropped(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload(0, 4))
        store.save_chunk(make_payload(4, 8))
        store.chunk_path(0, 4).write_bytes(b"garbage")
        reader = CheckpointStore(tmp_path, fingerprint="fp")
        loaded = reader.load()
        assert set(loaded) == {(4, 8)}  # corrupt range re-executes
        assert reader.dropped == {(0, 4): "checksum mismatch"}

    def test_missing_chunk_dropped(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload(0, 4))
        store.chunk_path(0, 4).unlink()
        reader = CheckpointStore(tmp_path, fingerprint="fp")
        assert reader.load() == {}
        assert reader.dropped == {(0, 4): "chunk file missing"}

    def test_orphan_chunk_file_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="fp")
        store.save_chunk(make_payload(0, 4))
        # a crash between chunk write and manifest write leaves an orphan
        store.chunk_path(4, 8).write_bytes(b"orphan")
        loaded = CheckpointStore(tmp_path, fingerprint="fp").load()
        assert set(loaded) == {(0, 4)}
