"""Unit tests for LabeledGraph."""

import numpy as np
import pytest

from repro.graph.labeled_graph import LabeledGraph


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph([])
        assert g.n_nodes == 0 and g.n_edges == 0

    def test_nodes_only(self):
        g = LabeledGraph([0, 1, 2])
        assert g.n_nodes == 3 and g.n_edges == 0

    def test_basic_edges(self):
        g = LabeledGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert g.n_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_default_edge_labels_zero(self):
        g = LabeledGraph([0, 1], [(0, 1)])
        assert g.edge_label(0, 1) == 0

    def test_explicit_edge_labels(self):
        g = LabeledGraph([0, 1, 2], [(0, 1), (1, 2)], [5, 7])
        assert g.edge_label(0, 1) == 5
        assert g.edge_label(2, 1) == 7

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            LabeledGraph([0, 1], [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            LabeledGraph([0, 1], [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            LabeledGraph([0, 1], [(0, 2)])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError, match="non-negative"):
            LabeledGraph([-1, 0])

    def test_rejects_bad_edge_label_count(self):
        with pytest.raises(ValueError, match="edge_labels length"):
            LabeledGraph([0, 1], [(0, 1)], [1, 2])


class TestAccessors:
    @pytest.fixture
    def g(self):
        return LabeledGraph([3, 1, 4, 1], [(0, 1), (0, 2), (2, 3)], [1, 2, 3])

    def test_degree_array(self, g):
        np.testing.assert_array_equal(g.degree(), [2, 1, 2, 1])

    def test_degree_scalar(self, g):
        assert g.degree(0) == 2

    def test_neighbors_sorted(self, g):
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])

    def test_neighbor_edge_labels_parallel(self, g):
        np.testing.assert_array_equal(g.neighbor_edge_labels(0), [1, 2])

    def test_edge_label_missing_raises(self, g):
        with pytest.raises(KeyError):
            g.edge_label(1, 3)

    def test_max_label(self, g):
        assert g.max_label == 4

    def test_max_label_empty(self):
        assert LabeledGraph([]).max_label == -1

    def test_label_counts(self, g):
        np.testing.assert_array_equal(g.label_counts(5), [0, 2, 0, 1, 1])


class TestDiameter:
    def test_path(self):
        g = LabeledGraph([0] * 4, [(0, 1), (1, 2), (2, 3)])
        assert g.diameter() == 3

    def test_cached(self):
        g = LabeledGraph([0, 0], [(0, 1)])
        assert g.diameter() == 1
        assert g._diameter == 1

    def test_disconnected_raises(self):
        g = LabeledGraph([0, 0])
        with pytest.raises(ValueError):
            g.diameter()


class TestNetworkxRoundtrip:
    def test_roundtrip_preserves_structure(self):
        g = LabeledGraph([2, 1, 0], [(0, 1), (1, 2)], [4, 2])
        back = LabeledGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_arbitrary_names(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node("a", label=1)
        nxg.add_node("b", label=2)
        nxg.add_edge("a", "b", label=3)
        g = LabeledGraph.from_networkx(nxg)
        assert g.n_nodes == 2 and g.n_edges == 1


class TestEquality:
    def test_equal_graphs(self):
        a = LabeledGraph([0, 1], [(0, 1)], [2])
        b = LabeledGraph([0, 1], [(1, 0)], [2])
        assert a == b

    def test_different_edge_labels(self):
        a = LabeledGraph([0, 1], [(0, 1)], [2])
        b = LabeledGraph([0, 1], [(0, 1)], [3])
        assert a != b

    def test_not_implemented_for_other_types(self):
        assert LabeledGraph([0]) != 42
