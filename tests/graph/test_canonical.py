"""Unit tests for canonical forms."""

import numpy as np
import pytest

from repro.graph.canonical import (
    are_isomorphic,
    canonical_form,
    canonical_order,
    deduplicate,
    relabel,
)
from repro.graph.generators import path_graph, random_connected_graph, ring_graph
from repro.graph.labeled_graph import LabeledGraph


def shuffled(graph, rng):
    """Random relabeling of a graph."""
    perm = rng.permutation(graph.n_nodes)
    return relabel(graph, perm)


class TestCanonicalOrder:
    def test_is_permutation(self, rng):
        g = random_connected_graph(10, 4, 3, rng)
        order = canonical_order(g)
        assert sorted(order.tolist()) == list(range(10))

    def test_empty_graph(self):
        assert canonical_order(LabeledGraph([])).size == 0

    def test_invariant_under_relabeling(self, rng):
        for _ in range(10):
            g = random_connected_graph(int(rng.integers(3, 12)), 3, 3, rng, 2)
            h = shuffled(g, rng)
            assert canonical_form(g) == canonical_form(h)

    def test_symmetric_graphs(self, rng):
        ring = ring_graph(8, [1] * 8)
        assert canonical_form(ring) == canonical_form(shuffled(ring, rng))


class TestAreIsomorphic:
    def test_positive(self, rng):
        g = random_connected_graph(9, 3, 3, rng, 2)
        assert are_isomorphic(g, shuffled(g, rng))

    def test_label_difference_detected(self):
        assert not are_isomorphic(path_graph([0, 1, 2]), path_graph([0, 1, 1]))

    def test_edge_label_difference_detected(self):
        a = path_graph([0, 0], [1])
        b = path_graph([0, 0], [2])
        assert not are_isomorphic(a, b)

    def test_structure_difference_detected(self):
        a = path_graph([0, 0, 0, 0])
        b = ring_graph(4, [0, 0, 0, 0])
        assert not are_isomorphic(a, b)

    def test_agrees_with_networkx(self, rng):
        import networkx as nx

        for _ in range(10):
            a = random_connected_graph(int(rng.integers(3, 10)), 3, 2, rng, 2)
            b = random_connected_graph(int(rng.integers(3, 10)), 3, 2, rng, 2)
            nm = lambda x, y: x["label"] == y["label"]
            ref = nx.is_isomorphic(
                a.to_networkx(), b.to_networkx(), node_match=nm, edge_match=nm
            )
            assert are_isomorphic(a, b) == ref

    def test_regular_graphs_needing_individualization(self):
        # two non-isomorphic 3-regular graphs: K4 minus perfect matching
        # style cases; color refinement alone cannot split regular graphs.
        hexagon = ring_graph(6, [0] * 6)
        two_triangles_edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        two_triangles = LabeledGraph([0] * 6, two_triangles_edges)
        assert not are_isomorphic(hexagon, two_triangles)


class TestDeduplicate:
    def test_removes_isomorphic_duplicates(self, rng):
        g = random_connected_graph(8, 3, 3, rng)
        graphs = [g, shuffled(g, rng), path_graph([0, 1]), shuffled(g, rng)]
        keep = deduplicate(graphs)
        assert keep == [0, 2]

    def test_all_unique(self):
        graphs = [path_graph([0, 1]), path_graph([1, 0, 1]), ring_graph(3, [0] * 3)]
        assert deduplicate(graphs) == [0, 1, 2]

    def test_generated_molecules_mostly_unique(self):
        from repro.chem.generator import MoleculeGenerator

        mols = [m.graph() for m in MoleculeGenerator(seed=5).generate_batch(30)]
        assert len(deduplicate(mols)) >= 28
