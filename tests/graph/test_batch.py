"""Unit tests for GraphBatch."""

import numpy as np
import pytest

from repro.graph.batch import GraphBatch
from repro.graph.generators import path_graph, ring_graph
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def batch():
    return GraphBatch([path_graph([0, 1]), ring_graph(3, [2, 2, 2]), path_graph([1])])


class TestSizes:
    def test_counts(self, batch):
        assert batch.n_graphs == 3
        assert batch.total_nodes == 6
        assert batch.total_edges == 4

    def test_empty_batch(self):
        b = GraphBatch([])
        assert b.n_graphs == 0 and b.total_nodes == 0

    def test_len_iter_getitem(self, batch):
        assert len(batch) == 3
        assert [g.n_nodes for g in batch] == [2, 3, 1]
        assert batch[1].n_nodes == 3


class TestIdMapping:
    def test_graph_of_node(self, batch):
        assert batch.graph_of_node(0) == 0
        assert batch.graph_of_node(2) == 1
        assert batch.graph_of_node(5) == 2

    def test_graph_of_node_out_of_range(self, batch):
        with pytest.raises(ValueError):
            batch.graph_of_node(6)

    def test_local_global_roundtrip(self, batch):
        for gid in range(3):
            lo, hi = batch.node_range(gid)
            for local in range(hi - lo):
                global_id = batch.global_node(gid, local)
                assert batch.local_node(global_id) == (gid, local)

    def test_global_node_validates(self, batch):
        with pytest.raises(ValueError):
            batch.global_node(0, 5)

    def test_node_range_validates(self, batch):
        with pytest.raises(ValueError):
            batch.node_range(3)


class TestMergedViews:
    def test_merged_labels(self, batch):
        np.testing.assert_array_equal(batch.merged_labels, [0, 1, 2, 2, 2, 1])

    def test_merged_edges_offsets(self, batch):
        edges, labels = batch.merged_edges()
        assert edges.min() >= 0 and edges.max() == 4
        assert edges.shape == (4, 2)
        assert labels.shape == (4,)

    def test_merged_graph_is_disconnected_union(self, batch):
        g = batch.merged_graph()
        assert g.n_nodes == 6 and g.n_edges == 4
        assert not g.has_edge(1, 2)  # across graph boundary

    def test_merged_empty(self):
        edges, labels = GraphBatch([]).merged_edges()
        assert edges.shape == (0, 2)

    def test_max_label(self, batch):
        assert batch.max_label() == 2
        assert GraphBatch([]).max_label() == -1

    def test_subbatch(self, batch):
        sub = batch.subbatch([2, 0])
        assert sub.n_graphs == 2
        assert sub[0].n_nodes == 1
