"""Unit tests for the generic graph generators."""

import numpy as np
import pytest

from repro.graph import algorithms as alg
from repro.graph import generators as gen


class TestRandomTree:
    def test_is_tree(self, rng):
        g = gen.random_tree(12, 3, rng)
        assert g.n_edges == 11
        assert alg.is_connected(g)

    def test_single_node(self, rng):
        assert gen.random_tree(1, 2, rng).n_edges == 0

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            gen.random_tree(0, 2, rng)

    def test_labels_in_range(self, rng):
        g = gen.random_tree(30, 4, rng)
        assert g.labels.max() < 4


class TestRandomConnectedGraph:
    def test_connected_with_extra_edges(self, rng):
        g = gen.random_connected_graph(15, 6, 3, rng)
        assert alg.is_connected(g)
        assert g.n_edges >= 14

    def test_respects_max_degree(self, rng):
        g = gen.random_connected_graph(20, 30, 2, rng, max_degree=4)
        assert max(g.degree()) <= max(4, max(g.degree()[np.argmax(g.degree())], 0))
        # tree construction itself may exceed; degree bound applies to extras
        # so at minimum the graph stays simple
        assert g.n_edges <= 20 * 4 // 2 + 19


class TestFixedShapes:
    def test_ring(self):
        g = gen.ring_graph(5, [0, 1, 2, 3, 4], edge_label=7)
        assert g.n_edges == 5
        assert g.edge_label(0, 4) == 7

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gen.ring_graph(2, [0, 1])

    def test_ring_label_mismatch(self):
        with pytest.raises(ValueError):
            gen.ring_graph(3, [0, 1])

    def test_path(self):
        g = gen.path_graph([4, 5, 6])
        assert g.n_edges == 2 and g.diameter() == 2

    def test_star(self):
        g = gen.star_graph(9, [1, 2, 3])
        assert g.degree(0) == 3
        assert g.labels[0] == 9


class TestRandomSubgraphPattern:
    def test_witness_is_valid_embedding(self, rng):
        host = gen.random_connected_graph(15, 5, 3, rng, n_edge_labels=2)
        pattern, witness = gen.random_subgraph_pattern(host, 5, rng)
        # labels preserved
        np.testing.assert_array_equal(pattern.labels, host.labels[witness])
        # every pattern edge exists in host with same label
        for (u, v), lab in zip(pattern.edges, pattern.edge_labels):
            assert host.has_edge(int(witness[u]), int(witness[v]))
            assert host.edge_label(int(witness[u]), int(witness[v])) == lab

    def test_pattern_connected_for_connected_host(self, rng):
        host = gen.random_connected_graph(12, 4, 2, rng)
        pattern, _ = gen.random_subgraph_pattern(host, 6, rng)
        assert alg.is_connected(pattern)

    def test_size_bounds(self, rng):
        host = gen.path_graph([0, 1])
        with pytest.raises(ValueError):
            gen.random_subgraph_pattern(host, 3, rng)
