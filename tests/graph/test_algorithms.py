"""Unit tests for graph algorithms."""

import numpy as np
import pytest

from repro.graph import algorithms as alg
from repro.graph.generators import path_graph, random_connected_graph, ring_graph
from repro.graph.labeled_graph import LabeledGraph


class TestBfsDistances:
    def test_path_distances(self):
        g = path_graph([0, 0, 0, 0])
        np.testing.assert_array_equal(alg.bfs_distances(g, 0), [0, 1, 2, 3])

    def test_unreachable_is_minus_one(self):
        g = LabeledGraph([0, 0, 0], [(0, 1)])
        assert alg.bfs_distances(g, 0)[2] == -1

    def test_bad_source(self):
        with pytest.raises(ValueError):
            alg.bfs_distances(path_graph([0]), 5)


class TestBfsLayers:
    def test_rings_partition_reachable_set(self):
        g = ring_graph(6, [0] * 6)
        layers = dict(alg.bfs_layers(g, 0))
        assert sorted(layers) == [0, 1, 2, 3]
        np.testing.assert_array_equal(layers[0], [0])
        assert set(layers[1].tolist()) == {1, 5}
        assert set(layers[3].tolist()) == {3}

    def test_max_depth_truncates(self):
        g = path_graph([0] * 5)
        layers = list(alg.bfs_layers(g, 0, max_depth=2))
        assert layers[-1][0] == 2


class TestDiameterEccentricity:
    def test_ring_diameter(self):
        assert alg.diameter(ring_graph(8, [0] * 8)) == 4

    def test_single_node(self):
        assert alg.diameter(LabeledGraph([0])) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            alg.diameter(LabeledGraph([]))

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(ValueError):
            alg.eccentricity(LabeledGraph([0, 0]), 0)


class TestConnectivity:
    def test_connected(self):
        assert alg.is_connected(path_graph([0, 0]))

    def test_disconnected(self):
        assert not alg.is_connected(LabeledGraph([0, 0]))

    def test_empty_is_connected(self):
        assert alg.is_connected(LabeledGraph([]))

    def test_components(self):
        g = LabeledGraph([0] * 5, [(0, 1), (2, 3)])
        comps = alg.connected_components(g)
        assert [c.tolist() for c in comps] == [[0, 1], [2, 3], [4]]


class TestGraphPower:
    def test_square_of_path(self):
        g = path_graph([0, 0, 0, 0])
        g2 = alg.graph_power(g, 2)
        assert g2.has_edge(0, 2) and g2.has_edge(1, 3)
        assert not g2.has_edge(0, 3)

    def test_power_one_is_identity_structure(self):
        g = ring_graph(5, [0] * 5)
        g1 = alg.graph_power(g, 1)
        assert g1.n_edges == g.n_edges

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            alg.graph_power(path_graph([0, 0]), 0)


class TestNeighborhoodSignature:
    def test_radius_zero_is_empty(self):
        g = path_graph([0, 1, 2])
        assert alg.neighborhood_signature(g, 1, 0, 3).sum() == 0

    def test_radius_one_counts_neighbors(self):
        g = path_graph([0, 1, 2])
        sig = alg.neighborhood_signature(g, 1, 1, 3)
        np.testing.assert_array_equal(sig, [1, 0, 1])

    def test_radius_covers_graph(self):
        g = path_graph([0, 1, 2, 1])
        sig = alg.neighborhood_signature(g, 0, 10, 3)
        np.testing.assert_array_equal(sig, [0, 2, 1])

    def test_excludes_self(self):
        g = ring_graph(4, [5, 5, 5, 5])
        sig = alg.neighborhood_signature(g, 0, 2, 6)
        assert sig[5] == 3  # the other three ring nodes, not itself


class TestTreewidth:
    def test_tree_is_tw_le2(self):
        assert alg.treewidth_at_most_two(path_graph([0] * 6))

    def test_ring_is_tw_le2(self):
        assert alg.treewidth_at_most_two(ring_graph(6, [0] * 6))

    def test_k4_is_not(self):
        k4 = LabeledGraph([0] * 4, [(a, b) for a in range(4) for b in range(a + 1, 4)])
        assert not alg.treewidth_at_most_two(k4)

    def test_empty(self):
        assert alg.treewidth_at_most_two(LabeledGraph([]))

    def test_fused_rings_are_tw2(self):
        # naphthalene-like fused hexagons have treewidth 2
        edges = [(i, (i + 1) % 6) for i in range(6)]
        edges += [(0, 6), (6, 7), (7, 8), (8, 9), (9, 3)]
        g = LabeledGraph([0] * 10, edges)
        assert alg.treewidth_at_most_two(g)

    def test_molecular_graphs_are_tw2(self, rng):
        from repro.chem.generator import MoleculeGenerator

        gen = MoleculeGenerator(seed=3)
        for mol in gen.generate_batch(20):
            assert alg.treewidth_at_most_two(mol.graph())
