"""Memo tables: LRU semantics and the config-keying discipline.

The keying tests are the satellite requirement: every config field that
influences a memoized value must be part of its key, asserted by flipping
the field and observing a rebuild (a memo *miss*) instead of a stale hit.
"""

import numpy as np
import pytest

from repro.accel.memo import (
    ContentMemo,
    array_hash,
    frozen_array,
    plan_memo,
    signature_memo,
)
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine

pytestmark = pytest.mark.perf_accel


class TestContentMemo:
    def test_get_put_roundtrip(self):
        memo = ContentMemo(4)
        assert memo.get("k") is None
        memo.put("k", 42)
        assert memo.get("k") == 42
        assert memo.stats.misses == 1
        assert memo.stats.hits == 1

    def test_lru_eviction_order(self):
        memo = ContentMemo(2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # refresh "a" -> "b" is now least recent
        memo.put("c", 3)
        assert memo.get("a") == 1
        assert memo.get("b") is None
        assert memo.stats.evictions == 1

    def test_none_rejected(self):
        with pytest.raises(ValueError, match="None"):
            ContentMemo(2).put("k", None)

    def test_get_or_build_builds_once(self):
        memo = ContentMemo(2)
        calls = []
        for _ in range(3):
            memo.get_or_build("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_clear_resets(self):
        memo = ContentMemo(2)
        memo.put("k", 1)
        memo.get("k")
        memo.clear()
        assert len(memo) == 0
        assert memo.stats.lookups == 0

    def test_array_hash_distinguishes_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.int32)
        assert array_hash(a) != array_hash(a.astype(np.int64))
        assert array_hash(a) != array_hash(a.reshape(2, 2))
        assert array_hash(a) == array_hash(np.zeros(4, dtype=np.int32))

    def test_frozen_array_is_readonly_copy(self):
        a = np.arange(3)
        f = frozen_array(a)
        assert not f.flags.writeable
        a[0] = 99
        assert f[0] == 0


class TestPlanMemoKeying:
    def _run(self, bench, **config_fields):
        config = SigmoConfig(**config_fields)
        SigmoEngine(bench.queries, bench.data, config).run()

    def test_identical_run_hits(self, bench):
        self._run(bench)
        misses = plan_memo().stats.misses
        assert misses >= 1
        self._run(bench)
        assert plan_memo().stats.misses == misses
        assert plan_memo().stats.hits >= 1

    @pytest.mark.parametrize(
        "field_flip",
        [
            {"candidate_order": "bfs"},
            {"wildcard_edge_label": 0},
            {"induced": True},
        ],
    )
    def test_plan_affecting_field_forces_rebuild(self, bench, field_flip):
        self._run(bench)
        misses = plan_memo().stats.misses
        self._run(bench, **field_flip)
        assert plan_memo().stats.misses > misses, (
            f"flipping {field_flip} must rebuild the plans, not hit the memo"
        )

    def test_refinement_iterations_key_via_counts(self, bench):
        # More refinement shrinks candidate sets -> different counts hash
        # -> different plan key (the counts feed the matching order).
        self._run(bench, refinement_iterations=1)
        misses = plan_memo().stats.misses
        self._run(bench, refinement_iterations=6)
        assert plan_memo().stats.misses > misses


class TestSignatureMemoKeying:
    def _run(self, bench, **config_fields):
        config = SigmoConfig(**config_fields)
        SigmoEngine(bench.queries, bench.data, config).run()

    def test_identical_run_hits(self, bench):
        self._run(bench, refinement_iterations=3)
        misses = signature_memo().stats.misses
        assert misses >= 2  # query + data sides, radii 1..2
        self._run(bench, refinement_iterations=3)
        assert signature_memo().stats.misses == misses
        assert signature_memo().stats.hits >= misses

    def test_deeper_sweep_reuses_shallow_radii(self, bench):
        self._run(bench, refinement_iterations=3)  # radii 1, 2
        misses = signature_memo().stats.misses
        self._run(bench, refinement_iterations=4)  # adds radius 3 only
        new_misses = signature_memo().stats.misses - misses
        assert new_misses == 2  # query + data at radius 3, nothing else

    def test_wildcard_label_forces_rebuild(self, bench):
        self._run(bench, refinement_iterations=2)
        misses = signature_memo().stats.misses
        self._run(bench, refinement_iterations=2, wildcard_label=0)
        # The query side re-runs (different ignore_label in its key).
        assert signature_memo().stats.misses > misses

    def test_results_identical_through_memo(self, bench):
        config = SigmoConfig(refinement_iterations=4, record_embeddings=True)
        r1 = SigmoEngine(bench.queries, bench.data, config).run()
        r2 = SigmoEngine(bench.queries, bench.data, config).run()
        assert r1.total_matches == r2.total_matches
        assert np.array_equal(
            r1.join_result.pair_matches, r2.join_result.pair_matches
        )
        assert signature_memo().stats.hits > 0

    def test_size_guard_skips_memoization(self, bench, monkeypatch):
        import repro.core.filtering as filtering

        monkeypatch.setattr(filtering, "SIGNATURE_MEMO_MAX_BYTES", 0)
        self._run(bench, refinement_iterations=3)
        assert len(signature_memo()) == 0
        assert signature_memo().stats.hits == 0
