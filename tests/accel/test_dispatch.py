"""Backend selection: the plan-cost heuristic and the config override."""

import pytest

from repro.accel.dispatch import (
    BACKEND_AUTO,
    BACKEND_DFS,
    BACKEND_TABULAR,
    JOIN_BACKENDS,
    TABULAR_MIN_ELEMENTS,
    select_backend,
)
from repro.core.config import SigmoConfig

pytestmark = pytest.mark.perf_accel


class TestHeuristic:
    def test_find_first_stays_on_dfs(self):
        assert select_backend(True, 5, [1000, 1000]) == BACKEND_DFS

    def test_single_node_query_stays_on_dfs(self):
        assert select_backend(False, 1, [10_000]) == BACKEND_DFS

    def test_large_first_expansion_goes_tabular(self):
        sizes = [TABULAR_MIN_ELEMENTS, 1]
        assert select_backend(False, 3, sizes) == BACKEND_TABULAR

    def test_small_first_expansion_stays_on_dfs(self):
        sizes = [1, TABULAR_MIN_ELEMENTS - 1]
        assert select_backend(False, 3, sizes) == BACKEND_DFS

    def test_threshold_boundary(self):
        below = select_backend(False, 2, [TABULAR_MIN_ELEMENTS - 1, 1])
        at = select_backend(False, 2, [TABULAR_MIN_ELEMENTS, 1])
        assert below == BACKEND_DFS
        assert at == BACKEND_TABULAR


class TestOverride:
    def test_forced_backends_win_over_heuristic(self):
        # Forcing beats every heuristic rule, including find-first.
        assert select_backend(True, 1, [1], BACKEND_TABULAR) == BACKEND_TABULAR
        assert select_backend(False, 9, [9999, 9999], BACKEND_DFS) == BACKEND_DFS

    def test_auto_is_default(self):
        assert select_backend(False, 2, [100, 100]) == select_backend(
            False, 2, [100, 100], BACKEND_AUTO
        )

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="join_backend"):
            select_backend(False, 2, [10, 10], "gpu")


class TestConfigKnob:
    def test_config_validates_backend(self):
        for backend in JOIN_BACKENDS:
            assert SigmoConfig(join_backend=backend).join_backend == backend
        with pytest.raises(ValueError, match="join_backend"):
            SigmoConfig(join_backend="vectorized")

    def test_with_backend_copies(self):
        base = SigmoConfig()
        forced = base.with_backend(BACKEND_TABULAR)
        assert base.join_backend == BACKEND_AUTO
        assert forced.join_backend == BACKEND_TABULAR
        assert forced.refinement_iterations == base.refinement_iterations
