"""Backend selection: the calibrated plan-cost model and the config override."""

import pytest

from repro.accel.dispatch import (
    BACKEND_AUTO,
    BACKEND_DFS,
    BACKEND_FUSED,
    BACKEND_TABULAR,
    JOIN_BACKENDS,
    MODE_FIND_ALL,
    MODE_FIND_FIRST,
    TABULAR_MIN_ELEMENTS,
    BackendCost,
    PlanCostModel,
    get_cost_model,
    select_backend,
    set_cost_model,
)
from repro.core.config import SigmoConfig

pytestmark = pytest.mark.perf_accel


def _flat_model(**costs):
    """A model whose Find All / Find First tables are identical.

    ``costs`` maps backend name -> (pair_overhead, element_cost).
    """
    table = {
        backend: BackendCost(*costs[backend])
        for backend in (BACKEND_DFS, BACKEND_TABULAR, BACKEND_FUSED)
    }
    return PlanCostModel(
        coefficients={MODE_FIND_ALL: dict(table), MODE_FIND_FIRST: dict(table)},
        source="test",
    )


class TestCostModel:
    def test_estimate_is_root_plus_first_expansion(self):
        assert PlanCostModel.estimate_elements(1, [7]) == 7
        # Deeper candidate lists never enter the estimate: pruning makes
        # them unknowable pre-join.
        assert PlanCostModel.estimate_elements(3, [4, 5, 10_000]) == 4 + 4 * 5

    def test_crossover_follows_coefficients(self):
        # dfs: 10 + 1*E, fused: 55 + 0.1*E  ->  crossover at E = 50.
        model = _flat_model(dfs=(10.0, 1.0), tabular=(100.0, 1.0), fused=(55.0, 0.1))
        assert model.choose(False, 2, [5, 9]) == BACKEND_DFS  # E=50: tie -> dfs
        assert model.choose(False, 2, [5, 10]) == BACKEND_FUSED  # E=55

    def test_single_node_query_stays_on_dfs(self):
        # Nothing to vectorize at depth 1 — even a model that makes DFS
        # look infinitely expensive cannot move the pair off it.
        model = _flat_model(dfs=(1e9, 1e9), tabular=(0.0, 0.0), fused=(0.0, 0.0))
        assert model.choose(False, 1, [10_000]) == BACKEND_DFS

    def test_fused_unavailable_falls_back_to_tabular(self):
        model = _flat_model(dfs=(1e9, 1e9), tabular=(0.0, 0.0), fused=(0.0, 0.0))
        assert model.choose(False, 3, [100, 100]) == BACKEND_FUSED
        assert (
            model.choose(False, 3, [100, 100], fused_available=False)
            == BACKEND_TABULAR
        )

    def test_default_crossover_matches_static_threshold(self):
        # The committed Find All coefficients reproduce the historical
        # static dfs/tabular threshold: with sizes [1, N] the estimate is
        # 1 + N, and the crossover lands right at TABULAR_MIN_ELEMENTS.
        below = select_backend(
            False, 2, [1, TABULAR_MIN_ELEMENTS - 1], fused_available=False
        )
        at = select_backend(
            False, 2, [1, TABULAR_MIN_ELEMENTS], fused_available=False
        )
        assert below == BACKEND_DFS
        assert at == BACKEND_TABULAR

    def test_find_first_is_a_cost_decision(self):
        # The old heuristic pinned Find First to DFS; the calibrated
        # model routes moderate pairs to the fused table and
        # enumeration-heavy pairs to the per-pair tabular pass.
        assert select_backend(True, 5, [10, 20]) == BACKEND_FUSED
        assert select_backend(True, 5, [1000, 1000]) == BACKEND_TABULAR

    def test_fused_tabular_crossover(self):
        # The fused table owns the many-small-pairs regime; above the
        # fused/tabular crossover (~1800 estimated elements) the
        # per-pair tabular pass is cheaper in both modes.
        for find_first in (False, True):
            assert select_backend(find_first, 3, [10, 50]) == BACKEND_FUSED
            assert select_backend(find_first, 3, [60, 60]) == BACKEND_TABULAR

    def test_ordering_descending_and_stable(self):
        model = get_cost_model()
        assert model.ordering([5, 9, 5, 12]) == [3, 1, 0, 2]
        assert model.ordering([]) == []

    def test_payload_round_trip(self):
        model = get_cost_model()
        again = PlanCostModel.from_payload(model.to_payload())
        assert again.source == model.source
        for mode in (MODE_FIND_ALL, MODE_FIND_FIRST):
            for backend in (BACKEND_DFS, BACKEND_TABULAR, BACKEND_FUSED):
                assert again.coefficients[mode][backend] == (
                    model.coefficients[mode][backend]
                )

    def test_payload_missing_backend_rejected(self):
        payload = get_cost_model().to_payload()
        del payload["coefficients"][MODE_FIND_ALL][BACKEND_FUSED]
        with pytest.raises(ValueError, match="missing backend"):
            PlanCostModel.from_payload(payload)
        with pytest.raises(ValueError, match="missing mode"):
            PlanCostModel.from_payload({"coefficients": {}})

    def test_set_cost_model_installs_and_resets(self):
        pinned = _flat_model(
            dfs=(0.0, 0.0), tabular=(1e9, 1e9), fused=(1e9, 1e9)
        )
        try:
            assert set_cost_model(pinned) is pinned
            assert get_cost_model() is pinned
            assert select_backend(False, 4, [9999, 9999]) == BACKEND_DFS
        finally:
            set_cost_model(None)
        assert get_cost_model().source == "default"


class TestOverride:
    def test_forced_backends_win_over_model(self):
        # Forcing beats every model rule, including the depth-1 guard.
        assert select_backend(True, 1, [1], BACKEND_TABULAR) == BACKEND_TABULAR
        assert select_backend(True, 1, [1], BACKEND_FUSED) == BACKEND_FUSED
        assert select_backend(False, 9, [9999, 9999], BACKEND_DFS) == BACKEND_DFS

    def test_auto_is_default(self):
        assert select_backend(False, 2, [100, 100]) == select_backend(
            False, 2, [100, 100], BACKEND_AUTO
        )

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="join_backend"):
            select_backend(False, 2, [10, 10], "gpu")


class TestConfigKnob:
    def test_config_validates_backend(self):
        for backend in JOIN_BACKENDS:
            assert SigmoConfig(join_backend=backend).join_backend == backend
        with pytest.raises(ValueError, match="join_backend"):
            SigmoConfig(join_backend="vectorized")

    def test_with_backend_copies(self):
        base = SigmoConfig()
        forced = base.with_backend(BACKEND_TABULAR)
        assert base.join_backend == BACKEND_AUTO
        assert forced.join_backend == BACKEND_TABULAR
        assert forced.refinement_iterations == base.refinement_iterations
