"""Shared-memory CSR-GO transport: roundtrip, isolation, and parity."""

import numpy as np
import pytest

from repro.cluster.parallel import run_parallel
from repro.cluster.shm import (
    CSRGO_FIELDS,
    SharedCSRGO,
    attach_csrgo,
    attached_csrgo,
    detach_all,
)
from repro.core.chunked import run_chunked, run_chunked_csrgo
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine

pytestmark = pytest.mark.perf_accel


@pytest.fixture(autouse=True)
def clean_mappings():
    yield
    detach_all()


class TestRoundtrip:
    def test_arrays_survive_export_attach(self, bench):
        original = CSRGO.from_graphs(bench.data)
        with SharedCSRGO(original) as shared:
            attached, shm = attach_csrgo(shared.handle)
            try:
                for f in CSRGO_FIELDS:
                    assert np.array_equal(
                        getattr(attached, f), getattr(original, f)
                    ), f
                assert attached.content_hash() == original.content_hash()
            finally:
                del attached
                shm.close()

    def test_attached_arrays_are_readonly_views(self, bench):
        original = CSRGO.from_graphs(bench.data[:5])
        with SharedCSRGO(original) as shared:
            attached, shm = attach_csrgo(shared.handle)
            try:
                assert not attached.labels.flags.writeable
                with pytest.raises(ValueError):
                    attached.labels[0] = 99
            finally:
                del attached
                shm.close()

    def test_attach_cache_maps_once(self, bench):
        original = CSRGO.from_graphs(bench.data[:5])
        with SharedCSRGO(original) as shared:
            a = attached_csrgo(shared.handle)
            b = attached_csrgo(shared.handle)
            assert a is b
            detach_all()

    def test_slices_do_not_reference_shared_block(self, bench):
        # Worker results must survive the parent unlinking the block.
        original = CSRGO.from_graphs(bench.data)
        with SharedCSRGO(original) as shared:
            attached, shm = attach_csrgo(shared.handle)
            chunk = attached.slice_graphs(2, 7)
            for f in CSRGO_FIELDS:
                assert not np.shares_memory(
                    getattr(chunk, f), getattr(attached, f)
                ), f
            del attached
            shm.close()
        # Block is unlinked now; the chunk still works.
        assert chunk.n_graphs == 5
        assert SigmoEngine.from_csrgo(
            CSRGO.from_graphs(bench.queries), chunk
        ).run().total_matches >= 0


class TestChunkedCSRGO:
    def test_matches_list_based_chunking(self, bench):
        config = SigmoConfig(record_embeddings=True)
        by_list = run_chunked(bench.queries, bench.data, 7, config=config)
        by_csrgo = run_chunked_csrgo(
            CSRGO.from_graphs(bench.queries),
            CSRGO.from_graphs(bench.data),
            7,
            config=config,
        )
        assert by_csrgo.total_matches == by_list.total_matches
        assert by_csrgo.n_chunks == by_list.n_chunks
        assert sorted(by_csrgo.matched_pairs) == sorted(by_list.matched_pairs)
        embs = lambda r: sorted(
            (e.data_graph, e.query_graph, tuple(e.mapping.tolist()))
            for e in r.embeddings
        )
        assert embs(by_csrgo) == embs(by_list)

    def test_graph_range_slice(self, bench):
        query = CSRGO.from_graphs(bench.queries)
        data = CSRGO.from_graphs(bench.data)
        whole = run_chunked_csrgo(query, data, 7)
        part = run_chunked_csrgo(query, data, 7, start_graph=10, stop_graph=30)
        subset = [
            (d - 10, q) for d, q in whole.matched_pairs if 10 <= d < 30
        ]
        assert sorted(part.matched_pairs) == sorted(subset)

    def test_invalid_range_rejected(self, bench):
        query = CSRGO.from_graphs(bench.queries)
        data = CSRGO.from_graphs(bench.data[:5])
        with pytest.raises(ValueError, match="graph range"):
            run_chunked_csrgo(query, data, 2, start_graph=3, stop_graph=9)


class TestParallelSharedMemory:
    def test_bitwise_equal_to_pickle_transport(self, bench):
        config = SigmoConfig(record_embeddings=True)
        pick = run_parallel(
            bench.queries, bench.data, n_workers=3, chunk_size=9,
            config=config, use_shared_memory=False,
        )
        shm = run_parallel(
            bench.queries, bench.data, n_workers=3, chunk_size=9,
            config=config, use_shared_memory=True,
        )
        assert pick.transport == "pickle"
        assert shm.transport == "shared-memory"
        assert shm.total_matches == pick.total_matches
        assert shm.n_chunks == pick.n_chunks
        assert shm.matched_pairs == pick.matched_pairs
        embs = lambda r: sorted(
            (e.data_graph, e.query_graph, tuple(e.mapping.tolist()))
            for e in r.embeddings
        )
        assert embs(shm) == embs(pick)

    def test_single_worker_in_process_path(self, bench):
        serial = run_parallel(
            bench.queries, bench.data, n_workers=1, chunk_size=9,
            use_shared_memory=False,
        )
        shm = run_parallel(
            bench.queries, bench.data, n_workers=1, chunk_size=9,
            use_shared_memory=True,
        )
        assert shm.transport == "shared-memory"
        assert shm.total_matches == serial.total_matches

    def test_find_first_mode(self, bench):
        pick = run_parallel(
            bench.queries, bench.data, n_workers=2, chunk_size=9,
            mode="find-first", use_shared_memory=False,
        )
        shm = run_parallel(
            bench.queries, bench.data, n_workers=2, chunk_size=9,
            mode="find-first", use_shared_memory=True,
        )
        assert shm.total_matches == pick.total_matches
        assert shm.matched_pairs == pick.matched_pairs
