"""Sorted-CSR local views: correctness and the per-batch cache."""

import numpy as np
import pytest

from repro.accel.local_view import (
    VIEW_CACHE_BATCHES,
    BatchCSRView,
    BatchViewCache,
    LocalCSRView,
    LocalViewCache,
    batch_view_cache,
    get_batch_view,
    get_local_view,
    local_view_cache,
)
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine
from tests.conftest import random_case

pytestmark = pytest.mark.perf_accel


class TestViewCorrectness:
    def test_matches_csrgo_edge_labels(self, rng):
        for _ in range(10):
            _, d, _ = random_case(rng, n_edge_labels=3)
            data = CSRGO.from_graphs([d])
            view = LocalCSRView(data, 0)
            n = data.n_nodes
            for u in range(n):
                for v in range(n):
                    if data.has_edge(u, v):
                        assert view.edge_label(u, v) == data.edge_label(u, v)
                    else:
                        assert view.edge_label(u, v) == -1

    def test_vectorized_lookup_matches_scalar(self, rng):
        _, d, _ = random_case(rng, max_data_nodes=15, n_edge_labels=3)
        data = CSRGO.from_graphs([d])
        view = LocalCSRView(data, 0)
        n = view.width
        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        labels = view.lookup_edge_labels(us.ravel(), vs.ravel())
        for u, v, lbl in zip(us.ravel(), vs.ravel(), labels):
            expected = view.edge_label(int(u), int(v))
            # vectorized uses -2 for absent, scalar -1
            assert lbl == (expected if expected != -1 else -2)

    def test_flat_keys_globally_sorted(self, rng):
        for _ in range(5):
            _, d, _ = random_case(rng)
            view = LocalCSRView(CSRGO.from_graphs([d]), 0)
            assert np.all(np.diff(view.flat_keys) > 0)

    def test_empty_graph_lookup(self):
        from repro.graph.labeled_graph import LabeledGraph

        data = CSRGO.from_graphs([LabeledGraph([1, 2], [])])
        view = LocalCSRView(data, 0)
        assert view.n_edges == 0
        out = view.lookup_edge_labels(np.array([0]), np.array([1]))
        assert out.tolist() == [-2]


class TestViewCache:
    def test_second_access_hits(self, bench):
        data = CSRGO.from_graphs(bench.data)
        cache = local_view_cache()
        v1 = get_local_view(data, 3)
        assert cache.stats.misses == 1
        v2 = get_local_view(data, 3)
        assert v2 is v1
        assert cache.stats.hits == 1

    def test_content_identity_not_object_identity(self, bench):
        # A rebuilt-but-identical batch (chunked/resilient re-runs) hits.
        data1 = CSRGO.from_graphs(bench.data)
        data2 = CSRGO.from_graphs(bench.data)
        assert data1 is not data2
        v1 = get_local_view(data1, 0)
        v2 = get_local_view(data2, 0)
        assert v2 is v1
        assert local_view_cache().n_batches() == 1

    def test_different_batch_misses(self, bench):
        data1 = CSRGO.from_graphs(bench.data[:10])
        data2 = CSRGO.from_graphs(bench.data[10:20])
        get_local_view(data1, 0)
        get_local_view(data2, 0)
        cache = local_view_cache()
        assert cache.stats.misses == 2
        assert cache.n_batches() == 2

    def test_lru_eviction(self, bench):
        cache = LocalViewCache(capacity=2)
        batches = [CSRGO.from_graphs(bench.data[i : i + 3]) for i in range(4)]
        for b in batches:
            cache.get(b, 0)
        assert cache.n_batches() == 2
        assert cache.stats.evictions == 2
        # Oldest entries gone: re-fetching the first batch misses again.
        before = cache.stats.misses
        cache.get(batches[0], 0)
        assert cache.stats.misses == before + 1

    def test_default_capacity(self):
        assert local_view_cache().capacity == VIEW_CACHE_BATCHES


class TestRunJoinHoisting:
    """The satellite: view construction is hoisted out of ``run_join``.

    Pinned to the per-pair tabular backend — under ``auto`` the cost
    model routes pairs to the fused table, which probes the *batch*-level
    view instead of per-graph local views (covered below).
    """

    def test_second_run_builds_no_views(self, bench):
        config = SigmoConfig(join_backend="tabular")
        engine = SigmoEngine(bench.queries, bench.data, config)
        cache = local_view_cache()
        engine.run()
        misses_after_first = cache.stats.misses
        assert misses_after_first > 0
        engine.run()
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits >= misses_after_first

    def test_sweep_shares_views(self, bench):
        config = SigmoConfig(join_backend="tabular")
        engine = SigmoEngine(bench.queries, bench.data, config)
        cache = local_view_cache()
        engine.run_iteration_sweep([2, 4, 6])
        # All three sweep points share one batch's views.
        assert cache.n_batches() == 1

    def test_batch_change_invalidates(self, bench):
        config = SigmoConfig(join_backend="tabular")
        SigmoEngine(bench.queries, bench.data[:20], config).run()
        first_misses = local_view_cache().stats.misses
        SigmoEngine(bench.queries, bench.data[20:40], config).run()
        assert local_view_cache().stats.misses > first_misses


class TestBatchViewCorrectness:
    def test_probe_matches_csrgo_edges(self, rng):
        _, d, _ = random_case(rng, max_data_nodes=12, n_edge_labels=3)
        data = CSRGO.from_graphs([d])
        view = BatchCSRView(data)
        n = data.n_nodes
        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = us.ravel() * np.int64(n) + vs.ravel()
        mask, slot = view.probe(keys)
        for u, v, hit, s in zip(us.ravel(), vs.ravel(), mask, slot):
            if data.has_edge(int(u), int(v)):
                assert hit
                assert view.edge_labels[s] == data.edge_label(int(u), int(v))
            else:
                assert not hit

    def test_flat_keys_globally_sorted_across_graphs(self, bench):
        data = CSRGO.from_graphs(bench.data)
        view = BatchCSRView(data)
        assert np.all(np.diff(view.flat_keys) > 0)
        assert view.n_edges == data.column_indices.size

    def test_empty_batch_probe(self):
        from repro.graph.labeled_graph import LabeledGraph

        data = CSRGO.from_graphs([LabeledGraph([1, 2], [])])
        view = BatchCSRView(data)
        mask, _ = view.probe(np.array([0, 1], dtype=np.int64))
        assert not mask.any()


class TestBatchViewHoisting:
    """Satellite: one batch-view build per (batch contents), ever."""

    def test_fused_runs_build_one_view_per_batch(self, bench):
        engine = SigmoEngine(bench.queries, bench.data)
        cache = batch_view_cache()
        engine.run()  # auto -> fused tables probe the batch view
        assert cache.stats.misses == 1
        engine.run()
        engine.run(mode="find-first")
        assert cache.stats.misses == 1
        assert cache.stats.hits >= 2

    def test_content_identity_not_object_identity(self, bench):
        data1 = CSRGO.from_graphs(bench.data)
        data2 = CSRGO.from_graphs(bench.data)
        assert data1 is not data2
        v1 = get_batch_view(data1)
        v2 = get_batch_view(data2)
        assert v2 is v1
        assert batch_view_cache().stats.misses == 1

    def test_batch_change_builds_again(self, bench):
        SigmoEngine(bench.queries, bench.data[:20]).run()
        assert batch_view_cache().stats.misses == 1
        SigmoEngine(bench.queries, bench.data[20:40]).run()
        assert batch_view_cache().stats.misses == 2

    def test_lru_eviction(self, bench):
        cache = BatchViewCache(capacity=2)
        batches = [CSRGO.from_graphs(bench.data[i : i + 3]) for i in range(4)]
        for b in batches:
            cache.get(b)
        assert cache.stats.evictions == 2
        before = cache.stats.misses
        cache.get(batches[0])
        assert cache.stats.misses == before + 1
