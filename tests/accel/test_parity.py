"""Bitwise equivalence of the DFS and tabular join backends.

Seeded property-style sweep over random workloads: in Find All the two
backends must agree on *everything* — match sets, recorded embeddings
(including order and ``max_embeddings_recorded`` truncation), every
``JoinStats`` counter, and budget truncation at pair boundaries.  In Find
First they must agree on results (first-match semantics), while counters
are backend-specific by design.
"""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import FIND_ALL, FIND_FIRST, JoinBudget
from tests.conftest import random_case

pytestmark = pytest.mark.perf_accel

SEEDS = [0, 1, 2, 3]


def _run(queries, data, backend, mode=FIND_ALL, budget=None, **fields):
    config = SigmoConfig(
        record_embeddings=True, join_backend=backend, **fields
    )
    engine = SigmoEngine(queries, data, config)
    return engine.run(mode=mode, join_budget=budget)


def _embeddings(result):
    return [
        (d, q, tuple(m.tolist())) for d, q, m in result.join_result.embeddings
    ]


def assert_find_all_parity(ra, rb):
    ja, jb = ra.join_result, rb.join_result
    assert ra.total_matches == rb.total_matches
    assert np.array_equal(ja.pair_matches, jb.pair_matches)
    assert np.array_equal(ja.pair_visits, jb.pair_visits)
    assert ja.stats.pairs_joined == jb.stats.pairs_joined
    assert ja.stats.candidate_visits == jb.stats.candidate_visits
    assert ja.stats.edge_checks == jb.stats.edge_checks
    assert ja.stats.stack_pushes == jb.stats.stack_pushes
    assert _embeddings(ra) == _embeddings(rb)


class TestFindAllParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_benchmark_workloads(self, seed):
        ds = build_benchmark(
            scale=1.0, n_queries=16, n_data_graphs=40, seed=seed
        )
        ra = _run(ds.queries, ds.data, "dfs")
        rb = _run(ds.queries, ds.data, "tabular")
        rc = _run(ds.queries, ds.data, "auto")
        rf = _run(ds.queries, ds.data, "fused")
        assert_find_all_parity(ra, rb)
        assert_find_all_parity(ra, rc)
        assert_find_all_parity(ra, rf)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_planted_patterns_found_by_both(self, seed):
        rng = np.random.default_rng(seed)
        queries, data = [], []
        for _ in range(12):
            q, d, _ = random_case(rng, n_edge_labels=3)
            queries.append(q)
            data.append(d)
        ra = _run(queries, data, "dfs")
        rb = _run(queries, data, "tabular")
        assert_find_all_parity(ra, rb)
        # Every planted pattern matches its own data graph.
        pairs = set(ra.matched_pairs())
        assert all((i, i) in pairs for i in range(len(queries)))

    def test_induced_mode_parity(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=5)
        ra = _run(ds.queries, ds.data, "dfs", induced=True)
        rb = _run(ds.queries, ds.data, "tabular", induced=True)
        assert_find_all_parity(ra, rb)

    def test_record_cap_truncation_parity(self):
        # Embedding recording truncates at the same point: frontier rows
        # are emitted in DFS order on both backends.
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=2)
        ra = _run(ds.queries, ds.data, "dfs", max_embeddings_recorded=7)
        rb = _run(ds.queries, ds.data, "tabular", max_embeddings_recorded=7)
        assert len(ra.join_result.embeddings) == 7
        assert _embeddings(ra) == _embeddings(rb)


class TestFindFirstParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_matched_pairs(self, seed):
        ds = build_benchmark(
            scale=1.0, n_queries=16, n_data_graphs=40, seed=seed
        )
        ra = _run(ds.queries, ds.data, "dfs", mode=FIND_FIRST)
        rb = _run(ds.queries, ds.data, "tabular", mode=FIND_FIRST)
        assert ra.total_matches == rb.total_matches
        assert np.array_equal(
            ra.join_result.pair_matches, rb.join_result.pair_matches
        )
        assert ra.matched_pairs() == rb.matched_pairs()

    def test_first_embedding_identical(self):
        # The tabular backend must return the DFS-first embedding, not
        # just any embedding.
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=1)
        ra = _run(ds.queries, ds.data, "dfs", mode=FIND_FIRST)
        rb = _run(ds.queries, ds.data, "tabular", mode=FIND_FIRST)
        rf = _run(ds.queries, ds.data, "fused", mode=FIND_FIRST)
        assert _embeddings(ra) == _embeddings(rb)
        assert _embeddings(ra) == _embeddings(rf)


class TestBudgetTruncationParity:
    """Budgets check at pair boundaries on bitwise-equal counters, so
    truncation points must be identical across backends in Find All."""

    @pytest.mark.parametrize(
        "budget",
        [
            JoinBudget(max_visits=500),
            JoinBudget(max_pushes=200),
            JoinBudget(max_matches=20),
        ],
    )
    def test_truncation_point_identical(self, budget):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=3)
        ra = _run(ds.queries, ds.data, "dfs", budget=budget)
        rb = _run(ds.queries, ds.data, "tabular", budget=budget)
        ja, jb = ra.join_result, rb.join_result
        assert ja.truncated and jb.truncated
        assert ja.resume_pair == jb.resume_pair
        assert ja.truncate_reason == jb.truncate_reason
        assert_find_all_parity(ra, rb)

    def test_resumed_run_completes_identically(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=3)
        full = _run(ds.queries, ds.data, "dfs")
        budget = JoinBudget(max_visits=500)
        for backend in ("dfs", "tabular"):
            config = SigmoConfig(record_embeddings=True, join_backend=backend)
            engine = SigmoEngine(ds.queries, ds.data, config)
            part = engine.run(join_budget=budget)
            assert part.truncated
            rest = engine.run(join_start_pair=part.resume_pair)
            total = part.total_matches + rest.total_matches
            assert total == full.total_matches, backend


def _mix_forcing_model():
    """A cost model that splits the seeded workload between dfs and fused.

    DFS is pure slope, fused pure overhead, so small pairs go scalar and
    large pairs ride the fused table — guaranteeing a genuine mix.
    """
    from repro.accel.dispatch import (
        MODE_FIND_ALL,
        MODE_FIND_FIRST,
        BackendCost,
        PlanCostModel,
    )

    table = {
        "dfs": BackendCost(pair_overhead=0.0, element_cost=1e-6),
        "tabular": BackendCost(pair_overhead=1.0, element_cost=1.0),
        "fused": BackendCost(pair_overhead=50e-6, element_cost=0.0),
    }
    return PlanCostModel(
        coefficients={MODE_FIND_ALL: dict(table), MODE_FIND_FIRST: dict(table)},
        source="test-mix",
    )


class TestMixedDispatch:
    def test_default_auto_routes_pairs_to_fused(self):
        ds = build_benchmark(scale=1.0, n_queries=24, n_data_graphs=60, seed=7)
        rc = _run(ds.queries, ds.data, "auto")
        split = rc.join_result.backend_pairs
        assert split["fused"] > 0
        ra = _run(ds.queries, ds.data, "dfs")
        assert_find_all_parity(ra, rc)

    def test_auto_mixes_backends_without_changing_results(self):
        from repro.accel.dispatch import set_cost_model

        ds = build_benchmark(scale=1.0, n_queries=24, n_data_graphs=60, seed=7)
        set_cost_model(_mix_forcing_model())
        try:
            rc = _run(ds.queries, ds.data, "auto")
        finally:
            set_cost_model(None)
        split = rc.join_result.backend_pairs
        # The forced crossover exercises both backends under auto.
        assert split["dfs"] > 0 and split["fused"] > 0
        ra = _run(ds.queries, ds.data, "dfs")
        assert_find_all_parity(ra, rc)

    def test_backend_accounting_sums(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=0)
        r = _run(ds.queries, ds.data, "auto")
        j = r.join_result
        assert sum(j.backend_pairs.values()) == j.stats.pairs_joined
        assert sum(j.backend_visits.values()) == j.stats.candidate_visits
