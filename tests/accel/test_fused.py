"""The whole-batch fused frontier table: parity, budgets, packing, reuse.

Seeded property-style sweeps assert the fused backend is bitwise-equal to
the scalar DFS reference in Find All (match sets, embeddings and their
order, every ``JoinStats`` counter, budget truncation and resume tokens)
and result-equal in Find First (the first embedding is the DFS-first
one).  Packing order inside the table and wave boundaries are shape-only:
reordering slots must not change a single output bit.
"""

import threading

import numpy as np
import pytest

from repro.accel.dispatch import PlanCostModel, set_cost_model
from repro.accel.local_view import batch_view_cache
from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import FIND_ALL, FIND_FIRST, JoinBudget
from repro.pipeline.session import MatcherSession
from tests.accel.test_parity import (
    _embeddings,
    _mix_forcing_model,
    _run,
    assert_find_all_parity,
)

pytestmark = pytest.mark.perf_accel

SEEDS = [0, 1, 2, 3]


class _AscendingOrderModel(PlanCostModel):
    """Default costs, but the fused table packs cheapest pairs first."""

    def ordering(self, estimates):
        return sorted(range(len(estimates)), key=lambda i: (int(estimates[i]), i))


class TestFusedFindAllParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_equal_to_dfs(self, seed):
        ds = build_benchmark(
            scale=1.0, n_queries=16, n_data_graphs=40, seed=seed
        )
        ra = _run(ds.queries, ds.data, "dfs")
        rf = _run(ds.queries, ds.data, "fused")
        assert_find_all_parity(ra, rf)

    def test_induced_mode_parity(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=5)
        ra = _run(ds.queries, ds.data, "dfs", induced=True)
        rf = _run(ds.queries, ds.data, "fused", induced=True)
        assert_find_all_parity(ra, rf)

    def test_record_cap_truncation_parity(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=2)
        ra = _run(ds.queries, ds.data, "dfs", max_embeddings_recorded=7)
        rf = _run(ds.queries, ds.data, "fused", max_embeddings_recorded=7)
        assert len(rf.join_result.embeddings) == 7
        assert _embeddings(ra) == _embeddings(rf)

    def test_one_table_carries_every_pair(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=0)
        rf = _run(ds.queries, ds.data, "fused")
        jr = rf.join_result
        assert jr.fused_tables == 1
        assert sum(jr.fused_pairs_per_table) == jr.backend_pairs["fused"]
        assert jr.backend_visits["fused"] == jr.stats.candidate_visits


class TestFusedFindFirst:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_first_embedding_is_dfs_first(self, seed):
        ds = build_benchmark(
            scale=1.0, n_queries=16, n_data_graphs=40, seed=seed
        )
        ra = _run(ds.queries, ds.data, "dfs", mode=FIND_FIRST)
        rf = _run(ds.queries, ds.data, "fused", mode=FIND_FIRST)
        assert ra.total_matches == rf.total_matches
        assert np.array_equal(
            ra.join_result.pair_matches, rf.join_result.pair_matches
        )
        assert _embeddings(ra) == _embeddings(rf)

    def test_early_exit_depths_recorded(self):
        # Retirement fires when a pair matches while it still has stacked
        # frontier rows: a label-uniform ring gives a path query frontiers
        # far wider than one block, so the first match retires the rest.
        from repro.graph.generators import path_graph, ring_graph

        queries = [path_graph([1, 1, 1])]
        data = [ring_graph(400, [1] * 400)]
        rf = _run(queries, data, "fused", mode=FIND_FIRST)
        depths = rf.join_result.fused_early_exit_depths
        assert depths
        assert all(d >= 1 for d in depths)

    def test_find_all_records_no_early_exits(self):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=0)
        rf = _run(ds.queries, ds.data, "fused")
        assert rf.join_result.fused_early_exit_depths == []


class TestFusedBudgets:
    @pytest.mark.parametrize(
        "budget",
        [
            JoinBudget(max_visits=500),
            JoinBudget(max_pushes=200),
            JoinBudget(max_matches=20),
        ],
    )
    def test_find_all_truncation_point_identical(self, budget):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=3)
        ra = _run(ds.queries, ds.data, "dfs", budget=budget)
        rf = _run(ds.queries, ds.data, "fused", budget=budget)
        ja, jf = ra.join_result, rf.join_result
        assert ja.truncated and jf.truncated
        assert ja.resume_pair == jf.resume_pair
        assert ja.truncate_reason == jf.truncate_reason
        assert_find_all_parity(ra, rf)

    @pytest.mark.parametrize("backend", ["fused", "auto"])
    def test_cross_engine_resume_completes(self, backend):
        # A token minted by a fused run resumes on any backend (and vice
        # versa) because truncation happens at GMCR pair boundaries.
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=3)
        full = _run(ds.queries, ds.data, "dfs")
        config = SigmoConfig(record_embeddings=True, join_backend=backend)
        engine = SigmoEngine(ds.queries, ds.data, config)
        part = engine.run(join_budget=JoinBudget(max_visits=500))
        assert part.truncated
        rest_engine = SigmoEngine(
            ds.queries, ds.data, SigmoConfig(record_embeddings=True, join_backend="dfs")
        )
        rest = rest_engine.run(join_start_pair=part.resume_pair)
        assert part.total_matches + rest.total_matches == full.total_matches

    @pytest.mark.parametrize("mode", [FIND_ALL, FIND_FIRST])
    def test_same_backend_resume_is_lossless(self, mode):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=1)
        config = SigmoConfig(join_backend="fused")
        full = SigmoEngine(ds.queries, ds.data, config).run(mode=mode)
        engine = SigmoEngine(ds.queries, ds.data, config)
        part = engine.run(mode=mode, join_budget=JoinBudget(max_visits=400))
        assert part.truncated
        rest = engine.run(mode=mode, join_start_pair=part.resume_pair)
        assert part.total_matches + rest.total_matches == full.total_matches
        assert sorted(part.matched_pairs() + rest.matched_pairs()) == sorted(
            full.matched_pairs()
        )

    def test_budget_splits_waves(self):
        # With a budget the fused queue runs in lazily sized waves sized
        # by the remaining headroom, never the whole batch in one table.
        # Waves are speculative: a wave may execute a few more pairs than
        # the replay commits before truncating.
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=3)
        full = _run(ds.queries, ds.data, "fused")
        rf = _run(ds.queries, ds.data, "fused", budget=JoinBudget(max_visits=500))
        jr = rf.join_result
        assert jr.fused_tables >= 1
        executed = sum(jr.fused_pairs_per_table)
        assert executed >= jr.backend_pairs["fused"]
        assert executed < full.join_result.backend_pairs["fused"]


class TestPackingInvariance:
    @pytest.mark.parametrize("mode", [FIND_ALL, FIND_FIRST])
    def test_table_order_never_changes_results(self, mode):
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=2)
        baseline = _run(ds.queries, ds.data, "fused", mode=mode)
        set_cost_model(_AscendingOrderModel())
        try:
            reordered = _run(ds.queries, ds.data, "fused", mode=mode)
        finally:
            set_cost_model(None)
        assert _embeddings(baseline) == _embeddings(reordered)
        if mode == FIND_ALL:
            assert_find_all_parity(baseline, reordered)

    def test_mixed_dispatch_keeps_gmcr_emission_order(self):
        # Under a mix-forcing model the replay pass interleaves fused and
        # DFS pairs back into GMCR order, so embeddings come out exactly
        # as the all-DFS reference emits them.
        ds = build_benchmark(scale=1.0, n_queries=16, n_data_graphs=40, seed=4)
        ra = _run(ds.queries, ds.data, "dfs")
        set_cost_model(_mix_forcing_model())
        try:
            rc = _run(ds.queries, ds.data, "auto")
        finally:
            set_cost_model(None)
        assert rc.join_result.backend_pairs["dfs"] > 0
        assert rc.join_result.backend_pairs["fused"] > 0
        assert_find_all_parity(ra, rc)


class TestSessionReuse:
    def test_warm_session_reuses_batch_view(self, bench):
        session = MatcherSession(bench.queries)
        cache = batch_view_cache()
        r1 = session.match(bench.data)
        assert cache.stats.misses == 1
        r2 = session.match(bench.data)
        assert cache.stats.misses == 1  # warm path: no rebuild
        assert r1.total_matches == r2.total_matches

    def test_session_pins_cost_model(self, bench):
        # A session-pinned model keeps its dispatch policy even if the
        # process-wide model changes mid-flight.
        dfs_only = _mix_forcing_model().with_source("pin-test")
        coeffs = {
            mode: dict(table) for mode, table in dfs_only.coefficients.items()
        }
        from repro.accel.dispatch import BackendCost

        for mode in coeffs:
            coeffs[mode]["dfs"] = BackendCost(0.0, 0.0)
            coeffs[mode]["fused"] = BackendCost(1.0, 1.0)
        pinned = PlanCostModel(coefficients=coeffs, source="dfs-only")
        session = MatcherSession(bench.queries, cost_model=pinned)
        result = session.match(bench.data)
        assert result.join_result.backend_pairs["fused"] == 0
        assert result.join_result.backend_pairs["dfs"] > 0

    def test_concurrent_matches_equal_sequential(self, bench):
        config = SigmoConfig(record_embeddings=True)
        expected = _run(bench.queries, bench.data, "fused")
        session = MatcherSession(bench.queries, config=config)
        results = [None] * 4
        errors = []

        def work(i):
            try:
                results[i] = session.match(bench.data)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for r in results:
            assert r is not None
            assert r.total_matches == expected.total_matches
            assert _embeddings(r) == _embeddings(expected)
