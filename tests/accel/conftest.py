"""Fixtures for the accelerator-layer suite.

Every test here starts from empty accel caches: the view cache and memo
tables are process-wide, and hit/miss assertions would otherwise depend on
which tests ran earlier in the session.
"""

import pytest

from repro.accel import clear_accel_caches
from repro.chem.datasets import build_benchmark


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_accel_caches()
    yield
    clear_accel_caches()


@pytest.fixture(scope="module")
def bench():
    """A seeded benchmark with enough join work to exercise both backends."""
    return build_benchmark(scale=1.0, n_queries=24, n_data_graphs=60, seed=7)
