"""Observability of the join backends: kernel spans and profile counters."""

import pytest

from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.obs.profile import build_profile, format_profile
from repro.obs.trace import tracing

pytestmark = [pytest.mark.perf_accel, pytest.mark.obs]


def _engine(bench, backend):
    return SigmoEngine(
        bench.queries, bench.data, SigmoConfig(join_backend=backend)
    )


class TestKernelSpans:
    def test_forced_dfs_emits_only_dfs_spans(self, bench):
        with tracing() as t:
            _engine(bench, "dfs").run()
        assert len(t.find("kernel:join-dfs")) > 0
        assert t.find("kernel:accel:join-tabular") == []

    def test_forced_tabular_emits_only_tabular_spans(self, bench):
        with tracing() as t:
            _engine(bench, "tabular").run()
        assert len(t.find("kernel:accel:join-tabular")) > 0
        assert t.find("kernel:join-dfs") == []

    def test_auto_tags_each_pair_with_its_backend(self, bench):
        with tracing() as t:
            result = _engine(bench, "auto").run()
        split = result.join_result.backend_pairs
        assert len(t.find("kernel:join-dfs")) == split["dfs"]
        assert len(t.find("kernel:accel:join-tabular")) == split["tabular"]

    def test_stage_span_carries_backend_split(self, bench):
        with tracing() as t:
            result = _engine(bench, "auto").run()
        (stage,) = t.find("stage:join")
        split = result.join_result.backend_pairs
        assert stage.attrs["backend_pairs_dfs"] == split["dfs"]
        assert stage.attrs["backend_pairs_tabular"] == split["tabular"]


class TestProfileCounters:
    def test_backend_counters_in_profile(self, bench):
        engine = _engine(bench, "auto")
        result = engine.run()
        profile = build_profile(result, engine.query, engine.data)
        counters = profile.metrics.counters
        split = result.join_result.backend_pairs
        assert counters["join.backend_pairs.dfs"] == split["dfs"]
        assert counters["join.backend_pairs.tabular"] == split["tabular"]
        visits = result.join_result.backend_visits
        assert counters["join.backend_visits.dfs"] == visits["dfs"]
        assert counters["join.backend_visits.tabular"] == visits["tabular"]
        total = counters["join.candidate_visits"]
        assert (
            counters["join.backend_visits.dfs"]
            + counters["join.backend_visits.tabular"]
            == total
        )

    def test_report_shows_backend_split(self, bench):
        engine = _engine(bench, "auto")
        result = engine.run()
        profile = build_profile(result, engine.query, engine.data)
        report = format_profile(profile)
        assert "join backend split:" in report
        assert "dfs:" in report and "tabular:" in report
