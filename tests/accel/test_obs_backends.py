"""Observability of the join backends: kernel spans and profile counters."""

import pytest

from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.obs.profile import build_profile, format_profile
from repro.obs.trace import tracing

pytestmark = [pytest.mark.perf_accel, pytest.mark.obs]

BACKENDS = ("dfs", "tabular", "fused")


def _engine(bench, backend):
    return SigmoEngine(
        bench.queries, bench.data, SigmoConfig(join_backend=backend)
    )


class TestKernelSpans:
    def test_forced_dfs_emits_only_dfs_spans(self, bench):
        with tracing() as t:
            _engine(bench, "dfs").run()
        assert len(t.find("kernel:join-dfs")) > 0
        assert t.find("kernel:accel:join-tabular") == []
        assert t.find("kernel:accel:join-fused") == []

    def test_forced_tabular_emits_only_tabular_spans(self, bench):
        with tracing() as t:
            _engine(bench, "tabular").run()
        assert len(t.find("kernel:accel:join-tabular")) > 0
        assert t.find("kernel:join-dfs") == []
        assert t.find("kernel:accel:join-fused") == []

    def test_forced_fused_emits_only_fused_spans(self, bench):
        with tracing() as t:
            result = _engine(bench, "fused").run()
        fused = t.find("kernel:accel:join-fused")
        assert len(fused) > 0
        assert t.find("kernel:join-dfs") == []
        assert t.find("kernel:accel:join-tabular") == []
        # Every fused-dispatched pair rides exactly one table.
        pairs = sum(sp.attrs["pairs"] for sp in fused)
        assert pairs == result.join_result.backend_pairs["fused"]

    def test_auto_tags_each_pair_with_its_backend(self, bench):
        with tracing() as t:
            result = _engine(bench, "auto").run()
        split = result.join_result.backend_pairs
        assert len(t.find("kernel:join-dfs")) == split["dfs"]
        assert len(t.find("kernel:accel:join-tabular")) == split["tabular"]
        fused_pairs = sum(
            sp.attrs["pairs"] for sp in t.find("kernel:accel:join-fused")
        )
        assert fused_pairs == split["fused"]
        assert sum(split.values()) == result.join_result.stats.pairs_joined

    def test_stage_span_carries_backend_split(self, bench):
        with tracing() as t:
            result = _engine(bench, "auto").run()
        (stage,) = t.find("stage:join")
        split = result.join_result.backend_pairs
        assert stage.attrs["backend_pairs_dfs"] == split["dfs"]
        assert stage.attrs["backend_pairs_tabular"] == split["tabular"]
        assert stage.attrs["backend_pairs_fused"] == split["fused"]


class TestProfileCounters:
    def test_backend_counters_in_profile(self, bench):
        engine = _engine(bench, "auto")
        result = engine.run()
        profile = build_profile(result, engine.query, engine.data)
        counters = profile.metrics.counters
        split = result.join_result.backend_pairs
        visits = result.join_result.backend_visits
        for backend in BACKENDS:
            assert counters[f"join.backend_pairs.{backend}"] == split[backend]
            assert counters[f"join.backend_visits.{backend}"] == visits[backend]
        total = counters["join.candidate_visits"]
        assert (
            sum(counters[f"join.backend_visits.{b}"] for b in BACKENDS) == total
        )

    def test_fused_table_metrics_in_profile(self, bench):
        engine = _engine(bench, "fused")
        result = engine.run()
        profile = build_profile(result, engine.query, engine.data)
        jr = result.join_result
        assert profile.metrics.counters["join.fused.tables"] == jr.fused_tables
        hist = profile.metrics.histograms["join.fused.pairs_per_table"]
        assert hist.count == jr.fused_tables
        assert hist.sum == sum(jr.fused_pairs_per_table)

    def test_fused_early_exit_histogram(self):
        # A label-uniform ring makes the path query's frontier span
        # several blocks, so Find First retirement fires mid-table.
        from repro.graph.generators import path_graph, ring_graph

        engine = SigmoEngine(
            [path_graph([1, 1, 1])],
            [ring_graph(400, [1] * 400)],
            SigmoConfig(join_backend="fused"),
        )
        result = engine.run(mode="find-first")
        profile = build_profile(result, engine.query, engine.data)
        jr = result.join_result
        assert jr.fused_early_exit_depths
        hist = profile.metrics.histograms["join.fused.early_exit_depth"]
        assert hist.count == len(jr.fused_early_exit_depths)
        assert hist.sum == sum(jr.fused_early_exit_depths)

    def test_report_shows_backend_split(self, bench):
        engine = _engine(bench, "auto")
        result = engine.run()
        profile = build_profile(result, engine.query, engine.data)
        report = format_profile(profile)
        assert "join backend split:" in report
        assert "fused:" in report
        assert "fused join:" in report and "pairs/table" in report
