"""Unit tests for the GSI-like matcher."""

import numpy as np
import pytest

from repro.baselines.gsi_like import GsiLikeMatcher, GsiOutOfMemory
from repro.graph.generators import path_graph, random_connected_graph, ring_graph


class TestFilter:
    def test_one_shot_signature_filter(self):
        q = path_graph([1, 2])
        d = path_graph([1, 3, 2, 1])
        cands = GsiLikeMatcher(q, d).filter_candidates()
        # data node 0 (label 1, neighbor label 3) cannot host query node 0;
        # data node 3 (label 1, neighbor label 2) can.
        assert 0 not in cands[0]
        assert 3 in cands[0]

    def test_filter_is_single_level(self):
        # GSI prunes with radius-1 info only: a mismatch visible only at
        # radius 2 is NOT caught by the filter (SIGMo would catch it).
        q = path_graph([1, 1, 2])
        d = path_graph([1, 1, 3])
        cands = GsiLikeMatcher(q, d).filter_candidates()
        assert 0 in cands[0]  # survives the shallow filter...
        assert GsiLikeMatcher(q, d).count_all() == 0  # ...but the join rejects


class TestCounts:
    def test_agrees_with_reference(self, rng):
        from repro.baselines.networkx_ref import networkx_count_matches
        from repro.graph.generators import random_subgraph_pattern

        for _ in range(10):
            d = random_connected_graph(int(rng.integers(4, 14)), 3, 3, rng, 2)
            q, _ = random_subgraph_pattern(d, int(rng.integers(2, 5)), rng)
            assert GsiLikeMatcher(q, d).count_all() == networkx_count_matches(q, d)

    def test_enumerate_table_columns_query_indexed(self):
        q = path_graph([1, 2])
        d = path_graph([1, 2])
        table = GsiLikeMatcher(q, d).enumerate_all()
        assert table.shape == (1, 2)
        assert d.labels[table[0, 0]] == 1

    def test_no_match_empty_table(self):
        q = ring_graph(3, [0, 0, 0])
        d = path_graph([0, 0, 0])
        assert GsiLikeMatcher(q, d).enumerate_all().shape == (0, 3)


class TestMemoryBehaviour:
    def test_oom_on_explosive_queries(self):
        # unlabeled-ish dense case with a tiny budget -> table blow-up
        d = ring_graph(12, [0] * 12)
        q = path_graph([0] * 6)
        matcher = GsiLikeMatcher(q, d, memory_limit_bytes=2_000)
        with pytest.raises(GsiOutOfMemory):
            matcher.count_all()

    def test_peak_tracking(self):
        q = path_graph([0, 0])
        d = ring_graph(6, [0] * 6)
        m = GsiLikeMatcher(q, d)
        m.count_all()
        assert m.peak_table_bytes > 0
