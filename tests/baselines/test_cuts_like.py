"""Unit tests for the cuTS-like label-blind matcher."""

import numpy as np
import pytest

from repro.baselines.cuts_like import CutsLikeMatcher, compile_query_trie
from repro.graph.generators import path_graph, ring_graph, star_graph


class TestTrie:
    def test_levels_cover_query(self):
        q = ring_graph(4, [0, 1, 2, 3])
        trie, order = compile_query_trie(q)
        assert len(trie) == 4
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_root_has_no_parent(self):
        q = path_graph([0, 1, 2])
        trie, _ = compile_query_trie(q)
        assert trie[0].parent_depth == -1
        assert all(lvl.parent_depth >= 0 for lvl in trie[1:])

    def test_back_edges_close_cycles(self):
        q = ring_graph(3, [0, 1, 2])
        trie, _ = compile_query_trie(q)
        assert sum(len(lvl.back_edges) for lvl in trie) == 1

    def test_empty_query(self):
        from repro.graph.labeled_graph import LabeledGraph

        trie, order = compile_query_trie(LabeledGraph([]))
        assert trie == () and order.size == 0


class TestLabelBlindness:
    def test_ignores_node_labels(self):
        q = path_graph([7, 8])
        d = path_graph([0, 1, 2])
        # labels don't exist for cuTS: a 2-path occurs twice in a 3-path
        # (two directions x two positions = 4 ordered embeddings)
        assert CutsLikeMatcher(q, d).count_all() == 4

    def test_ignores_edge_labels(self):
        q = path_graph([0, 0], [9])
        d = path_graph([0, 0], [1])
        assert CutsLikeMatcher(q, d).count_all() == 2

    def test_more_matches_than_labeled(self, rng):
        from repro.baselines.vf2 import VF3Matcher
        from repro.graph.generators import random_connected_graph, random_subgraph_pattern

        for _ in range(8):
            d = random_connected_graph(10, 3, 3, rng)
            q, _ = random_subgraph_pattern(d, 3, rng)
            assert CutsLikeMatcher(q, d).count_all() >= VF3Matcher(q, d).count_all()


class TestStructuralCounts:
    def test_triangle_in_k4(self):
        k4_edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        from repro.graph.labeled_graph import LabeledGraph

        k4 = LabeledGraph([0] * 4, k4_edges)
        tri = ring_graph(3, [0, 0, 0])
        # 4 triangles x 6 automorphisms
        assert CutsLikeMatcher(tri, k4).count_all() == 24

    def test_has_match(self):
        assert CutsLikeMatcher(path_graph([0, 0]), path_graph([1, 2])).has_match()
        assert not CutsLikeMatcher(ring_graph(3, [0] * 3), path_graph([0, 0, 0])).has_match()

    def test_query_bigger_than_data(self):
        assert CutsLikeMatcher(path_graph([0] * 3), path_graph([0, 0])).count_all() == 0
