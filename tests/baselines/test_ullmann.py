"""Unit tests for the Ullmann matcher."""

import numpy as np
import pytest

from repro.baselines.ullmann import UllmannMatcher
from repro.graph.generators import path_graph, ring_graph


class TestInitialMatrix:
    def test_label_and_degree(self):
        q = path_graph([0, 1])
        d = path_graph([0, 1, 0])
        m = UllmannMatcher(q, d).initial_matrix()
        assert m.shape == (2, 3)
        assert m[0, 0] and m[0, 2] and m[1, 1]
        assert not m[0, 1]


class TestRefinement:
    def test_refine_prunes_unsupported(self):
        # query 0-1 with labels (0,1); data node 2 (label 0) has no label-1
        # neighbor and must be pruned.
        q = path_graph([0, 1])
        d = path_graph([0, 1, 5, 0])
        matcher = UllmannMatcher(q, d)
        m = matcher.initial_matrix()
        assert m[0, 3]
        assert matcher.refine(m)
        assert not m[0, 3]

    def test_refine_detects_dead_end(self):
        q = ring_graph(3, [0, 0, 0])
        d = path_graph([0, 0, 0])  # no triangle
        matcher = UllmannMatcher(q, d)
        m = matcher.initial_matrix()
        # refinement alone may not kill it, but search must find nothing
        assert matcher.count_all() == 0


class TestCounts:
    def test_matches_simple(self):
        assert UllmannMatcher(path_graph([0, 1]), path_graph([1, 0, 1])).count_all() == 2

    def test_edge_labels(self):
        q = path_graph([0, 0], [3])
        d_ok = path_graph([0, 0], [3])
        d_no = path_graph([0, 0], [1])
        assert UllmannMatcher(q, d_ok).count_all() == 2
        assert UllmannMatcher(q, d_no).count_all() == 0

    def test_has_match(self):
        assert UllmannMatcher(path_graph([0]), path_graph([0, 1])).has_match()
        assert not UllmannMatcher(path_graph([7]), path_graph([0])).has_match()

    def test_query_bigger_than_data(self):
        assert UllmannMatcher(path_graph([0, 0]), path_graph([0])).count_all() == 0
