"""Unit tests for the VF3-style matcher."""

import numpy as np
import pytest

from repro.baselines.vf2 import VF3Matcher, vf3_batch
from repro.graph.generators import path_graph, ring_graph, star_graph


class TestBasicCounts:
    def test_path_in_path(self):
        assert VF3Matcher(path_graph([0, 1]), path_graph([1, 0, 1])).count_all() == 2

    def test_triangle_automorphisms(self):
        t = ring_graph(3, [0, 0, 0])
        assert VF3Matcher(t, t).count_all() == 6

    def test_label_mismatch(self):
        assert VF3Matcher(path_graph([5, 5]), path_graph([0, 0])).count_all() == 0

    def test_edge_label_checked(self):
        q = path_graph([0, 0], [1])
        d = path_graph([0, 0], [2])
        assert VF3Matcher(q, d).count_all() == 0

    def test_query_larger_than_data(self):
        assert VF3Matcher(path_graph([0, 0, 0]), path_graph([0, 0])).count_all() == 0

    def test_empty_query(self):
        from repro.graph.labeled_graph import LabeledGraph

        assert VF3Matcher(LabeledGraph([]), path_graph([0])).count_all() == 0


class TestFindFirst:
    def test_returns_valid_mapping(self):
        q = path_graph([1, 2, 1])
        d = ring_graph(6, [1, 2, 1, 1, 2, 1])
        mapping = VF3Matcher(q, d).find_first()
        assert mapping is not None
        for u in range(q.n_nodes):
            assert d.labels[mapping[u]] == q.labels[u]
        for (u, v), lab in zip(q.edges, q.edge_labels):
            assert d.has_edge(int(mapping[u]), int(mapping[v]))

    def test_none_when_absent(self):
        assert VF3Matcher(path_graph([9, 9]), path_graph([0, 0])).find_first() is None


class TestEnumerate:
    def test_enumerate_matches_count(self):
        q = path_graph([0, 0])
        d = ring_graph(4, [0, 0, 0, 0])
        embeddings = VF3Matcher(q, d).enumerate_all()
        assert len(embeddings) == VF3Matcher(q, d).count_all() == 8
        # all distinct
        assert len({tuple(e) for e in embeddings}) == 8


class TestOrdering:
    def test_order_is_connected_permutation(self):
        q = star_graph(0, [1, 2, 3])
        matcher = VF3Matcher(q, ring_graph(5, [0, 1, 2, 3, 0]))
        assert sorted(matcher._order.tolist()) == [0, 1, 2, 3]

    def test_rare_label_first(self):
        # data has many label-0, one label-1: ordering should start at the
        # query node with the rare label
        q = path_graph([0, 1])
        d = path_graph([0, 0, 0, 1, 0])
        matcher = VF3Matcher(q, d)
        assert q.labels[matcher._order[0]] == 1


class TestBatch:
    def test_batch_totals(self):
        qs = [path_graph([1, 2])]
        ds = [path_graph([1, 2]), path_graph([2, 1]), path_graph([0, 0])]
        assert vf3_batch(qs, ds) == 2
        assert vf3_batch(qs, ds, find_first=True) == 2
