"""Cross-validation: every matcher agrees with the NetworkX oracle.

This is the correctness backbone of the comparison experiment (Fig. 10):
if all matchers return identical counts, speed differences are attributable
to algorithms, not semantics.
"""

import numpy as np
import pytest

from repro.baselines import (
    CutsLikeMatcher,
    GsiLikeMatcher,
    UllmannMatcher,
    VF3Matcher,
)
from repro.baselines.networkx_ref import networkx_count_matches, networkx_has_match
from repro.core.engine import find_all
from tests.conftest import random_case


N_TRIALS = 25


class TestAllMatchersAgree:
    def test_counts_agree_on_random_planted_cases(self, rng):
        for _ in range(N_TRIALS):
            q, d, _ = random_case(rng)
            ref = networkx_count_matches(q, d)
            assert ref >= 1  # planted pattern must occur
            assert VF3Matcher(q, d).count_all() == ref
            assert UllmannMatcher(q, d).count_all() == ref
            assert GsiLikeMatcher(q, d).count_all() == ref
            assert find_all([q], [d]).total_matches == ref

    def test_cuts_agrees_with_unlabeled_oracle(self, rng):
        for _ in range(10):
            q, d, _ = random_case(rng)
            ref = networkx_count_matches(
                q, d, use_edge_labels=False, use_node_labels=False
            )
            assert CutsLikeMatcher(q, d).count_all() == ref

    def test_negative_cases_agree(self, rng):
        from repro.graph.generators import random_connected_graph

        for _ in range(10):
            d = random_connected_graph(8, 2, 2, rng)
            q = random_connected_graph(4, 1, 2, rng)
            ref = networkx_count_matches(q, d)
            assert VF3Matcher(q, d).count_all() == ref
            assert UllmannMatcher(q, d).count_all() == ref
            assert find_all([q], [d]).total_matches == ref

    def test_has_match_consistency(self, rng):
        for _ in range(10):
            q, d, _ = random_case(rng)
            assert networkx_has_match(q, d)
            assert VF3Matcher(q, d).find_first() is not None
            assert UllmannMatcher(q, d).has_match()
