"""Unit tests for the RI-style matcher."""

import numpy as np
import pytest

from repro.baselines.ri import RIMatcher
from repro.graph.generators import path_graph, ring_graph, star_graph


class TestOrdering:
    def test_order_permutation(self):
        q = ring_graph(5, [0, 1, 2, 3, 4])
        m = RIMatcher(q, ring_graph(5, [0, 1, 2, 3, 4]))
        assert sorted(m._order.tolist()) == list(range(5))

    def test_starts_at_max_degree(self):
        q = star_graph(0, [1, 2, 3])
        m = RIMatcher(q, q)
        assert m._order[0] == 0

    def test_back_connectivity(self):
        q = path_graph([0, 1, 2, 3])
        m = RIMatcher(q, q)
        # every node after the first must check at least one back edge
        assert all(len(c) >= 1 for c in m._checks[1:])


class TestDegreeSequenceFilter:
    def test_filters_insufficient_neighbors(self):
        # query center needs neighbors of degree >= (1,1,1); data node 0 of
        # a path has only one neighbor -> pruned by the DS filter
        q = star_graph(0, [0, 0, 0])
        d = path_graph([0, 0, 0])
        m = RIMatcher(q, d)
        cands = m._initial_candidates()
        assert cands[0].size == 0

    def test_toggleable(self):
        q = star_graph(0, [0, 0])
        d = path_graph([0, 0, 0])
        with_ds = RIMatcher(q, d)._initial_candidates()[0]
        without = RIMatcher(q, d, degree_sequence_filter=False)._initial_candidates()[0]
        assert with_ds.size <= without.size


class TestCounts:
    def test_simple(self):
        assert RIMatcher(path_graph([0, 1]), path_graph([1, 0, 1])).count_all() == 2

    def test_edge_labels(self):
        q = path_graph([0, 0], [2])
        assert RIMatcher(q, path_graph([0, 0], [2])).count_all() == 2
        assert RIMatcher(q, path_graph([0, 0], [1])).count_all() == 0

    def test_has_match(self):
        assert RIMatcher(path_graph([0]), path_graph([0])).has_match()
        assert not RIMatcher(ring_graph(3, [0] * 3), path_graph([0, 0, 0])).has_match()

    def test_agrees_with_oracle(self, rng):
        from repro.baselines.networkx_ref import networkx_count_matches
        from tests.conftest import random_case

        for _ in range(15):
            q, d, _ = random_case(rng)
            assert RIMatcher(q, d).count_all() == networkx_count_matches(q, d)
