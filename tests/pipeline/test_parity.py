"""Cross-driver parity: one seeded workload, seven entry points, one answer.

The multi-layer refactor's acceptance criterion: every legacy driver —
``SigmoEngine.run``, ``run_chunked``, ``run_chunked_csrgo``,
``run_resilient``, ``run_parallel``, ``run_parallel_resilient`` — is now a
thin adapter over the one :class:`~repro.pipeline.PipelineExecutor`, and
all of them (plus the executor invoked directly) must produce identical
match sets, embeddings, summed :class:`~repro.core.join.JoinStats`, and —
for drivers sharing a partition — identical ``stage_counts``.
"""

import pytest

from repro.chem.datasets import build_benchmark
from repro.cluster.parallel import run_parallel
from repro.core.chunked import run_chunked, run_chunked_csrgo
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine
from repro.core.join import JoinStats
from repro.pipeline import PipelineRequest, default_executor
from repro.runtime.parallel import run_parallel_resilient
from repro.runtime.resilient import run_resilient

pytestmark = pytest.mark.pipeline

N_QUERIES = 6
N_DATA = 30
SEED = 7
ITERATIONS = 3
CHUNK = 10


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=N_DATA, seed=SEED
    )


@pytest.fixture(scope="module")
def config():
    return SigmoConfig(refinement_iterations=ITERATIONS, record_embeddings=True)


@pytest.fixture(scope="module")
def reference(dataset, config):
    """The whole-batch engine run every driver must reproduce."""
    engine = SigmoEngine(dataset.queries, dataset.data, config)
    return engine.run(mode="find-all")


def embedding_set(records):
    return {(r.data_graph, r.query_graph, tuple(int(v) for v in r.mapping)) for r in records}


def stats_tuple(stats: JoinStats):
    return (
        stats.pairs_joined,
        stats.stack_pushes,
        stats.candidate_visits,
        stats.edge_checks,
    )


class TestDriverParity:
    """Each legacy entry point against the whole-batch reference."""

    def check(self, result, reference):
        assert result.total_matches == reference.total_matches
        assert sorted(result.matched_pairs) == sorted(reference.matched_pairs())
        assert embedding_set(result.embeddings) == embedding_set(
            reference.embeddings
        )
        # Join work is per-(data, query) pair, so any partition of the
        # data batch must sum to exactly the whole-batch counters.
        assert stats_tuple(result.join_stats) == stats_tuple(
            reference.join_result.stats
        )

    def test_run_chunked(self, dataset, config, reference):
        result = run_chunked(dataset.queries, dataset.data, CHUNK, config=config)
        assert result.n_chunks == 3
        self.check(result, reference)

    def test_run_chunked_csrgo(self, dataset, config, reference):
        query = CSRGO.from_graphs(dataset.queries)
        data = CSRGO.from_graphs(dataset.data)
        result = run_chunked_csrgo(query, data, CHUNK, config=config)
        self.check(result, reference)

    def test_run_resilient(self, dataset, config, reference):
        result = run_resilient(
            dataset.queries, dataset.data, chunk_size=CHUNK, config=config
        )
        assert result.status == "complete"
        self.check(result, reference)

    def test_run_parallel(self, dataset, config, reference):
        result = run_parallel(
            dataset.queries,
            dataset.data,
            n_workers=2,
            chunk_size=CHUNK,
            config=config,
        )
        self.check(result, reference)

    def test_run_parallel_resilient(self, dataset, config, reference):
        result = run_parallel_resilient(
            dataset.queries,
            dataset.data,
            n_workers=2,
            chunk_size=CHUNK,
            config=config,
        )
        assert result.status == "complete"
        self.check(result, reference)

    def test_executor_direct(self, dataset, config, reference):
        request = PipelineRequest(
            query=dataset.queries, data=dataset.data, config=config
        )
        result = default_executor().execute(request)
        assert result.total_matches == reference.total_matches
        assert result.matched_pairs() == reference.matched_pairs()
        assert embedding_set(result.embeddings) == embedding_set(
            reference.embeddings
        )
        assert stats_tuple(result.join_result.stats) == stats_tuple(
            reference.join_result.stats
        )
        assert result.stage_counts == reference.stage_counts


class TestSharedPartition:
    """Drivers cutting the data identically must agree on everything."""

    def test_chunked_vs_resilient(self, dataset, config):
        chunked = run_chunked(dataset.queries, dataset.data, CHUNK, config=config)
        resilient = run_resilient(
            dataset.queries, dataset.data, chunk_size=CHUNK, config=config
        )
        assert resilient.matched_pairs == chunked.matched_pairs
        assert resilient.embeddings == chunked.embeddings
        assert resilient.stage_counts == chunked.stage_counts
        assert stats_tuple(resilient.join_stats) == stats_tuple(
            chunked.join_stats
        )

    def test_single_worker_pool_vs_chunked(self, dataset, config):
        chunked = run_chunked(dataset.queries, dataset.data, CHUNK, config=config)
        pooled = run_parallel(
            dataset.queries,
            dataset.data,
            n_workers=1,
            chunk_size=CHUNK,
            config=config,
        )
        assert pooled.matched_pairs == sorted(chunked.matched_pairs)
        assert pooled.stage_counts == chunked.stage_counts
        assert stats_tuple(pooled.join_stats) == stats_tuple(chunked.join_stats)

    def test_pool_vs_resilient_pool(self, dataset, config):
        plain = run_parallel(
            dataset.queries,
            dataset.data,
            n_workers=2,
            chunk_size=CHUNK,
            config=config,
        )
        resilient = run_parallel_resilient(
            dataset.queries,
            dataset.data,
            n_workers=2,
            chunk_size=CHUNK,
            config=config,
        )
        assert resilient.matched_pairs == plain.matched_pairs
        assert resilient.stage_counts == plain.stage_counts
        assert stats_tuple(resilient.join_stats) == stats_tuple(plain.join_stats)


class TestFindFirstParity:
    def test_modes_agree_across_drivers(self, dataset, config, reference):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        first = engine.run(mode="find-first")
        chunked = run_chunked(
            dataset.queries, dataset.data, CHUNK, mode="find-first", config=config
        )
        assert chunked.total_matches == first.total_matches
        assert sorted(chunked.matched_pairs) == sorted(first.matched_pairs())
        # Find First visits a prefix of Find All's work per pair.
        assert first.total_matches <= reference.total_matches
