"""Truncated-run resume reuses the engine's cached stage artifacts.

The historical bug this pins down: resuming a budget-truncated Find All
via ``join_start_pair`` on the same engine re-ran conversion, filtering,
and GMCR construction from scratch.  The pipeline executor now recalls
the ``FilterResult``/``GMCR`` artifacts on resume — results stay bitwise
equal to the uninterrupted run while the refine kernels never re-trace.
"""

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import JoinBudget
from repro.obs.trace import tracing

pytestmark = pytest.mark.pipeline

N_QUERIES = 6
N_DATA = 30
SEED = 7
ITERATIONS = 3


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=N_DATA, seed=SEED
    )


@pytest.fixture(scope="module")
def config():
    return SigmoConfig(refinement_iterations=ITERATIONS, record_embeddings=True)


@pytest.fixture(scope="module")
def full(dataset, config):
    return SigmoEngine(dataset.queries, dataset.data, config).run()


class TestResume:
    def test_resume_is_bitwise_equal_to_the_uninterrupted_run(
        self, dataset, config, full
    ):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        part = engine.run(join_budget=JoinBudget(max_matches=2))
        assert part.truncated and part.resume_pair is not None
        rest = engine.run(join_start_pair=part.resume_pair)
        assert part.total_matches + rest.total_matches == full.total_matches
        assert part.embeddings + rest.embeddings == full.embeddings
        assert sorted(
            set(part.matched_pairs()) | set(rest.matched_pairs())
        ) == sorted(full.matched_pairs())

    def test_resume_does_not_rerun_query_side_stages(self, dataset, config):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        with tracing() as first:
            part = engine.run(join_budget=JoinBudget(max_matches=2))
        assert len(first.find("stage:filter")) == 1
        with tracing() as second:
            engine.run(join_start_pair=part.resume_pair)
        assert second.find("stage:filter") == []
        assert second.find("stage:mapping") == []
        assert [
            s for s in second.spans if s.name.startswith("kernel:refine")
        ] == []
        assert len(second.find("stage:join")) == 1
        assert engine._artifacts.stats.hits >= 2

    def test_cached_gmcr_is_isolated_between_resumes(self, dataset, config, full):
        # The join mutates the GMCR ``matched`` flags; a resumed run must
        # see a fresh copy, not flags left behind by the previous segment.
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        part = engine.run(join_budget=JoinBudget(max_matches=2))
        once = engine.run(join_start_pair=part.resume_pair)
        twice = engine.run(join_start_pair=part.resume_pair)
        assert twice.total_matches == once.total_matches
        assert twice.matched_pairs() == once.matched_pairs()
        assert twice.embeddings == once.embeddings
        # Each segment's result reports only its own pairs as matched.
        assert set(part.matched_pairs()).isdisjoint(once.matched_pairs())

    def test_multi_segment_resume_chain(self, dataset, config, full):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        budget = JoinBudget(max_matches=1)
        segments = []
        start = 0
        for _ in range(200):
            result = engine.run(join_budget=budget, join_start_pair=start)
            segments.append(result)
            if not result.truncated:
                break
            start = result.resume_pair
        else:
            pytest.fail("resume chain did not terminate")
        assert sum(r.total_matches for r in segments) == full.total_matches
        chained = [rec for r in segments for rec in r.embeddings]
        assert chained == full.embeddings
