"""SGL010 ``driver-bypass``: direct stage calls outside the pipeline.

The rule keeps the refactor honest going forward: any new code calling
``run_join``/``IterativeFilter`` directly — instead of going through the
executor/session layer where spans, timers, contract checks, and artifact
caching attach — is flagged.  The pipeline package itself (the one place
allowed to drive stages) is exempt, and the committed baseline absorbs
the intentional legacy shims.
"""

import pytest

from repro.analysis.linter import (
    lint_paths,
    lint_source,
    load_baseline,
    new_findings,
)

pytestmark = pytest.mark.pipeline


def sgl010(source, filename="core/demo.py"):
    return [f for f in lint_source(source, filename) if f.rule == "SGL010"]


class TestDriverBypass:
    def test_direct_run_join_flagged(self):
        src = "def f(fr, gmcr, cfg):\n    return run_join(fr, gmcr, cfg)\n"
        (finding,) = sgl010(src)
        assert "bypasses the pipeline executor" in finding.message
        assert "MatcherSession" in finding.message

    def test_direct_iterative_filter_flagged(self):
        src = (
            "def f(query, data, n_labels, cfg):\n"
            "    return IterativeFilter(query, data, n_labels, cfg).run()\n"
        )
        assert len(sgl010(src)) == 1

    def test_attribute_calls_flagged_too(self):
        src = "def f(join, fr, gmcr, cfg):\n    return join.run_join(fr, gmcr, cfg)\n"
        assert len(sgl010(src)) == 1

    def test_pipeline_package_is_exempt(self):
        src = "def f(fr, gmcr, cfg):\n    return run_join(fr, gmcr, cfg)\n"
        assert sgl010(src, "pipeline/executor.py") == []
        assert sgl010(src, "pipeline/stages.py") == []
        # Only the package itself, not names that merely contain it.
        assert len(sgl010(src, "core/pipeline_adapter.py")) == 1

    def test_unrelated_calls_clean(self):
        src = (
            "def f(session, engine, data):\n"
            "    session.match(data)\n"
            "    return engine.run()\n"
        )
        assert sgl010(src) == []


def test_repo_is_clean_against_the_baseline():
    """The committed baseline absorbs every legacy shim's direct call."""
    findings = lint_paths()
    fresh = new_findings(findings, load_baseline())
    assert fresh == []
    # The baseline does accept some SGL010 findings (the documented shims),
    # so the rule is live, not vacuous.
    assert any(f.rule == "SGL010" for f in findings)
