"""Prepared-query sessions: warm ``match()`` skips the query-side stages.

Covers the session acceptance criteria: two ``match()`` calls on one
session equal two fresh engines bitwise; a warm call reuses the cached
``FilterResult``/``GMCR`` (verified structurally via obs span counts —
zero ``stage:filter``/``stage:mapping`` spans on the warm call); the
iteration sweep flows through the session layer; and ``mode`` /
``join_budget`` pass through per call.
"""

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import FIND_FIRST, JoinBudget
from repro.obs.trace import tracing
from repro.pipeline import MatcherSession

pytestmark = pytest.mark.pipeline

N_QUERIES = 6
N_DATA = 30
SEED = 7
ITERATIONS = 3


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=N_DATA, seed=SEED
    )


@pytest.fixture(scope="module")
def config():
    return SigmoConfig(refinement_iterations=ITERATIONS, record_embeddings=True)


def assert_same_result(a, b):
    assert a.total_matches == b.total_matches
    assert a.matched_pairs() == b.matched_pairs()
    assert a.embeddings == b.embeddings
    assert a.filter_result.total_candidates == b.filter_result.total_candidates


class TestSessionReuse:
    def test_two_matches_equal_two_fresh_engines(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        first = session.match(dataset.data)
        second = session.match(dataset.data)
        fresh = SigmoEngine(dataset.queries, dataset.data, config).run()
        assert_same_result(first, fresh)
        assert_same_result(second, fresh)

    def test_warm_match_hits_the_artifact_cache(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        session.match(dataset.data)
        stats = session.artifact_stats.as_dict()
        assert stats["hits"] == 0 and stats["stores"] == 2
        session.match(dataset.data)
        stats = session.artifact_stats.as_dict()
        assert stats["hits"] == 2  # FilterResult + GMCR recalled

    def test_warm_match_skips_query_side_stages(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        with tracing() as cold:
            session.match(dataset.data)
        assert len(cold.find("stage:filter")) == 1
        assert len(cold.find("stage:mapping")) == 1
        with tracing() as warm:
            session.match(dataset.data)
        # The cached artifacts satisfy stages 2-4: no filter/mapping spans,
        # no refine kernels — only the join still runs.
        assert warm.find("stage:filter") == []
        assert warm.find("stage:mapping") == []
        assert [s for s in warm.spans if s.name.startswith("kernel:refine")] == []
        assert len(warm.find("stage:join")) == 1

    def test_reuse_false_reruns_the_filter(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        session.match(dataset.data)
        with tracing() as t:
            result = session.match(dataset.data, reuse=False)
        assert len(t.find("stage:filter")) == 1
        fresh = SigmoEngine(dataset.queries, dataset.data, config).run()
        assert_same_result(result, fresh)

    def test_config_change_invalidates_the_artifacts(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        session.match(dataset.data)
        with tracing() as t:
            other = session.match(
                dataset.data,
                config=SigmoConfig(
                    refinement_iterations=ITERATIONS + 2, record_embeddings=True
                ),
            )
        # Different filter-affecting config ⇒ different fingerprint ⇒ the
        # filter runs again (and its result is cached separately).
        assert len(t.find("stage:filter")) == 1
        fresh = SigmoEngine(
            dataset.queries,
            dataset.data,
            SigmoConfig(
                refinement_iterations=ITERATIONS + 2, record_embeddings=True
            ),
        ).run()
        assert_same_result(other, fresh)

    def test_different_data_batches_stream_through_one_session(
        self, dataset, config
    ):
        session = MatcherSession(dataset.queries, config=config)
        lo = session.match(dataset.data[:15])
        hi = session.match(dataset.data[15:])
        whole = session.match(dataset.data)
        assert lo.total_matches + hi.total_matches == whole.total_matches


class TestPassThrough:
    def test_mode(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        first = session.match(dataset.data, mode=FIND_FIRST)
        fresh = SigmoEngine(dataset.queries, dataset.data, config).run(
            mode=FIND_FIRST
        )
        assert first.mode == FIND_FIRST
        assert first.total_matches == fresh.total_matches
        assert first.matched_pairs() == fresh.matched_pairs()

    def test_join_budget_truncates_and_resumes(self, dataset, config):
        session = MatcherSession(dataset.queries, config=config)
        full = session.match(dataset.data)
        part = session.match(dataset.data, join_budget=JoinBudget(max_matches=1))
        assert part.truncated
        assert part.resume_pair is not None
        rest = session.match(dataset.data, join_start_pair=part.resume_pair)
        assert part.total_matches + rest.total_matches == full.total_matches
        assert part.embeddings + rest.embeddings == full.embeddings


class TestIterationSweep:
    def test_sweep_reuses_shared_state_through_the_session(self, dataset, config):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        sweep = engine.run_iteration_sweep([1, 2, ITERATIONS])
        assert sorted(sweep) == [1, 2, ITERATIONS]
        for s, result in sweep.items():
            assert len(result.filter_result.iterations) <= s
        # The last sweep point matches a plain run at the same setting.
        plain = engine.run()
        assert sweep[ITERATIONS].total_matches == plain.total_matches
        # Repeating a sweep point on the same engine recalls its artifacts.
        hits_before = engine._artifacts.stats.hits
        engine.run_iteration_sweep([ITERATIONS])
        assert engine._artifacts.stats.hits > hits_before

    def test_sweep_accepts_mode_and_budget(self, dataset, config):
        engine = SigmoEngine(dataset.queries, dataset.data, config)
        results = engine.run_iteration_sweep(
            [ITERATIONS], mode=FIND_FIRST, join_budget=JoinBudget(max_visits=10**9)
        )
        assert results[ITERATIONS].mode == FIND_FIRST
        fresh = SigmoEngine(dataset.queries, dataset.data, config).run(
            mode=FIND_FIRST
        )
        assert results[ITERATIONS].total_matches == fresh.total_matches


class TestConcurrentReuse:
    """The thread-safety contract: ``match()`` may be called from many
    threads; the internal lock serializes them and the shared artifact
    cache never corrupts (every concurrent result is bitwise-equal to a
    serial run)."""

    def test_interleaved_matches_do_not_corrupt_artifacts(self, dataset, config):
        import threading

        session = MatcherSession(dataset.queries, config=config)
        fresh = SigmoEngine(dataset.queries, dataset.data, config).run()
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def worker(i):
            try:
                barrier.wait()  # maximize interleaving pressure
                for _ in range(3):
                    results[i] = session.match(dataset.data)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for result in results:
            assert_same_result(result, fresh)
        # the cache converged to exactly one stored artifact pair
        stats = session.artifact_stats.as_dict()
        assert stats["stores"] == 2

    def test_concurrent_distinct_batches_stay_isolated(self, dataset, config):
        import threading

        session = MatcherSession(dataset.queries, config=config)
        batches = [dataset.data[:10], dataset.data[10:20], dataset.data[20:]]
        expected = [
            SigmoEngine(dataset.queries, b, config).run().total_matches
            for b in batches
        ]
        barrier = threading.Barrier(len(batches))
        got = [None] * len(batches)

        def worker(i):
            barrier.wait()
            got[i] = session.match(batches[i]).total_matches

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert got == expected

    def test_concurrent_budgeted_and_full_calls_interleave(self, dataset, config):
        import threading

        session = MatcherSession(dataset.queries, config=config)
        full = session.match(dataset.data)
        barrier = threading.Barrier(2)
        out = {}

        def budgeted():
            barrier.wait()
            part = session.match(
                dataset.data, join_budget=JoinBudget(max_matches=1)
            )
            rest = session.match(
                dataset.data, join_start_pair=part.resume_pair
            )
            out["chain"] = part.total_matches + rest.total_matches

        def unbudgeted():
            barrier.wait()
            out["full"] = session.match(dataset.data).total_matches

        threads = [
            threading.Thread(target=budgeted),
            threading.Thread(target=unbudgeted),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert out["chain"] == full.total_matches
        assert out["full"] == full.total_matches
