"""Unit tests of the stage graph, artifact cache, and execution policies."""

import dataclasses

import pytest

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.graph.generators import random_connected_graph
from repro.pipeline import (
    ArtifactCache,
    ChunkingPolicy,
    MemoryBudgetPolicy,
    PIPELINE_STAGES,
    RetryPolicy,
    StageArtifact,
    TruncationPolicy,
    derive_n_labels,
    filter_fingerprint,
    partition_slices,
    validate_stage_graph,
)
from repro.pipeline.stages import StageSpec

pytestmark = pytest.mark.pipeline


def _noop(state):  # placeholder runner for synthetic graphs
    return None


def spec(name, requires=(), group=None, cacheable=False):
    return StageSpec(
        name=name, requires=tuple(requires), runner=_noop, group=group,
        cacheable=cacheable,
    )


class TestStageGraph:
    def test_builtin_graph_is_valid(self):
        validate_stage_graph(PIPELINE_STAGES)
        assert [s.name for s in PIPELINE_STAGES] == [
            "convert", "init-candidates", "refine", "map", "join",
        ]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage name"):
            validate_stage_graph((spec("a"), spec("a")))

    def test_dependency_must_run_earlier(self):
        with pytest.raises(ValueError, match="does not\\s+run before"):
            validate_stage_graph((spec("a", requires=("b",)), spec("b")))
        with pytest.raises(ValueError, match="does not\\s+run before"):
            validate_stage_graph((spec("a", requires=("missing",)),))

    def test_group_must_be_contiguous(self):
        stages = (
            spec("a", group="g"),
            spec("b"),
            spec("c", group="g"),
        )
        with pytest.raises(ValueError, match="split by an intervening stage"):
            validate_stage_graph(stages)

    def test_cacheable_stage_must_close_its_group(self):
        stages = (
            spec("a", group="g", cacheable=True),
            spec("b", group="g"),
        )
        with pytest.raises(ValueError, match="must be the tail"):
            validate_stage_graph(stages)


class TestArtifactCache:
    def art(self, stage, key, value=None):
        return StageArtifact(stage=stage, fingerprint=(key,), value=value)

    def test_hit_miss_store_counters(self):
        cache = ArtifactCache()
        assert cache.get("refine", ("x",)) is None
        cache.put(self.art("refine", "x", 1))
        hit = cache.get("refine", ("x",))
        assert hit is not None and hit.value == 1
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "evictions": 0, "stores": 1,
        }

    def test_lru_eviction_order(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(self.art("refine", "a"))
        cache.put(self.art("refine", "b"))
        cache.get("refine", ("a",))  # refresh a; b is now the LRU entry
        cache.put(self.art("refine", "c"))
        assert cache.get("refine", ("a",)) is not None
        assert cache.get("refine", ("b",)) is None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_reinsert_refreshes_value_and_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(self.art("refine", "a", 1))
        cache.put(self.art("refine", "b"))
        cache.put(self.art("refine", "a", 2))  # refresh: a is now newest
        cache.put(self.art("refine", "c"))  # evicts b
        assert cache.get("refine", ("a",)).value == 2
        assert cache.get("refine", ("b",)) is None

    def test_clear_keeps_stats(self):
        cache = ArtifactCache()
        cache.put(self.art("refine", "a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stores == 1

    def test_bound_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            ArtifactCache(max_entries=0)


class TestFingerprint:
    @pytest.fixture(scope="class")
    def batches(self):
        import numpy as np

        rng = np.random.default_rng(3)
        graphs = [
            random_connected_graph(8, extra_edges=4, n_labels=3, rng=rng)
            for _ in range(4)
        ]
        return CSRGO.from_graphs(graphs[:2]), CSRGO.from_graphs(graphs[2:])

    def test_sensitive_to_filter_knobs(self, batches):
        query, data = batches
        config = SigmoConfig(refinement_iterations=3)
        n = derive_n_labels(query, data, config.wildcard_label)
        base = filter_fingerprint(query, data, n, config)
        assert base == filter_fingerprint(query, data, n, config)
        for change in (
            {"refinement_iterations": 4},
            {"word_bits": 32 if config.word_bits == 64 else 64},
            {"edge_signatures": not config.edge_signatures},
        ):
            other = dataclasses.replace(config, **change)
            assert filter_fingerprint(query, data, n, other) != base

    def test_insensitive_to_join_knobs(self, batches):
        query, data = batches
        config = SigmoConfig(refinement_iterations=3)
        n = derive_n_labels(query, data, config.wildcard_label)
        base = filter_fingerprint(query, data, n, config)
        other = dataclasses.replace(config, record_embeddings=True)
        assert filter_fingerprint(query, data, n, other) == base

    def test_sensitive_to_batch_content(self, batches):
        query, data = batches
        config = SigmoConfig(refinement_iterations=3)
        n = derive_n_labels(query, data, config.wildcard_label)
        assert filter_fingerprint(query, data, n, config) != filter_fingerprint(
            data, query, n, config
        )


class TestPolicies:
    def test_chunking_units_cover_the_range(self):
        units = ChunkingPolicy(10).units(0, 25)
        assert [(u.start, u.stop) for u in units] == [(0, 10), (10, 20), (20, 25)]
        assert [u.size for u in units] == [10, 10, 5]
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkingPolicy(0)

    def test_partition_slices_are_deterministic_blocks(self):
        assert partition_slices(30, 2) == [(0, 15), (15, 30)]
        assert partition_slices(30, 4) == [(0, 8), (8, 16), (16, 24), (24, 30)]
        assert partition_slices(3, 8) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(ValueError, match="at least one item"):
            partition_slices(0, 2)
        with pytest.raises(ValueError, match="n_workers"):
            partition_slices(5, 0)

    def test_retry_policy_schedule(self):
        retry = RetryPolicy(max_attempts=3, backoff_base=0.5, backoff_factor=2.0)
        assert retry.delay(0) == 0.0
        assert retry.delay(1) == 1.0
        assert retry.delay(2) == 2.0
        assert not retry.exhausted(2)
        assert retry.exhausted(3)
        with pytest.raises(ValueError, match="max_attempts must be >= 1"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-1.0)

    def test_memory_budget_policy(self):
        unlimited = MemoryBudgetPolicy(capacity_bytes=None)
        assert unlimited.auto_chunk_size(10, 20.0, 100) == (100, None)
        bounded = MemoryBudgetPolicy(capacity_bytes=1 << 30)
        size, note = bounded.auto_chunk_size(10, 20.0, 100)
        assert size >= 1 and note is None
        tiny = MemoryBudgetPolicy(capacity_bytes=1)
        size, note = tiny.auto_chunk_size(10_000, 10_000.0, 100)
        assert size == 1 and note  # degraded to single-graph chunks

    def test_truncation_policy_validates_mode(self):
        assert TruncationPolicy().on_truncate == "resume"
        with pytest.raises(ValueError, match="on_truncate"):
            TruncationPolicy(on_truncate="abort")
