"""Unit tests for result containers."""

import numpy as np

from repro.core.results import MatchRecord, MemoryReport


class TestMatchRecord:
    def test_node_set(self):
        rec = MatchRecord(0, 1, np.array([5, 3, 7]))
        assert rec.node_set() == frozenset({3, 5, 7})

    def test_equality_and_hash(self):
        a = MatchRecord(0, 1, np.array([1, 2]))
        b = MatchRecord(0, 1, np.array([1, 2]))
        c = MatchRecord(0, 1, np.array([2, 1]))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_not_equal_other_type(self):
        assert MatchRecord(0, 0, np.array([0])) != "x"


class TestMemoryReport:
    def test_total(self):
        r = MemoryReport(candidate_bitmap=80, data_graphs=10, query_graphs=5,
                         signatures=4, gmcr=1)
        assert r.total == 100

    def test_fractions_bitmap_dominant(self):
        r = MemoryReport(candidate_bitmap=80, data_graphs=20)
        assert r.fractions()["candidate_bitmap"] == 0.8

    def test_empty_report(self):
        assert MemoryReport().total == 0
        assert MemoryReport().fractions()["gmcr"] == 0.0
