"""Unit tests for the CSR-GO representation."""

import numpy as np
import pytest

from repro.core.csrgo import CSRGO
from repro.graph.batch import GraphBatch
from repro.graph.generators import path_graph, ring_graph
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def csrgo():
    return CSRGO.from_graphs(
        [path_graph([0, 1], [3]), ring_graph(3, [2, 2, 2]), LabeledGraph([1])]
    )


class TestConstruction:
    def test_paper_figure3_layout(self):
        # Fig. 3: G0 = 5 nodes, G1 = 4 nodes; graph offsets [0, 5, 9].
        g0 = LabeledGraph([0] * 5, [(0, 1), (0, 4), (1, 2), (2, 3), (3, 4), (2, 4)])
        g1 = LabeledGraph([0] * 4, [(0, 1), (1, 2), (1, 3)])
        c = CSRGO.from_graphs([g0, g1])
        np.testing.assert_array_equal(c.graph_offsets, [0, 5, 9])
        assert c.row_offsets[0] == 0
        assert c.row_offsets[-1] == c.column_indices.size

    def test_sizes(self, csrgo):
        assert csrgo.n_graphs == 3
        assert csrgo.n_nodes == 6
        assert csrgo.n_edges == 4
        assert csrgo.n_adjacency == 8

    def test_empty_batch(self):
        c = CSRGO.from_batch(GraphBatch([]))
        assert c.n_graphs == 0 and c.n_nodes == 0

    def test_validation_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            CSRGO(
                np.array([1, 2]),
                np.array([0, 0]),
                np.empty(0, np.int32),
                np.array([0]),
            )

    def test_validation_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            CSRGO(
                np.array([0, 2]),
                np.array([0, 0, 0]),
                np.empty(0, np.int32),
                np.array([0]),
            )

    def test_validation_rejects_column_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            CSRGO(
                np.array([0, 1]),
                np.array([0, 1]),
                np.array([5], dtype=np.int32),
                np.array([0]),
            )


class TestNavigation:
    def test_graph_of_node_binary_search(self, csrgo):
        assert csrgo.graph_of_node(0) == 0
        assert csrgo.graph_of_node(2) == 1
        assert csrgo.graph_of_node(5) == 2

    def test_graph_of_node_vectorized(self, csrgo):
        np.testing.assert_array_equal(
            csrgo.graph_of_node(np.array([0, 3, 5])), [0, 1, 2]
        )

    def test_graph_of_node_out_of_range(self, csrgo):
        with pytest.raises(ValueError):
            csrgo.graph_of_node(6)

    def test_node_range(self, csrgo):
        assert csrgo.graph_node_range(1) == (2, 5)
        with pytest.raises(ValueError):
            csrgo.graph_node_range(9)

    def test_graph_n_nodes(self, csrgo):
        np.testing.assert_array_equal(csrgo.graph_n_nodes(), [2, 3, 1])
        assert csrgo.graph_n_nodes(1) == 3

    def test_neighbors_are_global_ids(self, csrgo):
        np.testing.assert_array_equal(csrgo.neighbors(2), [3, 4])

    def test_degrees(self, csrgo):
        np.testing.assert_array_equal(csrgo.degrees(), [1, 1, 2, 2, 2, 0])

    def test_has_edge_and_label(self, csrgo):
        assert csrgo.has_edge(0, 1)
        assert csrgo.edge_label(0, 1) == 3
        assert not csrgo.has_edge(1, 2)
        with pytest.raises(KeyError):
            csrgo.edge_label(1, 2)

    def test_n_labels(self, csrgo):
        assert csrgo.n_labels == 3


class TestExtraction:
    def test_extract_graph_roundtrip(self, csrgo):
        g = csrgo.extract_graph(1)
        assert g == ring_graph(3, [2, 2, 2])

    def test_extract_preserves_edge_labels(self):
        orig = path_graph([0, 1, 0], [7, 9])
        c = CSRGO.from_graphs([orig])
        assert c.extract_graph(0) == orig

    def test_scipy_adjacency_block_diagonal(self, csrgo):
        a = csrgo.to_scipy_adjacency()
        assert a.shape == (6, 6)
        dense = a.toarray()
        assert not dense[0:2, 2:].any()  # no cross-graph edges
        assert (dense == dense.T).all()

    def test_nbytes_positive(self, csrgo):
        assert csrgo.nbytes() > 0
