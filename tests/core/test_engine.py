"""Unit tests for the engine orchestration."""

import pytest

from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine, count_matches, find_all, find_first
from repro.graph.generators import path_graph, ring_graph


class TestEngineBasics:
    def test_requires_nonempty_batches(self):
        with pytest.raises(ValueError):
            SigmoEngine([], [path_graph([0])])
        with pytest.raises(ValueError):
            SigmoEngine([path_graph([0])], [])

    def test_run_produces_timings(self):
        res = SigmoEngine([path_graph([1, 2])], [path_graph([1, 2])]).run()
        assert res.filter_seconds > 0
        assert "mapping" in res.timings
        assert res.total_seconds >= res.join_seconds

    def test_memory_report(self):
        res = SigmoEngine([path_graph([1, 2])], [path_graph([1, 2, 1])]).run()
        assert res.memory.candidate_bitmap > 0
        assert res.memory.total >= res.memory.candidate_bitmap
        fr = res.memory.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_per_run_config_override(self):
        engine = SigmoEngine(
            [path_graph([1, 2])],
            [path_graph([1, 3, 2])],
            SigmoConfig(refinement_iterations=1),
        )
        res1 = engine.run()
        res2 = engine.run(config=SigmoConfig(refinement_iterations=3))
        assert len(res1.filter_result.iterations) == 1
        assert len(res2.filter_result.iterations) == 3

    def test_iteration_sweep(self):
        engine = SigmoEngine([path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])])
        sweep = engine.run_iteration_sweep([1, 2, 3])
        assert sorted(sweep) == [1, 2, 3]
        # results identical across iterations (filter only prunes)
        assert len({r.total_matches for r in sweep.values()}) == 1


class TestConvenience:
    def test_find_all(self):
        res = find_all([path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])])
        assert res.total_matches == 4 and res.mode == "find-all"

    def test_find_first(self):
        res = find_first([path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])])
        assert res.total_matches == 1 and res.mode == "find-first"

    def test_count_matches(self):
        assert count_matches(path_graph([1, 2]), path_graph([2, 1, 2])) == 2

    def test_throughput_and_summary(self):
        res = find_all([path_graph([1, 2])], [path_graph([1, 2])])
        assert res.throughput() > 0
        assert "matches=1" in res.summary()

    def test_node_sets(self):
        res = find_all(
            [path_graph([1, 1])],
            [path_graph([1, 1])],
            SigmoConfig(record_embeddings=True),
        )
        # 2 embeddings but a single node subset
        assert res.total_matches == 2
        assert len(res.node_sets()) == 1
