"""Unit tests for SigmoConfig."""

import numpy as np
import pytest

from repro.core.config import PAPER_TABLE1_CONFIGS, SigmoConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = SigmoConfig()
        assert cfg.refinement_iterations == 6  # the paper's NVIDIA optimum

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            SigmoConfig(refinement_iterations=0)

    def test_rejects_bad_word_bits(self):
        with pytest.raises(ValueError):
            SigmoConfig(word_bits=48)

    def test_rejects_non_power_of_two_wg(self):
        with pytest.raises(ValueError):
            SigmoConfig(filter_workgroup_size=100)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            SigmoConfig(candidate_order="random")

    def test_rejects_negative_record_cap(self):
        with pytest.raises(ValueError):
            SigmoConfig(max_embeddings_recorded=-1)


class TestBehaviour:
    def test_with_iterations(self):
        cfg = SigmoConfig().with_iterations(3)
        assert cfg.refinement_iterations == 3

    def test_packing_default_from_frequencies(self):
        cfg = SigmoConfig()
        p = cfg.packing_for(np.array([100.0, 1.0]))
        assert p.bits[0] >= p.bits[1]

    def test_packing_explicit_bits(self):
        cfg = SigmoConfig(signature_bits=(8, 8))
        p = cfg.packing_for(np.array([1.0, 1.0]))
        assert p.bits.tolist() == [8, 8]

    def test_packing_explicit_bits_length_mismatch(self):
        cfg = SigmoConfig(signature_bits=(8,))
        with pytest.raises(ValueError):
            cfg.packing_for(np.array([1.0, 1.0]))

    def test_paper_table1_configs(self):
        assert PAPER_TABLE1_CONFIGS["nvidia-v100s"].word_bits == 32
        assert PAPER_TABLE1_CONFIGS["amd-mi100"].word_bits == 64
        assert PAPER_TABLE1_CONFIGS["intel-max1100"].join_workgroup_size == 32
