"""Unit tests for the iterative filter (paper Alg. 1)."""

import numpy as np
import pytest

from repro.core.candidates import CandidateBitmap
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.filtering import (
    IterativeFilter,
    initialize_candidates,
    refine_candidates,
)
from repro.core.signatures import SignaturePacking
from repro.graph.generators import path_graph, ring_graph


class TestInitializeCandidates:
    def test_label_equality(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1, 2, 1, 3])])
        b = initialize_candidates(q, d)
        np.testing.assert_array_equal(b.row_bool(0), [True, False, True, False])
        np.testing.assert_array_equal(b.row_bool(1), [False, True, False, False])

    def test_no_shared_labels(self):
        q = CSRGO.from_graphs([path_graph([5])])
        d = CSRGO.from_graphs([path_graph([1, 2])])
        assert initialize_candidates(q, d).total_candidates() == 0


class TestRefineCandidates:
    def test_domination_prunes(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1, 2, 1, 3])])
        bitmap = initialize_candidates(q, d)
        packing = SignaturePacking.uniform(4)
        # radius-1 signatures
        q_counts = np.array([[0, 0, 1, 0], [0, 1, 0, 0]])
        d_counts = np.array([[0, 0, 1, 0], [0, 2, 0, 0], [0, 0, 1, 1], [0, 0, 1, 0]])
        refine_candidates(bitmap, q_counts, d_counts, packing)
        # data node 0 and 2 both have an adjacent label-2 node; both stay.
        np.testing.assert_array_equal(bitmap.row_bool(0), [True, False, True, False])

    def test_monotone_never_adds(self, rng):
        q = CSRGO.from_graphs([ring_graph(3, [0, 1, 2])])
        d = CSRGO.from_graphs([ring_graph(6, [0, 1, 2, 0, 1, 2])])
        bitmap = initialize_candidates(q, d)
        before = bitmap.to_bool()
        packing = SignaturePacking.uniform(3)
        refine_candidates(
            bitmap, np.ones((3, 3), dtype=int), np.zeros((6, 3), dtype=int), packing
        )
        after = bitmap.to_bool()
        assert not (after & ~before).any()

    def test_shape_validation(self):
        bitmap = CandidateBitmap(2, 3)
        packing = SignaturePacking.uniform(2)
        with pytest.raises(ValueError):
            refine_candidates(bitmap, np.zeros((1, 2)), np.zeros((3, 2)), packing)
        with pytest.raises(ValueError):
            refine_candidates(bitmap, np.zeros((2, 2)), np.zeros((4, 2)), packing)


class TestIterativeFilter:
    def test_iteration_one_is_label_only(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1, 3, 2])])
        filt = IterativeFilter(q, d, SigmoConfig(refinement_iterations=1))
        result = filt.run()
        # label-only: data node 0 is candidate for query node 0 even though
        # its neighborhood (label 3) cannot support the match
        assert result.bitmap.test(0, 0)

    def test_deeper_iterations_prune_more(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1, 3, 2])])
        filt = IterativeFilter(q, d, SigmoConfig(refinement_iterations=2))
        result = filt.run()
        assert not result.bitmap.test(0, 0)

    def test_candidate_counts_monotone_nonincreasing(self, small_dataset):
        from repro.core.csrgo import CSRGO as C

        q = C.from_graphs(small_dataset.queries[:8])
        d = C.from_graphs(small_dataset.data[:20])
        result = IterativeFilter(q, d, SigmoConfig(refinement_iterations=6)).run()
        totals = [s.total_candidates for s in result.iterations]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_stats_structure(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1, 2])])
        result = IterativeFilter(q, d, SigmoConfig(refinement_iterations=3)).run()
        assert [s.iteration for s in result.iterations] == [1, 2, 3]
        assert [s.radius for s in result.iterations] == [0, 1, 2]
        assert all(s.candidates_per_node.shape == (2,) for s in result.iterations)

    def test_filter_soundness_never_prunes_true_match(self, rng):
        """Core invariant: a filtered-out node can never be part of a match."""
        from tests.conftest import random_case
        from repro.baselines.networkx_ref import networkx_count_matches

        for _ in range(10):
            qg, dg, _ = random_case(rng)
            q = CSRGO.from_graphs([qg])
            d = CSRGO.from_graphs([dg])
            result = IterativeFilter(q, d, SigmoConfig(refinement_iterations=5)).run()
            # collect all embeddings via oracle and check every mapped node
            # survived the filter
            import networkx as nx
            from networkx.algorithms.isomorphism import GraphMatcher

            gm = GraphMatcher(
                dg.to_networkx(),
                qg.to_networkx(),
                node_match=lambda a, b: a["label"] == b["label"],
                edge_match=lambda a, b: a["label"] == b["label"],
            )
            for mapping in gm.subgraph_monomorphisms_iter():
                for d_node, q_node in mapping.items():
                    assert result.bitmap.test(q_node, d_node)

    def test_packing_derived_from_data_frequencies(self):
        q = CSRGO.from_graphs([path_graph([1, 2])])
        d = CSRGO.from_graphs([path_graph([1] * 6 + [2])])
        filt = IterativeFilter(q, d)
        assert filt.packing.bits[1] >= filt.packing.bits[2]
