"""Unit tests for the stack-based DFS join."""

import numpy as np
import pytest

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine
from repro.core.filtering import IterativeFilter
from repro.core.join import (
    FIND_ALL,
    FIND_FIRST,
    JoinBudget,
    build_query_plan,
    run_join,
)
from repro.core.mapping import build_gmcr
from repro.graph.generators import path_graph, ring_graph, star_graph
from repro.graph.labeled_graph import LabeledGraph


def run_pipeline(queries, data, mode=FIND_ALL, iterations=3, budget=None, start_pair=0, **cfg):
    config = SigmoConfig(refinement_iterations=iterations, **cfg)
    q = CSRGO.from_graphs(queries)
    d = CSRGO.from_graphs(data)
    fr = IterativeFilter(q, d, config).run()
    gmcr = build_gmcr(fr.bitmap, q, d)
    result = run_join(
        q, d, fr.bitmap, gmcr, config, mode=mode, budget=budget, start_pair=start_pair
    )
    return result, gmcr


class TestQueryPlan:
    def test_order_is_permutation(self):
        q = CSRGO.from_graphs([ring_graph(5, [0, 1, 2, 3, 4])])
        plan = build_query_plan(q, 0)
        assert sorted(plan.order.tolist()) == list(range(5))

    def test_connected_prefix(self):
        q = CSRGO.from_graphs([path_graph([0, 1, 2, 3])])
        plan = build_query_plan(q, 0)
        # every node after the first has a back edge (connectivity)
        for checks in plan.check_edges[1:]:
            assert len(checks) >= 1

    def test_check_edges_cover_all_edges(self):
        g = ring_graph(4, [0, 1, 2, 3])
        q = CSRGO.from_graphs([g])
        plan = build_query_plan(q, 0)
        n_checks = sum(len(c) for c in plan.check_edges)
        assert n_checks == g.n_edges

    def test_fewest_candidates_starts_rare(self):
        q = CSRGO.from_graphs([path_graph([0, 1])])
        counts = np.array([100, 1])
        plan = build_query_plan(q, 0, counts, "fewest-candidates")
        assert plan.order[0] == 1

    def test_bfs_heuristic(self):
        q = CSRGO.from_graphs([path_graph([0, 1, 2])])
        plan = build_query_plan(q, 0, heuristic="bfs")
        assert plan.order.tolist() == [0, 1, 2]

    def test_empty_query_raises(self):
        q = CSRGO.from_graphs([LabeledGraph([]), path_graph([0])])
        with pytest.raises(ValueError):
            build_query_plan(q, 0)


class TestJoinCounts:
    def test_path_in_ring(self):
        res, _ = run_pipeline([path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])])
        assert res.total_matches == 4

    def test_automorphisms_counted(self):
        # triangle query in triangle data: 3! = 6 embeddings
        res, _ = run_pipeline(
            [ring_graph(3, [0, 0, 0])], [ring_graph(3, [0, 0, 0])]
        )
        assert res.total_matches == 6

    def test_edge_labels_checked(self):
        q = path_graph([0, 0], [1])  # edge label 1
        d = path_graph([0, 0], [2])  # edge label 2
        res, _ = run_pipeline([q], [d])
        assert res.total_matches == 0

    def test_injectivity(self):
        # two-leaf star query needs two distinct label-1 neighbors
        q = star_graph(0, [1, 1])
        d = path_graph([1, 0])  # only one neighbor
        res, _ = run_pipeline([q], [d])
        assert res.total_matches == 0

    def test_non_induced_semantics(self):
        # path query matches inside a triangle (extra data edges allowed)
        q = path_graph([0, 0, 0])
        d = ring_graph(3, [0, 0, 0])
        res, _ = run_pipeline([q], [d])
        assert res.total_matches == 6

    def test_multiple_data_graphs(self):
        q = path_graph([1, 2])
        data = [path_graph([1, 2]), path_graph([2, 1]), path_graph([3, 3])]
        res, gmcr = run_pipeline([q], data)
        assert res.total_matches == 2
        assert gmcr.matched.sum() == 2


class TestFindFirst:
    def test_find_first_counts_pairs(self):
        q = path_graph([1, 1])
        d = ring_graph(6, [1] * 6)  # 12 embeddings
        res_all, _ = run_pipeline([q], [d], mode=FIND_ALL)
        res_first, gmcr = run_pipeline([q], [d], mode=FIND_FIRST)
        assert res_all.total_matches == 12
        assert res_first.total_matches == 1
        assert gmcr.matched[0]

    def test_find_first_less_work(self):
        # DFS semantics: the scalar backend stops at the first embedding.
        # (The fused backend pays whole-block work regardless, so its
        # Find First counters are backend-specific by design.)
        q = path_graph([1, 1])
        d = ring_graph(12, [1] * 12)
        res_all, _ = run_pipeline([q], [d], mode=FIND_ALL, join_backend="dfs")
        res_first, _ = run_pipeline(
            [q], [d], mode=FIND_FIRST, join_backend="dfs"
        )
        assert res_first.stats.candidate_visits < res_all.stats.candidate_visits

    def test_invalid_mode(self):
        q = CSRGO.from_graphs([path_graph([0])])
        with pytest.raises(ValueError):
            run_join(q, q, None, None, mode="bogus")


class TestEmbeddingRecording:
    def test_embeddings_are_valid(self):
        q = path_graph([1, 2, 1])
        d = ring_graph(6, [1, 2, 1, 1, 2, 1])
        config = SigmoConfig(record_embeddings=True)
        engine = SigmoEngine([q], [d], config)
        res = engine.run()
        assert len(res.embeddings) == res.total_matches
        for rec in res.embeddings:
            mapping = rec.mapping
            # injective
            assert len(set(mapping.tolist())) == mapping.size
            # label-preserving
            for qi, di in enumerate(mapping):
                assert d.labels[di] == q.labels[qi]
            # edge-preserving with labels
            for (u, v), lab in zip(q.edges, q.edge_labels):
                assert d.has_edge(int(mapping[u]), int(mapping[v]))
                assert d.edge_label(int(mapping[u]), int(mapping[v])) == lab

    def test_record_cap(self):
        q = path_graph([1, 1])
        d = ring_graph(8, [1] * 8)
        config = SigmoConfig(record_embeddings=True, max_embeddings_recorded=3)
        res = SigmoEngine([q], [d], config).run()
        assert len(res.embeddings) == 3
        assert res.total_matches == 16


class TestJoinStats:
    def test_counters_populated(self):
        res, _ = run_pipeline([path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])])
        assert res.stats.pairs_joined == 1
        assert res.stats.stack_pushes >= res.total_matches
        assert res.stats.candidate_visits >= res.stats.stack_pushes

    def test_pair_matches_aligned_with_gmcr(self):
        q = path_graph([1, 2])
        data = [path_graph([1, 2]), path_graph([1, 3, 2])]
        res, gmcr = run_pipeline([q], data, iterations=1)
        assert res.pair_matches.size == gmcr.n_pairs
        assert res.pair_matches.sum() == res.total_matches


class TestJoinBudget:
    """The join watchdog: truncation at pair boundaries with resume."""

    WORKLOAD = (
        [path_graph([1, 1]), path_graph([1, 1, 1])],
        [ring_graph(6, [1] * 6), ring_graph(8, [1] * 8), path_graph([1, 1, 1, 1])],
    )

    def test_no_budget_never_truncates(self):
        res, _ = run_pipeline(*self.WORKLOAD)
        assert not res.truncated
        assert res.resume_pair is None

    def test_match_budget_truncates_at_pair_boundary(self):
        full, gmcr = run_pipeline(*self.WORKLOAD)
        res, _ = run_pipeline(*self.WORKLOAD, budget=JoinBudget(max_matches=1))
        assert res.truncated
        assert res.truncate_reason
        assert 0 < res.resume_pair < gmcr.n_pairs
        assert 0 < res.total_matches < full.total_matches
        # pairs before the boundary are complete, pairs after untouched
        assert (res.pair_matches[: res.resume_pair] == full.pair_matches[: res.resume_pair]).all()
        assert (res.pair_matches[res.resume_pair :] == 0).all()

    def test_resume_chain_equals_full_run(self):
        full, _ = run_pipeline(*self.WORKLOAD)
        budget = JoinBudget(max_matches=1)
        total = 0
        start = 0
        for _ in range(100):
            res, _ = run_pipeline(*self.WORKLOAD, budget=budget, start_pair=start)
            total += res.total_matches
            if not res.truncated:
                break
            start = res.resume_pair
        else:
            pytest.fail("resume chain did not converge")
        assert total == full.total_matches

    def test_visit_budget_truncates(self):
        res, _ = run_pipeline(*self.WORKLOAD, budget=JoinBudget(max_visits=1))
        assert res.truncated
        assert "candidate_visits" in res.truncate_reason

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            JoinBudget(max_matches=0)
        with pytest.raises(ValueError):
            JoinBudget(max_visits=-1)

    def test_start_pair_validation(self):
        with pytest.raises(ValueError):
            run_pipeline(*self.WORKLOAD, start_pair=-1)
        with pytest.raises(ValueError):
            run_pipeline(*self.WORKLOAD, start_pair=10**6)

    def test_start_pair_skips_completed_pairs(self):
        full, gmcr = run_pipeline(*self.WORKLOAD)
        res, _ = run_pipeline(*self.WORKLOAD, start_pair=1)
        assert res.total_matches == full.total_matches - full.pair_matches[0]
        assert (res.pair_matches[0] == 0) and not res.truncated
