"""Unit tests for embedding verification."""

import numpy as np
import pytest

from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.verify import verify_embedding, verify_result
from repro.graph.generators import path_graph, ring_graph


@pytest.fixture
def q():
    return path_graph([1, 2], [3])


@pytest.fixture
def d():
    return path_graph([1, 2, 1], [3, 3])


class TestVerifyEmbedding:
    def test_valid(self, q, d):
        assert verify_embedding(q, d, np.array([0, 1])).ok
        assert verify_embedding(q, d, np.array([2, 1])).ok

    def test_wrong_arity(self, q, d):
        report = verify_embedding(q, d, np.array([0]))
        assert not report.ok and report.failures[0].kind == "arity"

    def test_out_of_range(self, q, d):
        report = verify_embedding(q, d, np.array([0, 99]))
        assert report.failures[0].kind == "range"

    def test_injectivity(self):
        q2 = path_graph([1, 1])
        d2 = ring_graph(3, [1, 1, 1])
        report = verify_embedding(q2, d2, np.array([0, 0]))
        assert any(f.kind == "injectivity" for f in report.failures)

    def test_label_violation(self, q, d):
        report = verify_embedding(q, d, np.array([1, 0]))
        assert any(f.kind == "label" for f in report.failures)

    def test_missing_edge(self, q, d):
        report = verify_embedding(q, d, np.array([0, 1]))
        assert report.ok
        report = verify_embedding(q, d, np.array([2, 1]))
        assert report.ok
        # nodes 0 and 2 are not adjacent
        q11 = path_graph([1, 1])
        d3 = path_graph([1, 2, 1])
        report = verify_embedding(q11, d3, np.array([0, 2]))
        assert any(f.kind == "edge" for f in report.failures)

    def test_edge_label_violation(self):
        q2 = path_graph([1, 2], [4])
        d2 = path_graph([1, 2], [3])
        report = verify_embedding(q2, d2, np.array([0, 1]))
        assert any(f.kind == "edge-label" for f in report.failures)

    def test_multiple_failures_collected(self):
        q2 = ring_graph(3, [1, 2, 3])
        d2 = path_graph([3, 2, 1])
        report = verify_embedding(q2, d2, np.array([0, 1, 2]))
        assert len(report.failures) >= 2

    def test_wildcards_respected(self):
        from repro.chem.smarts import ANY_BOND_LABEL, WILDCARD_ATOM_LABEL

        q2 = path_graph([WILDCARD_ATOM_LABEL, 2], [ANY_BOND_LABEL])
        d2 = path_graph([7, 2], [3])
        assert not verify_embedding(q2, d2, np.array([0, 1])).ok
        assert verify_embedding(
            q2, d2, np.array([0, 1]),
            wildcard_label=WILDCARD_ATOM_LABEL,
            wildcard_edge_label=ANY_BOND_LABEL,
        ).ok


class TestVerifyResult:
    def test_engine_embeddings_all_verify(self, small_dataset):
        config = SigmoConfig(record_embeddings=True)
        queries = small_dataset.queries[:6]
        data = small_dataset.data[:15]
        result = SigmoEngine(queries, data, config).run()
        assert result.embeddings  # sanity: something to verify
        assert verify_result(result, queries, data, config) == []
