"""Unit tests for chunked (out-of-core) execution."""

import numpy as np
import pytest

from repro.core.chunked import (
    BudgetInfeasible,
    ChunkedResult,
    chunk_size_for_budget,
    run_chunked,
)
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine


@pytest.fixture(scope="module")
def workload(small_dataset):
    return small_dataset.queries[:10], small_dataset.data[:30]


class TestEquivalence:
    def test_matches_equal_unchunked(self, workload):
        queries, data = workload
        full = SigmoEngine(queries, data).run()
        for chunk_size in (1, 7, 30, 100):
            chunked = run_chunked(queries, data, chunk_size)
            assert chunked.total_matches == full.total_matches, chunk_size

    def test_matched_pairs_globalized(self, workload):
        queries, data = workload
        full = SigmoEngine(queries, data).run(mode="find-first")
        chunked = run_chunked(queries, data, 7, mode="find-first")
        assert sorted(chunked.matched_pairs) == sorted(full.matched_pairs())

    def test_embeddings_globalized(self, workload):
        queries, data = workload
        cfg = SigmoConfig(record_embeddings=True)
        full = SigmoEngine(queries, data, cfg).run()
        chunked = run_chunked(queries, data, 11, config=cfg)
        assert {(r.data_graph, r.query_graph, tuple(r.mapping)) for r in full.embeddings} == {
            (r.data_graph, r.query_graph, tuple(r.mapping)) for r in chunked.embeddings
        }

    def test_chunk_count(self, workload):
        queries, data = workload
        assert run_chunked(queries, data, 7).n_chunks == -(-len(data) // 7)


class TestMemoryBound:
    def test_peak_memory_below_full_run(self, workload):
        queries, data = workload
        full = SigmoEngine(queries, data).run()
        chunked = run_chunked(queries, data, 5)
        assert chunked.peak_memory_bytes < full.memory.total

    def test_smaller_chunks_smaller_peak(self, workload):
        queries, data = workload
        small = run_chunked(queries, data, 3)
        large = run_chunked(queries, data, 15)
        assert small.peak_memory_bytes <= large.peak_memory_bytes

    def test_timings_accumulate(self, workload):
        queries, data = workload
        chunked = run_chunked(queries, data, 10)
        assert chunked.total_seconds > 0
        assert "join" in chunked.timings


class TestValidation:
    def test_bad_chunk_size(self, workload):
        queries, data = workload
        with pytest.raises(ValueError):
            run_chunked(queries, data, 0)

    def test_empty_data(self, workload):
        queries, _ = workload
        with pytest.raises(ValueError):
            run_chunked(queries, [], 5)


class TestBudgetHelper:
    def test_paper_scale_budget(self):
        # 3,413 query nodes, ~24 nodes/molecule, 30 GB usable: the chunk
        # should hold around 2.5M molecules (beyond scale factor 26 the
        # whole dataset no longer fits; chunking makes it unbounded).
        size = chunk_size_for_budget(3413, 23.9, 30 * 1024**3)
        assert 2_000_000 < size < 4_000_000

    def test_infeasible_budget_raises(self):
        # even one 200-node molecule against 10^9 query nodes blows a 1 KiB
        # budget; a typed error beats silently returning chunk_size=1
        with pytest.raises(BudgetInfeasible) as exc:
            chunk_size_for_budget(10**9, 200.0, 1024)
        assert exc.value.budget_bytes == 1024
        assert exc.value.required_bytes > 1024

    def test_tight_but_feasible_budget(self):
        # doubling the single-graph requirement makes the budget feasible
        with pytest.raises(BudgetInfeasible) as exc:
            chunk_size_for_budget(10**6, 50.0, 1024)
        assert chunk_size_for_budget(10**6, 50.0, 2 * exc.value.required_bytes) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_size_for_budget(0, 10, 100)
        with pytest.raises(ValueError):
            chunk_size_for_budget(10, 10, 0)
