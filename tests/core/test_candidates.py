"""Unit tests for the candidate bitmap."""

import numpy as np
import pytest

from repro.core.candidates import CandidateBitmap


class TestConstruction:
    def test_starts_empty(self):
        b = CandidateBitmap(3, 100)
        assert b.total_candidates() == 0
        assert b.words.shape == (3, 2)

    def test_word_width(self):
        b = CandidateBitmap(1, 100, word_bits=32)
        assert b.words.shape == (1, 4)
        assert b.words.dtype == np.uint32

    def test_negative_dims(self):
        with pytest.raises(ValueError):
            CandidateBitmap(-1, 5)

    def test_from_bool_roundtrip(self, rng):
        dense = rng.random((4, 90)) < 0.3
        b = CandidateBitmap.from_bool(dense)
        np.testing.assert_array_equal(b.to_bool(), dense)

    def test_copy_is_deep(self):
        b = CandidateBitmap.from_bool(np.ones((1, 10), dtype=bool))
        c = b.copy()
        c.words[:] = 0
        assert b.total_candidates() == 10


class TestRowOps:
    def test_set_and_test(self):
        b = CandidateBitmap(2, 70)
        b.set_row_bool(0, np.arange(70) % 3 == 0)
        assert b.test(0, 0) and b.test(0, 69)
        assert not b.test(0, 1)

    def test_and_row_is_monotone(self, rng):
        b = CandidateBitmap(1, 50)
        first = rng.random(50) < 0.6
        second = rng.random(50) < 0.6
        b.set_row_bool(0, first)
        b.and_row_bool(0, second)
        np.testing.assert_array_equal(b.row_bool(0), first & second)

    def test_shape_validation(self):
        b = CandidateBitmap(1, 10)
        with pytest.raises(ValueError):
            b.set_row_bool(0, np.zeros(11, dtype=bool))
        with pytest.raises(ValueError):
            b.and_row_bool(0, np.zeros(9, dtype=bool))

    def test_test_bounds(self):
        b = CandidateBitmap(1, 10)
        with pytest.raises(IndexError):
            b.test(0, 10)
        with pytest.raises(IndexError):
            b.test(1, 0)


class TestQueries:
    def test_candidates_of_window(self):
        b = CandidateBitmap(1, 200)
        b.set_row_bool(0, np.isin(np.arange(200), [5, 64, 150]))
        np.testing.assert_array_equal(b.candidates_of(0), [5, 64, 150])
        np.testing.assert_array_equal(b.candidates_of(0, 60, 151), [64, 150])
        assert b.candidates_of(0, 151).size == 0

    def test_row_counts(self):
        b = CandidateBitmap(2, 100)
        b.set_row_bool(0, np.arange(100) < 7)
        np.testing.assert_array_equal(b.row_counts(), [7, 0])

    def test_counts_per_segment(self):
        b = CandidateBitmap(2, 10)
        b.set_row_bool(0, np.array([1, 1, 0, 0, 0, 1, 0, 0, 0, 1], dtype=bool))
        b.set_row_bool(1, np.zeros(10, dtype=bool))
        seg = b.counts_per_segment(np.array([0, 4, 10]))
        np.testing.assert_array_equal(seg, [[2, 2], [0, 0]])

    def test_nbytes_matches_paper_formula(self):
        # paper 5.1.3: candidate size = |V_Q| x |V_D| / 8 bytes
        b = CandidateBitmap(100, 6400)
        assert b.nbytes() == 100 * 6400 // 8

    def test_repr(self):
        assert "CandidateBitmap" in repr(CandidateBitmap(1, 1))
