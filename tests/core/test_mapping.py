"""Unit tests for the GMCR mapping phase."""

import numpy as np
import pytest

from repro.core.candidates import CandidateBitmap
from repro.core.csrgo import CSRGO
from repro.core.filtering import initialize_candidates
from repro.core.mapping import (
    build_gmcr,
    query_node_has_candidate_per_graph,
    viable_query_matrix,
)
from repro.graph.generators import path_graph


@pytest.fixture
def setup():
    queries = [path_graph([1, 2]), path_graph([3, 3])]
    data = [path_graph([1, 2, 1]), path_graph([3, 3]), path_graph([1, 1])]
    q = CSRGO.from_graphs(queries)
    d = CSRGO.from_graphs(data)
    bitmap = initialize_candidates(q, d)
    return q, d, bitmap


class TestViability:
    def test_node_has_candidate_per_graph(self, setup):
        q, d, bitmap = setup
        m = query_node_has_candidate_per_graph(bitmap, d.graph_offsets)
        assert m.shape == (4, 3)
        # query node 0 (label 1) has candidates in graphs 0 and 2
        np.testing.assert_array_equal(m[0], [True, False, True])
        # query node 1 (label 2) only in graph 0
        np.testing.assert_array_equal(m[1], [True, False, False])

    def test_chunked_matches_unchunked(self, setup):
        q, d, bitmap = setup
        a = query_node_has_candidate_per_graph(bitmap, d.graph_offsets, chunk_rows=1)
        b = query_node_has_candidate_per_graph(bitmap, d.graph_offsets, chunk_rows=64)
        np.testing.assert_array_equal(a, b)

    def test_viable_query_matrix(self, setup):
        q, d, bitmap = setup
        v = viable_query_matrix(bitmap, q, d)
        # query 0 (C-O) viable only in data graph 0; query 1 (3-3) only in 1.
        np.testing.assert_array_equal(v, [[True, False, False], [False, True, False]])


class TestGMCR:
    def test_structure(self, setup):
        q, d, bitmap = setup
        gmcr = build_gmcr(bitmap, q, d)
        np.testing.assert_array_equal(gmcr.data_graph_offsets, [0, 1, 2, 2])
        np.testing.assert_array_equal(gmcr.query_graph_indices, [0, 1])
        assert not gmcr.matched.any()
        assert gmcr.n_pairs == 2
        assert gmcr.n_data_graphs == 3

    def test_queries_of(self, setup):
        q, d, bitmap = setup
        gmcr = build_gmcr(bitmap, q, d)
        np.testing.assert_array_equal(gmcr.queries_of(0), [0])
        assert gmcr.queries_of(2).size == 0

    def test_matched_pairs(self, setup):
        q, d, bitmap = setup
        gmcr = build_gmcr(bitmap, q, d)
        gmcr.matched[1] = True
        assert gmcr.matched_pairs() == [(1, 1)]

    def test_nbytes(self, setup):
        q, d, bitmap = setup
        assert build_gmcr(bitmap, q, d).nbytes() > 0

    def test_empty_bitmap_maps_nothing(self, setup):
        q, d, _ = setup
        empty = CandidateBitmap(q.n_nodes, d.n_nodes)
        gmcr = build_gmcr(empty, q, d)
        assert gmcr.n_pairs == 0
