"""Unit tests for the edge-aware signature extension."""

import numpy as np
import pytest

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.edge_signatures import edge_pair_histograms
from repro.core.engine import SigmoEngine, find_all
from repro.graph.generators import path_graph, star_graph
from tests.conftest import random_case


class TestHistograms:
    def test_counts_pairs(self):
        # node 0: neighbors (label 1, bond 2) and (label 2, bond 1)
        g = CSRGO.from_graphs([star_graph(0, [1, 2])])
        # star_graph uses default edge labels (0); rebuild with orders
        from repro.graph.labeled_graph import LabeledGraph

        g = CSRGO.from_graphs([LabeledGraph([0, 1, 2], [(0, 1), (0, 2)], [2, 1])])
        hist = edge_pair_histograms(g, n_labels=3, n_edge_labels=3)
        assert hist[0, 2 * 3 + 1] == 1  # bond 2, label 1
        assert hist[0, 1 * 3 + 2] == 1  # bond 1, label 2
        assert hist[0].sum() == 2

    def test_empty_graph(self):
        from repro.graph.labeled_graph import LabeledGraph

        g = CSRGO.from_graphs([LabeledGraph([0, 1])])
        hist = edge_pair_histograms(g, 2, 2)
        assert hist.sum() == 0

    def test_wildcards_ignored(self):
        from repro.chem.smarts import ANY_BOND_LABEL, WILDCARD_ATOM_LABEL
        from repro.graph.labeled_graph import LabeledGraph

        g = CSRGO.from_graphs(
            [LabeledGraph([0, WILDCARD_ATOM_LABEL, 1], [(0, 1), (0, 2)],
                          [1, ANY_BOND_LABEL])]
        )
        hist = edge_pair_histograms(
            g, n_labels=2, n_edge_labels=2,
            ignore_label=WILDCARD_ATOM_LABEL,
            ignore_edge_label=ANY_BOND_LABEL,
        )
        assert hist[0].sum() == 0  # both incident pairs involve a wildcard


class TestEngineIntegration:
    def test_results_invariant(self, rng):
        for _ in range(12):
            q, d, _ = random_case(rng)
            base = find_all([q], [d]).total_matches
            with_edges = find_all(
                [q], [d], SigmoConfig(edge_signatures=True)
            ).total_matches
            assert base == with_edges

    def test_prunes_bond_order_mismatch_in_filter(self):
        # query needs a double bond to a label-1 node; data node 0 has only
        # a single bond to its label-1 neighbor.  Plain label signatures
        # cannot distinguish them; the edge-aware pass can.
        q = path_graph([0, 1], [2])
        d = path_graph([0, 1], [1])
        plain = SigmoEngine([q], [d], SigmoConfig(refinement_iterations=2))
        aware = SigmoEngine(
            [q], [d], SigmoConfig(refinement_iterations=2, edge_signatures=True)
        )
        r_plain = plain.run()
        r_aware = aware.run()
        assert r_plain.total_matches == r_aware.total_matches == 0
        # the plain filter keeps the spurious candidate; edge-aware kills it
        assert r_plain.filter_result.total_candidates > 0
        assert r_aware.filter_result.total_candidates == 0

    def test_never_prunes_more_matches(self, small_dataset):
        queries = small_dataset.queries[:8]
        data = small_dataset.data[:20]
        base = SigmoEngine(queries, data).run()
        aware = SigmoEngine(
            queries, data, SigmoConfig(edge_signatures=True)
        ).run()
        assert aware.total_matches == base.total_matches
        assert (
            aware.filter_result.total_candidates
            <= base.filter_result.total_candidates
        )

    def test_wildcard_compatibility(self):
        from repro.chem.smarts import pattern_from_smarts, wildcard_config
        from repro.chem.smiles import mol_from_smiles

        mols = [mol_from_smiles("CC(=O)Oc1ccccc1").graph()]
        pattern = pattern_from_smarts("C~*")
        base = SigmoEngine([pattern], mols, wildcard_config()).run().total_matches
        aware = SigmoEngine(
            [pattern], mols, wildcard_config(edge_signatures=True)
        ).run().total_matches
        assert base == aware
