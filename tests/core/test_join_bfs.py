"""Unit tests for the BFS join variant (paper section 4.6's rejected design)."""

import numpy as np
import pytest

from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.filtering import IterativeFilter
from repro.core.join import run_join
from repro.core.join_bfs import run_bfs_join
from repro.core.mapping import build_gmcr
from repro.graph.generators import path_graph, ring_graph
from tests.conftest import random_case


def run_both(queries, data, iterations=3):
    config = SigmoConfig(refinement_iterations=iterations)
    q = CSRGO.from_graphs(queries)
    d = CSRGO.from_graphs(data)
    fr = IterativeFilter(q, d, config).run()
    gmcr_dfs = build_gmcr(fr.bitmap, q, d)
    gmcr_bfs = build_gmcr(fr.bitmap, q, d)
    dfs = run_join(q, d, fr.bitmap, gmcr_dfs, config)
    bfs = run_bfs_join(q, d, fr.bitmap, gmcr_bfs, config)
    return dfs, bfs


class TestEquivalence:
    def test_simple_counts_agree(self):
        dfs, bfs = run_both(
            [path_graph([1, 2])], [ring_graph(6, [1, 1, 2, 1, 1, 2])]
        )
        assert dfs.total_matches == bfs.total_matches == 4

    def test_per_pair_counts_agree(self):
        queries = [path_graph([1, 2]), ring_graph(3, [1, 1, 1])]
        data = [ring_graph(6, [1, 1, 2, 1, 1, 2]), ring_graph(3, [1, 1, 1])]
        dfs, bfs = run_both(queries, data)
        np.testing.assert_array_equal(dfs.pair_matches, bfs.pair_matches)

    def test_random_cases_agree(self, rng):
        for _ in range(15):
            q, d, _ = random_case(rng)
            dfs, bfs = run_both([q], [d], iterations=2)
            assert dfs.total_matches == bfs.total_matches


class TestMemoryBehaviour:
    def test_bfs_materializes_partial_tables(self):
        # unlabeled-ish ring: many partial matches per level
        dfs, bfs = run_both([path_graph([1, 1, 1, 1])], [ring_graph(12, [1] * 12)])
        assert bfs.peak_partial_matches > dfs.total_matches
        assert bfs.peak_partial_bytes >= bfs.peak_partial_matches * 8

    def test_peak_grows_with_ambiguity(self):
        # more identical labels -> larger tables (the exponential growth
        # the paper cites for rejecting BFS)
        _, small = run_both([path_graph([1, 1, 1])], [ring_graph(6, [1] * 6)])
        _, large = run_both([path_graph([1, 1, 1])], [ring_graph(14, [1] * 14)])
        assert large.peak_partial_matches > small.peak_partial_matches
