"""Unit tests for signatures: packing and batched BFS computation."""

import numpy as np
import pytest

from repro.core.csrgo import CSRGO
from repro.core.signatures import (
    SignaturePacking,
    SignatureState,
    reference_signatures,
)
from repro.graph.generators import path_graph, random_connected_graph, ring_graph


class TestPackingConstruction:
    def test_uniform(self):
        p = SignaturePacking.uniform(8)
        assert p.n_labels == 8
        assert p.bits.sum() == 64

    def test_over_budget_raises(self):
        with pytest.raises(ValueError, match="64-bit"):
            SignaturePacking(np.array([33, 33]))

    def test_zero_bits_raises(self):
        with pytest.raises(ValueError, match="at least 1 bit"):
            SignaturePacking(np.array([0, 4]))

    def test_from_frequencies_skew(self):
        freqs = np.array([1000.0, 1000.0, 10.0, 1.0])
        p = SignaturePacking.from_frequencies(freqs)
        # frequent labels get at least as many bits as rare ones
        assert p.bits[0] >= p.bits[3]
        assert p.bits.sum() <= 64

    def test_from_frequencies_budget_respected(self):
        p = SignaturePacking.from_frequencies(np.ones(20), total_bits=64)
        assert p.bits.sum() <= 64
        assert p.n_labels == 20

    def test_from_frequencies_rejects_negative(self):
        with pytest.raises(ValueError):
            SignaturePacking.from_frequencies(np.array([-1.0]))

    def test_too_many_labels(self):
        with pytest.raises(ValueError):
            SignaturePacking.from_frequencies(np.ones(100), total_bits=64)

    def test_shifts_are_cumulative(self):
        p = SignaturePacking(np.array([4, 8, 2]))
        np.testing.assert_array_equal(p.shifts, [0, 4, 12])


class TestPackUnpack:
    def test_roundtrip_under_capacity(self):
        p = SignaturePacking(np.array([4, 4, 8]))
        counts = np.array([[3, 15, 200], [0, 0, 0]])
        np.testing.assert_array_equal(p.unpack(p.pack(counts)), counts)

    def test_saturation(self):
        p = SignaturePacking(np.array([2, 4]))
        counts = np.array([[100, 3]])
        sat = p.unpack(p.pack(counts))
        np.testing.assert_array_equal(sat, [[3, 3]])  # 2-bit field caps at 3

    def test_saturate_shape_check(self):
        p = SignaturePacking(np.array([4, 4]))
        with pytest.raises(ValueError):
            p.saturate(np.zeros((3, 5)))

    def test_pack_is_uint64(self):
        p = SignaturePacking.uniform(4)
        assert p.pack(np.zeros((2, 4), dtype=int)).dtype == np.uint64


class TestDomination:
    def test_dominates_basic(self):
        p = SignaturePacking(np.array([4, 4]))
        q = p.pack(np.array([[1, 2]]))[0]
        d_yes = p.pack(np.array([[1, 3]]))[0]
        d_no = p.pack(np.array([[0, 5]]))[0]
        assert p.dominates(d_yes, q)
        assert not p.dominates(d_no, q)

    def test_saturation_keeps_filter_sound(self):
        # Query count saturates to the cap; any data count >= cap passes.
        p = SignaturePacking(np.array([2, 4]))
        q = p.pack(np.array([[7, 0]]))[0]  # saturates to 3
        d = p.pack(np.array([[5, 0]]))[0]  # saturates to 3
        assert p.dominates(d, q)

    def test_dominates_broadcasts(self):
        p = SignaturePacking(np.array([4, 4]))
        q = p.pack(np.array([[1, 1]]))[0]
        data = p.pack(np.array([[1, 1], [0, 9], [2, 2]]))
        np.testing.assert_array_equal(p.dominates(data, q), [True, False, True])


class TestSignatureState:
    def test_matches_reference_on_random_graphs(self, rng):
        for _ in range(5):
            g = random_connected_graph(int(rng.integers(4, 15)), 4, 3, rng)
            c = CSRGO.from_graphs([g])
            state = SignatureState(c, 3)
            for radius in range(1, 4):
                state.run_to(radius)
                np.testing.assert_array_equal(
                    state.counts, reference_signatures(c, radius, 3)
                )

    def test_batch_is_per_graph(self):
        c = CSRGO.from_graphs([path_graph([0, 1]), path_graph([1, 0])])
        state = SignatureState(c, 2)
        state.run_to(3)
        # node 0 of graph 0 sees only its own graph's node
        np.testing.assert_array_equal(state.counts[0], [0, 1])
        np.testing.assert_array_equal(state.counts[2], [1, 0])

    def test_radius_zero_counts_empty(self):
        c = CSRGO.from_graphs([ring_graph(4, [0, 1, 0, 1])])
        state = SignatureState(c, 2)
        assert state.counts.sum() == 0 and state.radius == 0

    def test_convergence_detection(self):
        c = CSRGO.from_graphs([path_graph([0, 1, 0])])
        state = SignatureState(c, 2)
        state.run_to(10)
        assert state.converged
        before = state.counts.copy()
        state.step()
        np.testing.assert_array_equal(state.counts, before)

    def test_cannot_rewind(self):
        c = CSRGO.from_graphs([path_graph([0, 1])])
        state = SignatureState(c, 2)
        state.run_to(2)
        with pytest.raises(ValueError):
            state.run_to(1)

    def test_label_out_of_range_rejected(self):
        c = CSRGO.from_graphs([path_graph([0, 5])])
        with pytest.raises(ValueError):
            SignatureState(c, 2)

    def test_reachable_counts(self):
        c = CSRGO.from_graphs([path_graph([0, 0, 0])])
        state = SignatureState(c, 1)
        state.run_to(1)
        np.testing.assert_array_equal(state.reachable_counts(), [1, 2, 1])

    def test_ring_sizes_tracked(self):
        c = CSRGO.from_graphs([path_graph([0, 0, 0, 0])])
        state = SignatureState(c, 1)
        state.step()
        np.testing.assert_array_equal(state.last_ring_sizes, [1, 2, 2, 1])
