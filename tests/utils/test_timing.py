"""Unit tests for the stage timer."""

import pytest

from repro.utils.timing import StageTimer


class TestStageTimer:
    def test_stage_accumulates(self):
        t = StageTimer()
        with t.stage("a"):
            pass
        with t.stage("a"):
            pass
        assert t.counts["a"] == 2
        assert t.totals["a"] >= 0

    def test_manual_add(self):
        t = StageTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.totals["x"] == pytest.approx(2.0)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1)

    def test_total_sums_stages(self):
        t = StageTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total == pytest.approx(3.0)

    def test_as_dict_is_copy(self):
        t = StageTimer()
        t.add("a", 1.0)
        d = t.as_dict()
        d["a"] = 99
        assert t.totals["a"] == pytest.approx(1.0)

    def test_exception_still_recorded(self):
        t = StageTimer()
        with pytest.raises(RuntimeError):
            with t.stage("boom"):
                raise RuntimeError()
        assert "boom" in t.totals

    def test_repr(self):
        t = StageTimer()
        t.add("a", 0.25)
        assert "a=" in repr(t)
