"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.utils import validation as v


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert v.check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert v.check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            v.check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            v.check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            v.check_positive_int(3.0, "x")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert v.check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            v.check_nonnegative_int(-1, "x")


class TestCheckArray1d:
    def test_passthrough(self):
        out = v.check_array_1d([1, 2, 3], "x", dtype=np.int32)
        assert out.dtype == np.int32

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            v.check_array_1d(np.zeros((2, 2)), "x")


class TestCheckProbability:
    def test_bounds(self):
        assert v.check_probability(0.0, "p") == 0.0
        assert v.check_probability(1.0, "p") == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            v.check_probability(1.5, "p")
