"""Unit tests for the bitmap primitives."""

import numpy as np
import pytest

from repro.utils import bitops


class TestWordDtype:
    def test_valid_widths(self):
        assert bitops.word_dtype(32) == np.uint32
        assert bitops.word_dtype(64) == np.uint64

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="word_bits"):
            bitops.word_dtype(12)


class TestBitmapWords:
    def test_exact_multiple(self):
        assert bitops.bitmap_words(128, 64) == 2

    def test_round_up(self):
        assert bitops.bitmap_words(65, 64) == 2

    def test_zero_bits(self):
        assert bitops.bitmap_words(0, 64) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitops.bitmap_words(-1)


class TestPackUnpack:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_roundtrip(self, word_bits):
        rng = np.random.default_rng(0)
        rows = rng.random((5, 77)) < 0.4
        packed = bitops.pack_bool_rows(rows, word_bits)
        assert packed.dtype == bitops.word_dtype(word_bits)
        back = bitops.unpack_bitmap_rows(packed, 77, word_bits)
        np.testing.assert_array_equal(back, rows)

    def test_lsb_first_layout(self):
        rows = np.zeros((1, 64), dtype=bool)
        rows[0, 0] = True
        packed = bitops.pack_bool_rows(rows, 64)
        assert packed[0, 0] == 1  # bit 0 is the LSB

    def test_bit_index_matches_column(self):
        rows = np.zeros((1, 70), dtype=bool)
        rows[0, 65] = True
        packed = bitops.pack_bool_rows(rows, 64)
        assert packed[0, 0] == 0
        assert packed[0, 1] == 2  # bit 1 of word 1 == column 65

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            bitops.pack_bool_rows(np.zeros(8, dtype=bool))

    def test_empty_rows(self):
        packed = bitops.pack_bool_rows(np.zeros((0, 10), dtype=bool))
        assert packed.shape == (0, 1)


class TestPopcount:
    def test_scalar_words(self):
        assert bitops.popcount(np.uint64(0b1011)) == 3

    def test_row_popcount(self):
        rows = np.array([[True] * 10 + [False] * 5, [False] * 15])
        packed = bitops.pack_bool_rows(rows)
        np.testing.assert_array_equal(bitops.row_popcount(packed), [10, 0])

    def test_row_popcount_requires_2d(self):
        with pytest.raises(ValueError):
            bitops.row_popcount(np.zeros(3, dtype=np.uint64))


class TestBitPositions:
    def test_positions_sorted(self):
        rows = np.zeros((1, 130), dtype=bool)
        idx = [0, 63, 64, 129]
        rows[0, idx] = True
        packed = bitops.pack_bool_rows(rows)
        np.testing.assert_array_equal(bitops.bit_positions(packed[0]), idx)

    def test_empty_row(self):
        packed = np.zeros(2, dtype=np.uint64)
        assert bitops.bit_positions(packed).size == 0


class TestSetTestBit:
    def test_set_then_test(self):
        words = np.zeros((2, 2), dtype=np.uint64)
        bitops.set_bits(words, 1, np.array([0, 65, 127]))
        assert bitops.test_bit(words, 1, 65)
        assert not bitops.test_bit(words, 1, 64)
        assert not bitops.test_bit(words, 0, 0)

    def test_set_empty_positions_noop(self):
        words = np.zeros((1, 1), dtype=np.uint64)
        bitops.set_bits(words, 0, np.array([], dtype=np.int64))
        assert words[0, 0] == 0
