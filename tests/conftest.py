"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.graph.generators import (
    path_graph,
    random_connected_graph,
    random_subgraph_pattern,
    ring_graph,
)


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny calibrated benchmark dataset (session-cached)."""
    return build_benchmark(scale=1.0, n_queries=24, n_data_graphs=60, seed=7)


@pytest.fixture
def co_path():
    """Two-node query: C(1)-O(2) path."""
    return path_graph([1, 2])


@pytest.fixture
def labeled_ring():
    """Six-ring with alternating labels."""
    return ring_graph(6, [1, 1, 2, 1, 1, 2])


def random_case(rng, max_data_nodes=20, max_query_nodes=6, n_edge_labels=2):
    """One random (query, data) pair where the query is a planted subgraph."""
    d = random_connected_graph(
        int(rng.integers(4, max_data_nodes)),
        int(rng.integers(0, 5)),
        int(rng.integers(1, 4)),
        rng,
        n_edge_labels=n_edge_labels,
    )
    q, witness = random_subgraph_pattern(
        d, int(rng.integers(2, min(max_query_nodes, d.n_nodes) + 1)), rng
    )
    return q, d, witness
