"""API-quality gates: docstring coverage and doctest execution.

The deliverable requires doc comments on every public item; these tests
make that a regression-checked property rather than a one-time review.
"""

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.__")
]


def public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield attr_name, obj


class TestDocstrings:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_members_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for m_name, member in inspect.getmembers(obj):
                    if m_name.startswith("_") or not (
                        inspect.isfunction(member) or isinstance(member, property)
                    ):
                        continue
                    target = member.fget if isinstance(member, property) else member
                    if getattr(target, "__qualname__", "").split(".")[0] != obj.__name__:
                        continue
                    if not inspect.getdoc(target):
                        undocumented.append(f"{name}.{m_name}")
        assert not undocumented, f"{module_name}: missing docstrings: {undocumented}"


class TestDoctests:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
