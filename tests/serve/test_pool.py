"""The warm session pool: registration, routing, rebuilds, eviction."""

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.serve.breaker import OPEN
from repro.serve.deadline import ManualClock
from repro.serve.pool import SessionPool

pytestmark = pytest.mark.serve

N_QUERIES = 4
SEED = 11


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=12, seed=SEED
    )


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def pool(clock):
    return SessionPool(
        clock,
        config=SigmoConfig(refinement_iterations=2),
        replicas=2,
        breaker_threshold=2,
        breaker_cooldown_s=1.0,
    )


class TestRegistration:
    def test_register_returns_content_keyed_fingerprint(self, pool, dataset):
        key = pool.register(dataset.queries)
        again = pool.register(list(dataset.queries))  # same contents
        assert key == again
        assert len(pool) == 1

    def test_distinct_query_sets_get_distinct_entries(self, pool, dataset):
        a = pool.register(dataset.queries[:2])
        b = pool.register(dataset.queries[2:])
        assert a != b
        assert len(pool) == 2

    def test_entry_has_replica_lanes(self, pool, dataset):
        key = pool.register(dataset.queries)
        entry = pool.entry(key)
        assert len(entry.lanes) == 2
        assert entry.lanes[0].lane_id != entry.lanes[1].lane_id

    def test_lru_eviction_past_max_query_sets(self, clock, dataset):
        pool = SessionPool(clock, replicas=1, max_query_sets=2)
        first = pool.register(dataset.queries[:1])
        pool.register(dataset.queries[1:2])
        pool.register(dataset.queries[2:3])
        assert len(pool) == 2
        assert pool.entry(first) is None
        assert pool.evictions == 1

    def test_empty_query_set_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.register([])


class TestRouting:
    def test_acquire_marks_busy_and_round_robins(self, pool, dataset):
        key = pool.register(dataset.queries)
        a = pool.acquire(key)
        b = pool.acquire(key)
        assert a is not None and b is not None
        assert a is not b
        assert a.busy and b.busy
        assert pool.acquire(key) is None  # both lanes in flight

    def test_release_frees_the_lane(self, pool, dataset):
        key = pool.register(dataset.queries)
        lane = pool.acquire(key)
        pool.release(lane, ok=True)
        assert not lane.busy
        assert pool.acquire(key) is not None

    def test_acquire_unknown_key_is_none(self, pool):
        assert pool.acquire("no-such-key") is None

    def test_acquire_skips_open_breakers(self, pool, dataset):
        key = pool.register(dataset.queries)
        entry = pool.entry(key)
        for _ in range(2):
            entry.lanes[0].breaker.record_failure()
        picked = {pool.acquire(key).index, }
        # only lane 1 is available; a second acquire finds nothing
        assert picked == {1}
        assert pool.acquire(key) is None

    def test_any_healthy_possible_distinguishes_busy_from_broken(
        self, pool, dataset
    ):
        key = pool.register(dataset.queries)
        entry = pool.entry(key)
        lane = pool.acquire(key)
        pool.acquire(key)
        assert entry.any_healthy_possible()  # all busy, none broken
        pool.release(lane, ok=True)
        for other in entry.lanes:
            other.busy = False
            for _ in range(2):
                other.breaker.record_failure()
        assert not entry.any_healthy_possible()  # every breaker open


class TestRebuilds:
    def test_breaker_trip_rebuilds_the_session(self, pool, dataset):
        key = pool.register(dataset.queries)
        lane = pool.acquire(key)
        old_session = lane.session
        pool.release(lane, ok=False)
        assert lane.session is old_session  # one failure: no trip yet
        lane = pool.acquire(key)
        assert lane.index == 1  # round-robin moved on
        pool.release(lane, ok=True)
        failing = pool.entry(key).lanes[0]
        failing.busy = True
        pool.release(failing, ok=False)  # second consecutive failure: trip
        assert failing.breaker.state == OPEN
        assert failing.session is not old_session
        assert failing.stats.rebuilds == 1
        assert pool.rebuilds == 1

    def test_rebuild_keeps_breaker_state(self, pool, dataset):
        key = pool.register(dataset.queries)
        lane = pool.entry(key).lanes[0]
        for _ in range(2):
            lane.breaker.record_failure()
        pool.rebuild_lane(lane)
        assert lane.breaker.state == OPEN  # fresh session still on probation

    def test_rebuilt_session_shares_the_compiled_query(self, pool, dataset):
        key = pool.register(dataset.queries)
        entry = pool.entry(key)
        lane = entry.lanes[0]
        pool.rebuild_lane(lane)
        assert lane.session.query is entry.query


class TestSnapshot:
    def test_snapshot_shape(self, pool, dataset):
        key = pool.register(dataset.queries)
        snap = pool.snapshot()
        assert snap["query_sets"] == 1
        lanes = snap["lanes"][key]
        assert len(lanes) == 2
        assert {"lane", "busy", "slowdown", "breaker", "dispatches"} <= set(
            lanes[0]
        )
