"""Admission control: bounded queueing and deadline-aware shedding."""

import pytest

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.deadline import CostModel, Deadline, ManualClock
from repro.serve.request import REJECT_OVERLOADED

pytestmark = pytest.mark.serve


@pytest.fixture
def clock():
    return ManualClock()


def controller(clock, **kw):
    kw.setdefault(
        "cost_model", CostModel(seconds_per_batch=0.1)
    )
    return AdmissionController(clock, **kw)


class TestQueueBound:
    def test_admits_below_the_bound(self, clock):
        ctl = controller(clock, max_queued=4)
        decision = ctl.decide(3, Deadline.after(clock, None))
        assert decision.admitted
        assert ctl.stats.admitted == 1

    def test_sheds_at_the_bound(self, clock):
        ctl = controller(clock, max_queued=4)
        decision = ctl.decide(4, Deadline.after(clock, None))
        assert not decision.admitted
        assert decision.rejection.kind == REJECT_OVERLOADED
        assert "queue full" in decision.rejection.detail
        assert ctl.stats.shed_queue_full == 1

    def test_shed_carries_a_retry_hint(self, clock):
        ctl = controller(clock, max_queued=2, requests_per_batch=1.0)
        decision = ctl.decide(10, Deadline.after(clock, None))
        # 10 queued batches at 0.1 s/batch
        assert decision.rejection.retry_after_s == pytest.approx(1.0)


class TestDeadlineShedding:
    def test_sheds_when_queue_delay_exceeds_deadline(self, clock):
        ctl = controller(clock, requests_per_batch=1.0)
        # 5 batches ahead -> 0.5 s estimated; only 0.2 s of budget left
        decision = ctl.decide(5, Deadline.after(clock, 0.2))
        assert not decision.admitted
        assert decision.rejection.kind == REJECT_OVERLOADED
        assert ctl.stats.shed_deadline == 1

    def test_admits_when_deadline_has_room(self, clock):
        ctl = controller(clock, requests_per_batch=1.0)
        decision = ctl.decide(5, Deadline.after(clock, 2.0))
        assert decision.admitted

    def test_unbounded_deadline_never_deadline_sheds(self, clock):
        ctl = controller(clock, requests_per_batch=1.0)
        decision = ctl.decide(100, Deadline.after(clock, None))
        assert decision.admitted

    def test_coalescing_divides_queue_depth(self, clock):
        ctl = controller(clock, requests_per_batch=4.0)
        # 8 requests = 2 batches = 0.2 s estimate, inside a 0.3 s budget
        decision = ctl.decide(8, Deadline.after(clock, 0.3))
        assert decision.admitted
        assert decision.estimated_delay_s == pytest.approx(0.2)


class TestStatsAndValidation:
    def test_stats_accumulate(self, clock):
        ctl = controller(clock, max_queued=5, requests_per_batch=1.0)
        ctl.decide(0, Deadline.after(clock, None))
        ctl.decide(5, Deadline.after(clock, None))
        ctl.decide(1, Deadline.after(clock, 1e-9))  # 0.1 s est >= ~0 budget
        assert ctl.stats.admitted == 1
        assert ctl.stats.shed == 2
        assert ctl.stats.as_dict() == {
            "admitted": 1,
            "shed_queue_full": 1,
            "shed_deadline": 1,
        }

    def test_bounds_validated(self, clock):
        with pytest.raises(ValueError):
            controller(clock, max_queued=0)
        with pytest.raises(ValueError):
            controller(clock, requests_per_batch=0.5)

    def test_stats_default_is_fresh_per_controller(self, clock):
        a = controller(clock)
        b = controller(clock)
        a.stats.admitted = 5
        assert b.stats.admitted == 0
        assert isinstance(b.stats, AdmissionStats)
