"""The chaos harness: every scenario's contract holds, deterministically."""

import asyncio

import pytest

from repro.serve.chaos import SCENARIOS, ChaosReport, run_chaos, run_chaos_sync

pytestmark = pytest.mark.serve

EXPECTED_SCENARIOS = {
    "crash",
    "session-crash-breaker",
    "straggler",
    "oom",
    "poison",
    "overload",
}


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_chaos_sync(["not-a-scenario"])


@pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
def test_scenario_contract_holds(name):
    report = run_chaos_sync([name])[0]
    assert isinstance(report, ChaosReport)
    assert report.ok, report.violations
    assert report.responses  # the scenario actually exercised traffic


class TestScenarioShapes:
    def test_crash_scenario_records_retries(self):
        report = run_chaos_sync(["crash"])[0]
        assert report.notes["retried"] >= 1
        assert report.count("rejected") == 0

    def test_breaker_scenario_rebuilds_lanes(self):
        report = run_chaos_sync(["session-crash-breaker"])[0]
        assert report.notes["rebuilds"] >= 1

    def test_straggler_scenario_degrades_to_partials(self):
        report = run_chaos_sync(["straggler"])[0]
        assert report.notes["max_lane_slowdown"] > 1.0
        assert report.count("partial") >= 1

    def test_oom_scenario_mixes_recovery_and_typed_failure(self):
        report = run_chaos_sync(["oom"])[0]
        assert report.notes["rejected"] >= 1
        assert report.count("complete") >= 1

    def test_poison_scenario_isolates_the_culprit(self):
        report = run_chaos_sync(["poison"])[0]
        assert report.count("rejected") == 1
        assert report.count("complete") == len(report.responses) - 1

    def test_overload_scenario_sheds_typed(self):
        report = run_chaos_sync(["overload"])[0]
        assert report.notes["shed"] >= 1


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        async def run_twice():
            a = await run_chaos(["crash", "poison"], seed=5)
            b = await run_chaos(["crash", "poison"], seed=5)
            return a, b

        a, b = asyncio.run(run_twice())
        for ra, rb in zip(a, b):
            assert ra.as_dict() == rb.as_dict()

    def test_report_serializes(self):
        report = run_chaos_sync(["overload"])[0]
        payload = report.as_dict()
        assert payload["scenario"] == "overload"
        assert payload["ok"] is True
        assert set(payload) >= {
            "responses",
            "complete",
            "partial",
            "rejected",
            "violations",
        }
