"""The chaos harness: every scenario's contract holds, deterministically."""

import asyncio

import pytest

from repro.obs.recorder import events_for_request, validate_bundle
from repro.serve.chaos import SCENARIOS, ChaosReport, run_chaos, run_chaos_sync
from repro.serve.monitor import TRIGGER_BREAKER, TRIGGER_MANUAL, TRIGGER_SLO_PAGE

pytestmark = pytest.mark.serve

EXPECTED_SCENARIOS = {
    "crash",
    "session-crash-breaker",
    "straggler",
    "oom",
    "poison",
    "overload",
}


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_chaos_sync(["not-a-scenario"])


@pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
def test_scenario_contract_holds(name):
    report = run_chaos_sync([name])[0]
    assert isinstance(report, ChaosReport)
    assert report.ok, report.violations
    assert report.responses  # the scenario actually exercised traffic


class TestScenarioShapes:
    def test_crash_scenario_records_retries(self):
        report = run_chaos_sync(["crash"])[0]
        assert report.notes["retried"] >= 1
        assert report.count("rejected") == 0

    def test_breaker_scenario_rebuilds_lanes(self):
        report = run_chaos_sync(["session-crash-breaker"])[0]
        assert report.notes["rebuilds"] >= 1

    def test_straggler_scenario_degrades_to_partials(self):
        report = run_chaos_sync(["straggler"])[0]
        assert report.notes["max_lane_slowdown"] > 1.0
        assert report.count("partial") >= 1

    def test_oom_scenario_mixes_recovery_and_typed_failure(self):
        report = run_chaos_sync(["oom"])[0]
        assert report.notes["rejected"] >= 1
        assert report.count("complete") >= 1

    def test_poison_scenario_isolates_the_culprit(self):
        report = run_chaos_sync(["poison"])[0]
        assert report.count("rejected") == 1
        assert report.count("complete") == len(report.responses) - 1

    def test_overload_scenario_sheds_typed(self):
        report = run_chaos_sync(["overload"])[0]
        assert report.notes["shed"] >= 1


@pytest.mark.slo
class TestPostMortemBundles:
    """Every scenario leaves a bundle behind that explains its fault."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_every_scenario_dumps_a_valid_bundle(self, name):
        report = run_chaos_sync([name])[0]
        assert report.bundles, "a scenario run must end with a post-mortem"
        for bundle in report.bundles:
            assert validate_bundle(bundle) == []
        assert report.bundles[-1]["trigger"] == TRIGGER_MANUAL
        assert report.bundles[-1]["context"]["scenario"] == name
        assert report.as_dict()["bundles"] == [
            b["trigger"] for b in report.bundles
        ]

    def test_breaker_bundle_names_the_tripped_lane(self):
        report = run_chaos_sync(["session-crash-breaker"])[0]
        triggers = [b["trigger"] for b in report.bundles]
        assert triggers[0] == TRIGGER_BREAKER
        assert TRIGGER_SLO_PAGE in triggers
        trip = report.bundles[0]
        lane = trip["context"]["lane"]
        opened = [
            e for e in trip["events"]
            if e["kind"] == "breaker" and e.get("new") == "open"
        ]
        assert any(e["lane"] == lane for e in opened)
        # The crash storm that tripped it is in the same ring: retried
        # requests with the injected crash recorded as their error.
        retries = [
            e for e in trip["events"]
            if e["kind"] == "request" and e.get("phase") == "retry"
        ]
        assert retries and all("crash" in e["error"] for e in retries)

    def test_straggler_bundle_reconstructs_a_resume_chain(self):
        report = run_chaos_sync(["straggler"])[0]
        bundle = report.bundles[-1]
        chains = {r.chain for r in report.responses if r.chain}
        assert chains
        origin = sorted(chains)[0]
        events = events_for_request(bundle["events"], origin)
        assert events, "the bundle must tell the first request's story"
        hops = {
            e["request_id"]
            for e in events
            if e.get("kind") == "request" and e.get("request_id")
        }
        resumed = {r.request_id for r in report.responses if r.chain == origin}
        assert resumed <= hops, "every resume hop must appear in the bundle"
        spans = [e for e in events if e.get("kind") == "span"]
        assert spans and all(
            set(s["request_ids"]) <= set(s["member_request_ids"]) for s in spans
        )

    def test_overload_bundle_shows_typed_shedding(self):
        report = run_chaos_sync(["overload"])[0]
        events = report.bundles[-1]["events"]
        shed = [
            e for e in events
            if e.get("phase") == "rejected" and e.get("where") == "admission"
        ]
        assert len(shed) >= report.notes["shed"] > 0

    def test_poison_bundle_identifies_the_culprit_request(self):
        report = run_chaos_sync(["poison"])[0]
        (rejected,) = [r for r in report.responses if r.status == "rejected"]
        events = events_for_request(
            report.bundles[-1]["events"], rejected.request_id
        )
        finished = [e for e in events if e.get("phase") == "finished"]
        assert finished and finished[-1]["status"] == "rejected"
        spans = [e for e in events if e.get("kind") == "span"]
        assert spans, "the failing batch span must link back to the culprit"
        assert all(
            rejected.request_id in s["member_request_ids"] for s in spans
        )


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        async def run_twice():
            a = await run_chaos(["crash", "poison"], seed=5)
            b = await run_chaos(["crash", "poison"], seed=5)
            return a, b

        a, b = asyncio.run(run_twice())
        for ra, rb in zip(a, b):
            assert ra.as_dict() == rb.as_dict()

    def test_report_serializes(self):
        report = run_chaos_sync(["overload"])[0]
        payload = report.as_dict()
        assert payload["scenario"] == "overload"
        assert payload["ok"] is True
        assert set(payload) >= {
            "responses",
            "complete",
            "partial",
            "rejected",
            "violations",
        }
