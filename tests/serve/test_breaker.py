"""The three-state circuit breaker, stepped on a virtual clock."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.deadline import ManualClock

pytestmark = pytest.mark.serve


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(clock, failure_threshold=3, cooldown_s=1.0)


class TestClosedState:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allows()

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allows()

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestTripAndCooldown:
    def test_threshold_failures_trip_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allows()

    def test_open_blocks_until_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.5)
        assert not breaker.allows()
        clock.advance(0.5)
        assert breaker.allows()
        assert breaker.state == HALF_OPEN

    def test_repeat_failures_while_open_do_not_retrip(self, breaker):
        for _ in range(6):
            breaker.record_failure()
        assert breaker.trips == 1


class TestHalfOpen:
    def _trip_and_cool(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows()

    def test_single_trial_in_flight(self, breaker, clock):
        self._trip_and_cool(breaker, clock)
        # the trial is out; a second concurrent dispatch is refused
        assert not breaker.allows()

    def test_successful_trial_closes(self, breaker, clock):
        self._trip_and_cool(breaker, clock)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allows()

    def test_failed_trial_reopens_immediately(self, breaker, clock):
        self._trip_and_cool(breaker, clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allows()
        clock.advance(1.0)
        assert breaker.allows()


class TestValidationAndTelemetry:
    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown_s=-1.0)

    def test_as_dict_snapshot(self, breaker):
        breaker.record_failure()
        snap = breaker.as_dict()
        assert snap == {
            "state": CLOSED,
            "consecutive_failures": 1,
            "trips": 0,
        }
