"""ServeMonitor: health snapshots, auto-dumps, stories, and zero-impact.

The contract under test: the always-on monitor *observes* the serving
layer without perturbing it — responses are bitwise identical with the
monitor (and tracer) on or off — while breaker trips and page-severity
SLO burns each leave behind a post-mortem bundle that explains them.
"""

import asyncio

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.metrics import collecting, get_metrics
from repro.obs.recorder import validate_bundle
from repro.obs.trace import tracing
from repro.runtime.faults import FaultPlan
from repro.serve import (
    STATUS_COMPLETE,
    ManualClock,
    MatchRequest,
    MatchService,
    ServeConfig,
)
from repro.serve.monitor import (
    TRIGGER_BREAKER,
    TRIGGER_SLO_PAGE,
    ServeMonitor,
    ServiceHealth,
    format_request_story,
)

pytestmark = [pytest.mark.serve, pytest.mark.slo]


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(scale=1.0, n_queries=4, n_data_graphs=16, seed=5)


@pytest.fixture(scope="module")
def config():
    return SigmoConfig(refinement_iterations=2)


@pytest.fixture(scope="module")
def batches(dataset):
    return [dataset.data[0:8], dataset.data[8:16]]


def make_service(dataset, config, monitor=None, fault_plan=None, **serve_kw):
    serve_kw.setdefault("replicas", 2)
    serve_kw.setdefault("dispatchers", 2)
    service = MatchService(
        config=config,
        serve=ServeConfig(**serve_kw),
        clock=ManualClock(),
        fault_plan=fault_plan,
        monitor=monitor,
    )
    key = service.register(dataset.queries)
    return service, key


def run_workload(
    dataset, config, batches, n=6, monitor=None, max_retries=2, **serve_kw
):
    async def run():
        service, key = make_service(dataset, config, monitor=monitor, **serve_kw)
        async with service:
            responses = await asyncio.gather(
                *[
                    service.submit(
                        MatchRequest(
                            query_key=key,
                            data=batches[i % len(batches)],
                            max_retries=max_retries,
                        )
                    )
                    for i in range(n)
                ]
            )
            return service, responses, service.health()

    return asyncio.run(run())


class TestHealthSnapshot:
    def test_typed_snapshot_reflects_live_service(self, dataset, config, batches):
        service, responses, health = run_workload(dataset, config, batches)
        assert isinstance(health, ServiceHealth)
        assert health.running is True
        assert health.requests == len(responses)
        assert health.queue_depth == 0 and health.outstanding == 0
        assert len(health.lanes) == 2
        assert all("breaker" in lane for lane in health.lanes)
        assert health.recorder["recorded"] >= len(responses)
        assert health.recorder["dumps"] == 0
        payload = health.as_dict()
        assert set(payload) >= {
            "at_s", "running", "queue_depth", "outstanding", "requests",
            "pool_occupancy", "lanes", "window", "active_alerts", "recorder",
        }

    def test_recorder_holds_full_request_stories(self, dataset, config, batches):
        service, responses, _ = run_workload(dataset, config, batches, n=4)
        ring = service.monitor.recorder
        for response in responses:
            events = ring.for_request(response.request_id)
            phases = [e.get("phase") for e in events if e.get("kind") == "request"]
            assert phases[0] == "admitted" and phases[-1] == "finished"
            assert any(e["kind"] == "span" for e in events), (
                "the serve:batch span must link back to its members"
            )


class TestAutoDumps:
    def test_breaker_trip_dumps_bundle_naming_the_lane(self):
        monitor = ServeMonitor(capacity=64)
        monitor.on_breaker_transition(1.0, "pool/1", "closed", "open")
        (bundle,) = monitor.bundles
        assert bundle["trigger"] == TRIGGER_BREAKER
        assert bundle["context"] == {"lane": "pool/1"}
        assert validate_bundle(bundle) == []
        # Half-open/closed transitions are recorded but never dump.
        monitor.on_breaker_transition(2.0, "pool/1", "open", "half-open")
        monitor.on_breaker_transition(3.0, "pool/1", "half-open", "closed")
        assert len(monitor.bundles) == 1
        assert len(monitor.recorder.find("breaker")) == 3

    def test_slo_page_burn_dumps_bundle_with_burn_context(self):
        with collecting() as metrics:
            monitor = ServeMonitor(window_s=1.0)
            assert monitor.tick(1.0) == []  # aligns the window origin
            metrics.count("serve.responses.rejected", 10)
            transitions = monitor.tick(2.0)
        fired = [t for t in transitions if t.state == "firing"]
        assert fired, "a total outage must fire the availability page"
        pages = [b for b in monitor.bundles if b["trigger"] == TRIGGER_SLO_PAGE]
        assert pages
        assert pages[0]["context"]["slo"] == "serve-availability"
        assert pages[0]["context"]["burn_short"] >= 10.0
        alert_events = [
            e for e in pages[0]["events"] if e["kind"] == "alert"
        ]
        assert alert_events, "the bundle must contain the alert that dumped it"

    def test_service_crash_storm_trips_breaker_and_dumps(
        self, dataset, config, batches
    ):
        plan = FaultPlan(
            seed=0,
            crash_at=tuple(
                (unit, attempt) for unit in range(4) for attempt in range(3)
            ),
        )
        service, responses, _ = run_workload(
            dataset, config, batches, n=6, max_retries=3,
            fault_plan=plan, breaker_threshold=2,
            breaker_cooldown_s=0.5, backoff_base_s=0.01,
        )
        assert all(r.status == STATUS_COMPLETE for r in responses)
        trips = [
            b for b in service.monitor.bundles
            if b["trigger"] == TRIGGER_BREAKER
        ]
        assert trips, "a tripped breaker must leave a post-mortem behind"
        tripped_lane = trips[0]["context"]["lane"]
        breaker_events = [
            e for e in trips[0]["events"]
            if e["kind"] == "breaker" and e.get("new") == "open"
        ]
        assert any(e["lane"] == tripped_lane for e in breaker_events)

    def test_bundle_retention_is_bounded(self):
        monitor = ServeMonitor(max_bundles=2)
        for i in range(4):
            monitor.on_breaker_transition(float(i), f"lane/{i}", "closed", "open")
        assert [b["context"]["lane"] for b in monitor.bundles] == [
            "lane/2", "lane/3",
        ]
        assert monitor.recorder.dumps == 4


class TestRequestStory:
    def test_story_names_resume_chain_and_trigger(self):
        events = [
            {"kind": "request", "at_s": 0.0, "seq": 0, "phase": "admitted",
             "request_id": "req-1", "chain": "req-1", "queue_depth": 1},
            {"kind": "span", "at_s": 0.1, "seq": 1, "name": "serve:batch",
             "lane": "pool/0", "request_ids": ["req-1"],
             "member_request_ids": ["req-1"]},
            {"kind": "request", "at_s": 0.2, "seq": 2, "phase": "finished",
             "request_id": "req-2", "chain": "req-1", "status": "complete"},
        ]
        story = format_request_story("req-1", events, trigger="straggler")
        assert story.splitlines()[0] == (
            "req-1: 3 event(s)  [bundle trigger: straggler]"
        )
        assert "resume chain: req-1 -> req-2" in story
        assert "lane=pool/0" in story
        assert "status=complete" in story

    def test_single_hop_story_has_no_chain_line(self):
        events = [
            {"kind": "request", "at_s": 0.0, "seq": 0, "phase": "admitted",
             "request_id": "req-1", "chain": "req-1"},
        ]
        assert "resume chain" not in format_request_story("req-1", events)


class TestDedup:
    def test_identical_data_requests_coalesce_to_one_execution(
        self, dataset, config, batches
    ):
        before = dict(get_metrics().counters)
        service, responses, _ = run_workload(
            dataset, config, [batches[0]], n=4, dispatchers=1
        )
        hits = (
            get_metrics().counters.get("serve.coalesce.dedup_hits", 0)
            - before.get("serve.coalesce.dedup_hits", 0)
        )
        assert hits >= 1, "fingerprint-equal requests must deduplicate"
        assert len({r.total_matches for r in responses}) == 1
        assert len({tuple(sorted(r.matches)) for r in responses}) == 1
        dedup_events = [
            e for e in service.monitor.recorder.find("request")
            if e.get("phase") == "dedup"
        ]
        assert len(dedup_events) == hits
        primaries = {e["primary"] for e in dedup_events}
        assert primaries <= {r.request_id for r in responses}


class TestZeroImpact:
    def test_responses_bitwise_equal_with_monitor_and_tracer_off(
        self, dataset, config, batches
    ):
        def arm(monitored, traced):
            def payloads():
                _, responses, _ = run_workload(
                    dataset, config, batches, n=6,
                    monitor=None if monitored else ServeMonitor.disabled(),
                )
                return [r.to_dict() for r in responses]

            if traced:
                with tracing():
                    return payloads()
            return payloads()

        baseline = arm(monitored=False, traced=False)
        assert baseline == arm(monitored=True, traced=True)
        assert baseline == arm(monitored=True, traced=False)

    def test_disabled_monitor_records_and_dumps_nothing(self):
        monitor = ServeMonitor.disabled()
        assert monitor.enabled is False
        monitor.on_admitted(0.0, "req-1", "req-1", 0, 1)
        monitor.on_batch(0.1, "b", "lane", ["req-1"], ["req-1"])
        monitor.on_breaker_transition(0.2, "lane", "closed", "open")
        monitor.on_finished(0.3, "req-1", "req-1", 0, "complete", "lane", 0.3, False)
        assert monitor.tick(1.0) == []
        assert monitor.dump("manual") == {}
        assert monitor.bundles == []
        assert monitor.window_summary() == {} and monitor.recorder_summary() == {}


class TestLaneInterleaving:
    def test_batch_spans_interleave_across_lanes_under_asyncio(
        self, dataset, config, batches
    ):
        # Four *distinct* data batches so nothing deduplicates away:
        # every request becomes its own coalesced batch (max 1), spread
        # round-robin over both lanes by two concurrent dispatchers.
        slices = [dataset.data[i : i + 4] for i in range(0, 16, 4)]
        with tracing() as tracer:
            service, responses, _ = run_workload(
                dataset, config, slices, n=4,
                dispatchers=2, replicas=2, max_batch_requests=1,
            )
        assert all(r.status == STATUS_COMPLETE for r in responses)
        spans = tracer.find("serve:batch")
        assert len(spans) >= 2
        assert len({s.lane for s in spans}) == 2, (
            "two dispatchers over two replicas must exercise both lanes"
        )
        for span in spans:
            assert span.attrs["request_ids"]
            assert set(span.attrs["request_ids"]) <= set(
                span.attrs["member_request_ids"]
            )
        # Every response's lane is a lane some span actually ran on.
        assert {r.lane for r in responses} <= {s.lane for s in spans}
        assert validate_chrome_trace(chrome_trace(tracer)) == []
