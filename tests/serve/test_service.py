"""End-to-end MatchService behavior: correctness, deadlines, degradation.

The anchor invariant throughout: whatever the service does internally —
coalescing, routing, retrying, truncating — a client's non-rejected
responses reassemble *exactly* the result of a solo fresh engine over
its own request data.
"""

import asyncio

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import FIND_FIRST
from repro.obs.metrics import get_metrics
from repro.obs.trace import tracing
from repro.runtime.faults import FaultPlan
from repro.serve import (
    REJECT_FAILED,
    REJECT_OVERLOADED,
    REJECT_UNAVAILABLE,
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    ManualClock,
    MatchRequest,
    MatchService,
    RequestFailed,
    ServeConfig,
    ServeResumeToken,
)

pytestmark = pytest.mark.serve

N_QUERIES = 5
N_DATA = 24
SEED = 3


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=N_DATA, seed=SEED
    )


@pytest.fixture(scope="module")
def config():
    return SigmoConfig(refinement_iterations=2)


@pytest.fixture(scope="module")
def batches(dataset):
    return [
        dataset.data[0:8],
        dataset.data[8:16],
        dataset.data[16:24],
        dataset.data[4:12],
    ]


@pytest.fixture(scope="module")
def truth(dataset, config, batches):
    out = []
    for batch in batches:
        result = SigmoEngine(dataset.queries, batch, config).run()
        out.append((result.total_matches, sorted(result.matched_pairs())))
    return out


def make_service(dataset, config, **serve_kw):
    serve_kw.setdefault("replicas", 2)
    serve_kw.setdefault("dispatchers", 2)
    clock = serve_kw.pop("clock", None) or ManualClock()
    plan = serve_kw.pop("fault_plan", None)
    service = MatchService(
        config=config,
        serve=ServeConfig(**serve_kw),
        clock=clock,
        fault_plan=plan,
    )
    key = service.register(dataset.queries)
    return service, clock, key


class TestCorrectness:
    def test_concurrent_coalesced_requests_equal_solo_engines(
        self, dataset, config, batches, truth
    ):
        async def run():
            service, _, key = make_service(dataset, config)
            async with service:
                return await asyncio.gather(
                    *[
                        service.submit(
                            MatchRequest(query_key=key, data=batches[i % 4])
                        )
                        for i in range(8)
                    ]
                )

        responses = asyncio.run(run())
        for i, response in enumerate(responses):
            expected_total, expected_pairs = truth[i % 4]
            assert response.status == STATUS_COMPLETE
            assert response.total_matches == expected_total
            assert sorted(response.matches) == expected_pairs
            assert response.attempts == 1
            assert response.lane  # routed through a named lane

    def test_sequential_requests_hit_the_warm_path(
        self, dataset, config, batches
    ):
        async def run():
            service, _, key = make_service(
                dataset, config, replicas=1, dispatchers=1
            )
            async with service:
                for _ in range(3):
                    await service.submit(
                        MatchRequest(query_key=key, data=batches[0])
                    )
                entry = service.pool.entry(key)
                return entry.lanes[0].session.artifact_stats.as_dict()

        stats = asyncio.run(run())
        # first call stores filter+gmcr, later calls recall them
        assert stats["hits"] >= 2

    def test_find_first_mode_passes_through(self, dataset, config, batches):
        async def run():
            service, _, key = make_service(dataset, config)
            async with service:
                return await service.submit(
                    MatchRequest(
                        query_key=key, data=batches[1], mode=FIND_FIRST
                    )
                )

        response = asyncio.run(run())
        expected = SigmoEngine(dataset.queries, batches[1], config).run(
            mode=FIND_FIRST
        )
        assert response.status == STATUS_COMPLETE
        assert sorted(response.matches) == sorted(expected.matched_pairs())


class TestDeadlinesAndResume:
    def test_tight_deadline_truncates_with_resume_token(
        self, dataset, config, batches, truth
    ):
        async def run():
            service, _, key = make_service(
                dataset, config, replicas=1, dispatchers=1
            )
            async with service:
                return await service.submit(
                    MatchRequest(
                        query_key=key, data=batches[0], deadline_s=0.0005
                    )
                )

        response = asyncio.run(run())
        assert response.status == STATUS_PARTIAL
        assert response.resume is not None
        assert response.truncate_reason
        expected_pairs = truth[0][1]
        assert set(response.matches) <= set(expected_pairs)

    def test_resume_chain_reassembles_the_exact_result(
        self, dataset, config, batches, truth
    ):
        async def run():
            service, _, key = make_service(
                dataset, config, replicas=2, dispatchers=2
            )
            matches, total, hops = [], 0, 0
            async with service:
                response = await service.submit(
                    MatchRequest(
                        query_key=key, data=batches[0], deadline_s=0.0005
                    )
                )
                while True:
                    matches.extend(response.matches)
                    total += response.total_matches
                    if response.status != STATUS_PARTIAL:
                        break
                    hops += 1
                    response = await service.submit(
                        MatchRequest(
                            query_key=key,
                            data=batches[0],
                            deadline_s=0.0005,
                            resume=response.resume,
                        )
                    )
            return matches, total, hops, response.status

        matches, total, hops, final = asyncio.run(run())
        expected_total, expected_pairs = truth[0]
        assert final == STATUS_COMPLETE
        assert hops >= 1  # the budget actually truncated
        assert total == expected_total
        assert sorted(matches) == expected_pairs

    def test_queued_deadline_expiry_rejects_typed(
        self, dataset, config, batches
    ):
        async def run():
            clock = ManualClock()
            service, _, key = make_service(
                dataset, config, clock=clock, replicas=1, dispatchers=1
            )
            async with service:
                # Deadline already unmeetable relative to queue estimate:
                # admission passes (queue empty) but the clock jumps past
                # the deadline before dispatch.
                ticket = asyncio.ensure_future(
                    service.submit(
                        MatchRequest(
                            query_key=key, data=batches[0], deadline_s=0.01
                        )
                    )
                )
                await asyncio.sleep(0)
                clock.advance(1.0)
                return await ticket

        response = asyncio.run(run())
        # dispatched-or-queued expiry: either way a typed deadline rejection
        assert response.status in (STATUS_REJECTED, STATUS_PARTIAL)
        if response.status == STATUS_REJECTED:
            assert response.rejection.kind == "deadline-exceeded"


class TestResumeTokenValidation:
    def test_token_bound_to_other_query_key_rejected(
        self, dataset, config, batches
    ):
        async def run():
            service, _, key = make_service(dataset, config)
            async with service:
                token = ServeResumeToken(
                    query_key="f" * 16, data_hash="0" * 64, next_pair=1
                )
                return await service.submit(
                    MatchRequest(query_key=key, data=batches[0], resume=token)
                )

        response = asyncio.run(run())
        assert response.status == STATUS_REJECTED
        assert response.rejection.kind == REJECT_FAILED
        with pytest.raises(RequestFailed):
            response.raise_for_status()

    def test_token_bound_to_other_data_rejected(
        self, dataset, config, batches
    ):
        async def run():
            service, _, key = make_service(
                dataset, config, replicas=1, dispatchers=1
            )
            async with service:
                partial = await service.submit(
                    MatchRequest(
                        query_key=key, data=batches[0], deadline_s=0.0005
                    )
                )
                assert partial.status == STATUS_PARTIAL
                return await service.submit(
                    MatchRequest(
                        query_key=key, data=batches[1], resume=partial.resume
                    )
                )

        response = asyncio.run(run())
        assert response.status == STATUS_REJECTED
        assert "different data" in response.rejection.detail

    def test_unknown_query_key_rejected(self, dataset, config, batches):
        async def run():
            service, _, _ = make_service(dataset, config)
            async with service:
                return await service.submit(
                    MatchRequest(query_key="nope", data=batches[0])
                )

        response = asyncio.run(run())
        assert response.status == STATUS_REJECTED
        assert response.rejection.kind == REJECT_FAILED
        assert "unknown query_key" in response.rejection.detail


class TestOverloadAndLifecycle:
    def test_queue_bound_sheds_typed_overloaded(
        self, dataset, config, batches
    ):
        async def run():
            service, _, key = make_service(
                dataset,
                config,
                replicas=1,
                dispatchers=1,
                max_queued=2,
                requests_per_batch=1.0,
            )
            async with service:
                return await asyncio.gather(
                    *[
                        service.submit(
                            MatchRequest(query_key=key, data=batches[i % 4])
                        )
                        for i in range(8)
                    ]
                )

        responses = asyncio.run(run())
        shed = [
            r
            for r in responses
            if r.status == STATUS_REJECTED
            and r.rejection.kind == REJECT_OVERLOADED
        ]
        served = [r for r in responses if r.status == STATUS_COMPLETE]
        assert shed, "queue bound never shed"
        assert served, "overload must not starve everyone"
        for r in shed:
            assert r.rejection.retry_after_s is not None

    def test_all_breakers_open_rejects_unavailable(
        self, dataset, config, batches
    ):
        async def run():
            # crash every attempt of every early request: with
            # threshold-1 breakers both lanes trip immediately.
            plan = FaultPlan(
                crash_at=tuple(
                    (unit, attempt)
                    for unit in range(8)
                    for attempt in range(4)
                )
            )
            service, _, key = make_service(
                dataset,
                config,
                fault_plan=plan,
                replicas=2,
                dispatchers=2,
                breaker_threshold=1,
                breaker_cooldown_s=1e9,
                backoff_base_s=0.0,
            )
            async with service:
                return await asyncio.gather(
                    *[
                        service.submit(
                            MatchRequest(
                                query_key=key,
                                data=batches[i % 4],
                                max_retries=3,
                            )
                        )
                        for i in range(4)
                    ]
                )

        responses = asyncio.run(run())
        assert all(r.status == STATUS_REJECTED for r in responses)
        kinds = {r.rejection.kind for r in responses}
        assert REJECT_UNAVAILABLE in kinds

    def test_submit_before_start_raises(self, dataset, config, batches):
        async def run():
            service = MatchService(config=config)
            key = service.register(dataset.queries)
            await service.submit(MatchRequest(query_key=key, data=batches[0]))

        with pytest.raises(RuntimeError):
            asyncio.run(run())

    def test_stop_without_drain_rejects_queued(
        self, dataset, config, batches
    ):
        async def run():
            service, _, key = make_service(
                dataset, config, replicas=1, dispatchers=1
            )
            await service.start()
            pending = [
                asyncio.ensure_future(
                    service.submit(
                        MatchRequest(query_key=key, data=batches[i % 4])
                    )
                )
                for i in range(6)
            ]
            await asyncio.sleep(0)
            await service.stop(drain=False)
            return await asyncio.gather(*pending)

        responses = asyncio.run(run())
        stopped = [
            r
            for r in responses
            if r.status == STATUS_REJECTED
            and "service stopped" in r.rejection.detail
        ]
        assert stopped, "queued requests must resolve on no-drain stop"
        for r in responses:  # and nothing hangs or goes untyped
            assert r.status in (STATUS_COMPLETE, STATUS_REJECTED)


class TestObservability:
    def test_metrics_and_lane_spans_recorded(self, dataset, config, batches):
        metrics = get_metrics()
        before = dict(metrics.counters)

        async def run():
            service, _, key = make_service(dataset, config)
            async with service:
                await asyncio.gather(
                    *[
                        service.submit(
                            MatchRequest(query_key=key, data=batches[i % 4])
                        )
                        for i in range(4)
                    ]
                )
            return service

        with tracing() as tracer:
            service = asyncio.run(run())

        def delta(name):
            return metrics.counters.get(name, 0) - before.get(name, 0)

        assert delta("serve.requests") == 4
        assert delta("serve.responses.complete") == 4
        assert delta("serve.batches") >= 1
        assert metrics.histograms["serve.latency_s"].count >= 4
        batch_spans = tracer.find("serve:batch")
        assert batch_spans
        assert all(span.lane for span in batch_spans)
        snap = service.snapshot()
        assert snap["requests"] == 4
        assert snap["admission"]["admitted"] == 4
