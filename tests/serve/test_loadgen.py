"""The closed-loop Zipf traffic generator."""

import asyncio
import collections

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.serve import ManualClock, MatchService, ServeConfig
from repro.serve.loadgen import LoadResult, ZipfSampler, run_load
from repro.serve.request import STATUS_COMPLETE, MatchResponse

pytestmark = pytest.mark.serve


class TestZipfSampler:
    def test_deterministic_per_seed(self):
        a = [ZipfSampler(10, seed=3).sample() for _ in range(1)]
        draws_a = ZipfSampler(10, seed=3)
        draws_b = ZipfSampler(10, seed=3)
        assert [draws_a.sample() for _ in range(50)] == [
            draws_b.sample() for _ in range(50)
        ]
        assert a[0] == ZipfSampler(10, seed=3).sample()

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(20, exponent=1.2, seed=0)
        counts = collections.Counter(sampler.sample() for _ in range(2000))
        assert counts[0] > counts.get(10, 0)
        assert counts[0] > counts.get(19, 0)

    def test_zero_exponent_is_roughly_uniform(self):
        sampler = ZipfSampler(4, exponent=0.0, seed=1)
        counts = collections.Counter(sampler.sample() for _ in range(4000))
        for i in range(4):
            assert 800 <= counts[i] <= 1200

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, exponent=-1.0)


class TestLoadResult:
    def _response(self, status, latency):
        return MatchResponse(seq=0, status=status, latency_s=latency)

    def test_counts_and_percentiles(self):
        result = LoadResult(
            responses=[
                self._response("complete", 0.01),
                self._response("complete", 0.02),
                self._response("rejected", 0.0),
            ],
            wall_seconds=2.0,
        )
        assert result.n_requests == 3
        assert result.count("complete") == 2
        assert result.goodput == pytest.approx(1.0)
        assert result.latency_percentile(50) == pytest.approx(0.015)
        payload = result.as_dict()
        assert payload["rejected"] == 1
        assert payload["goodput_rps"] == pytest.approx(1.0)

    def test_empty_result_is_harmless(self):
        result = LoadResult()
        assert result.goodput == 0.0
        assert result.latency_percentile(99) == 0.0


class TestRunLoad:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_benchmark(
            scale=1.0, n_queries=4, n_data_graphs=18, seed=9
        )

    def test_closed_loop_responses_are_correct(self, dataset):
        config = SigmoConfig(refinement_iterations=2)
        batches = [
            dataset.data[0:6],
            dataset.data[6:12],
            dataset.data[12:18],
        ]

        async def run():
            service = MatchService(
                config=config,
                serve=ServeConfig(replicas=2, dispatchers=2),
                clock=ManualClock(),
            )
            key = service.register(dataset.queries)
            async with service:
                return await run_load(
                    service,
                    key,
                    batches,
                    n_clients=3,
                    requests_per_client=4,
                    zipf_exponent=1.1,
                    seed=21,
                )

        result = asyncio.run(run())
        assert result.n_requests == 12
        assert result.count(STATUS_COMPLETE) == 12
        # every response matches its batch's solo engine run
        truth = {
            id(batch): SigmoEngine(
                dataset.queries, batch, config
            ).run().total_matches
            for batch in batches
        }
        assert set(r.total_matches for r in result.responses) <= set(
            truth.values()
        )

    def test_same_seed_same_schedule(self, dataset):
        config = SigmoConfig(refinement_iterations=2)
        batches = [dataset.data[0:6], dataset.data[6:12]]

        async def once():
            service = MatchService(
                config=config,
                serve=ServeConfig(replicas=1, dispatchers=1),
                clock=ManualClock(),
            )
            key = service.register(dataset.queries)
            async with service:
                result = await run_load(
                    service,
                    key,
                    batches,
                    n_clients=2,
                    requests_per_client=3,
                    seed=4,
                )
            return [r.total_matches for r in result.responses]

        assert asyncio.run(once()) == asyncio.run(once())
