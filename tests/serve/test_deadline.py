"""Clocks, deadlines, and the cost model's time-to-work translation."""

import asyncio
import math

import pytest

from repro.core.join import JoinBudget
from repro.serve.deadline import Clock, CostModel, Deadline, Ewma, ManualClock

pytestmark = pytest.mark.serve


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_sleep_advances_virtual_time_without_waiting(self):
        clock = ManualClock()

        async def run():
            await clock.sleep(100.0)

        asyncio.run(run())
        assert clock.now() == 100.0

    def test_sleep_yields_to_other_tasks(self):
        clock = ManualClock()
        order = []

        async def sleeper():
            order.append("pre")
            await clock.sleep(1.0)
            order.append("post")

        async def other():
            order.append("other")

        async def run():
            await asyncio.gather(sleeper(), other())

        asyncio.run(run())
        assert order == ["pre", "other", "post"]

    def test_real_clock_is_monotonic(self):
        clock = Clock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestDeadline:
    def test_unbounded_never_expires(self):
        clock = ManualClock()
        deadline = Deadline.after(clock, None)
        clock.advance(1e9)
        assert not deadline.expired(clock)
        assert math.isinf(deadline.remaining(clock))

    def test_remaining_counts_down_and_clamps(self):
        clock = ManualClock()
        deadline = Deadline.after(clock, 1.0)
        assert deadline.remaining(clock) == 1.0
        clock.advance(0.75)
        assert deadline.remaining(clock) == pytest.approx(0.25)
        clock.advance(10.0)
        assert deadline.remaining(clock) == 0.0
        assert deadline.expired(clock)


class TestEwma:
    def test_converges_toward_observations(self):
        ewma = Ewma(100.0, alpha=0.5)
        for _ in range(20):
            ewma.observe(10.0)
        assert ewma.value == pytest.approx(10.0, rel=1e-3)
        assert ewma.samples == 20

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            Ewma(1.0, alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(1.0, alpha=1.5)


class TestCostModel:
    def test_unbounded_deadline_gets_no_budget(self):
        assert CostModel().budget_for(math.inf) is None

    def test_budget_scales_with_remaining_time(self):
        model = CostModel(visits_per_second=1000.0, budget_safety=0.5)
        budget = model.budget_for(2.0)
        assert isinstance(budget, JoinBudget)
        assert budget.max_visits == 1000
        assert model.budget_for(4.0).max_visits == 2000

    def test_budget_floor_guarantees_progress(self):
        model = CostModel(visits_per_second=1000.0, min_budget_visits=64)
        assert model.budget_for(1e-9).max_visits == 64

    def test_straggler_slowdown_shrinks_budget(self):
        model = CostModel(visits_per_second=1000.0, budget_safety=1.0)
        nominal = model.budget_for(1.0, slowdown=1.0).max_visits
        slow = model.budget_for(1.0, slowdown=4.0).max_visits
        assert slow == nominal // 4

    def test_observe_batch_calibrates_rates(self):
        model = CostModel(alpha=1.0)
        model.observe_batch(2.0, visits=1000, nodes=500)
        assert model.visits_per_second.value == pytest.approx(500.0)
        assert model.nodes_per_second.value == pytest.approx(250.0)
        assert model.seconds_per_batch.value == pytest.approx(2.0)

    def test_zero_second_batches_are_ignored(self):
        model = CostModel()
        before = model.visits_per_second.value
        model.observe_batch(0.0, visits=100, nodes=100)
        assert model.visits_per_second.value == before

    def test_queue_delay_and_batch_limit(self):
        model = CostModel(seconds_per_batch=0.1, nodes_per_second=1000.0)
        assert model.estimated_queue_delay(5) == pytest.approx(0.5)
        assert model.batch_node_limit(0.05) == 50
        assert model.batch_node_limit(1e-9) == 1  # floored
