"""Cross-backend parity: the pipeline must be bitwise-identical per backend.

One seeded filter -> refine -> join run per registered-and-available
backend, compared field-by-field against the numpy reference: match
counts, matched pairs, embedding *order*, ``JoinStats`` work counters,
and truncation/resume tokens under a ``JoinBudget``.  Optional device
backends (cupy/torch) join the matrix automatically when their import
succeeds; in the reference environment the matrix is numpy vs.
instrumented — which simultaneously proves the kernels dispatch through
the registry (the instrumented counters see the traffic) and that the
dense scipy-free signature kernel is an exact stand-in.
"""

import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.core.join import FIND_FIRST, JoinBudget
from repro.xp import backend_names, get_backend

pytestmark = pytest.mark.xp

#: Backends exercised by the parity matrix: every registered backend
#: (cupy/torch register only when importable).
PARITY_BACKENDS = [name for name in backend_names() if name != "numpy"]


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(scale=1.0, n_queries=8, n_data_graphs=40, seed=11)


def run_pipeline(dataset, backend, **kwargs):
    config = SigmoConfig(
        refinement_iterations=3,
        record_embeddings=True,
        array_backend=backend,
    )
    engine = SigmoEngine(dataset.queries, dataset.data, config)
    return engine.run(**kwargs)


def assert_bitwise_equal(got, want):
    assert got.total_matches == want.total_matches
    assert got.matched_pairs() == want.matched_pairs()
    # Embedding ORDER matters: resume tokens index into it.
    assert got.embeddings == want.embeddings
    gs, ws = got.join_result.stats, want.join_result.stats
    assert gs.pairs_joined == ws.pairs_joined
    assert gs.stack_pushes == ws.stack_pushes
    assert gs.candidate_visits == ws.candidate_visits
    assert gs.edge_checks == ws.edge_checks
    assert got.truncated == want.truncated
    assert got.resume_pair == want.resume_pair
    assert (
        got.filter_result.total_candidates
        == want.filter_result.total_candidates
    )


@pytest.mark.parametrize("backend", PARITY_BACKENDS)
class TestBackendParity:
    def test_find_all_matches_numpy_reference(self, dataset, backend):
        reference = run_pipeline(dataset, "numpy")
        got = run_pipeline(dataset, backend)
        assert_bitwise_equal(got, reference)

    def test_find_first_matches_numpy_reference(self, dataset, backend):
        reference = run_pipeline(dataset, "numpy", mode=FIND_FIRST)
        got = run_pipeline(dataset, backend, mode=FIND_FIRST)
        assert_bitwise_equal(got, reference)

    def test_budgeted_run_resumes_identically(self, dataset, backend):
        budget = JoinBudget(max_matches=3)
        reference = run_pipeline(dataset, "numpy", join_budget=budget)
        got = run_pipeline(dataset, backend, join_budget=budget)
        assert reference.truncated, "budget must actually truncate this run"
        assert_bitwise_equal(got, reference)
        # Resuming from the token must also agree bitwise.
        ref_rest = run_pipeline(
            dataset, "numpy", join_start_pair=reference.resume_pair
        )
        got_rest = run_pipeline(
            dataset, backend, join_start_pair=got.resume_pair
        )
        assert_bitwise_equal(got_rest, ref_rest)


class TestInstrumentedBackendObservations:
    def test_pipeline_traffic_lands_in_the_counters(self):
        # A fresh dataset: the global signature/plan memos must MISS so
        # the signature kernel actually dispatches through the backend.
        fresh = build_benchmark(
            scale=1.0, n_queries=4, n_data_graphs=20, seed=4242
        )
        be = get_backend("instrumented")
        be.reset()
        run_pipeline(fresh, "instrumented")
        counts = be.op_counts()
        assert be.total_calls() > 0, "no kernel call dispatched via repro.xp"
        # The signature stage must run on the backend's kernel, not scipy.
        assert "signature_kernel" in counts
        # Core array traffic of the filter/join path.
        for op in ("zeros", "nonzero", "cumsum", "searchsorted"):
            assert counts.get(op, (0, 0))[0] > 0, f"xp.{op} never dispatched"

    def test_numpy_run_stays_out_of_the_counters(self, dataset):
        be = get_backend("instrumented")
        be.reset()
        run_pipeline(dataset, "numpy")
        assert be.total_calls() == 0
