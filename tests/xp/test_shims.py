"""Shim contract: numpy-native shims, generic fallbacks, overflow guards.

Every backend implements the :data:`repro.xp.contract.SHIM_FUNCTIONS`
surface; the numpy backend uses native fast paths (``np.packbits``,
``np.bitwise_or.at``, scipy-sparse signature BFS) while device adapters
inherit the generic fallbacks of :mod:`repro.xp.fallback`.  These tests
pin the two implementations bitwise-equal, so the parity suite's
numpy-vs-instrumented comparison transfers to any adapter built on the
fallbacks.
"""

import numpy as np
import pytest

from repro.graph.batch import GraphBatch
from repro.graph.generators import random_connected_graph
from repro.core.csrgo import CSRGO
from repro.xp import MAX_FLAT_STRIDE, NumpyBackend, get_backend
from repro.xp.fallback import (
    DENSE_SIGNATURE_CELL_CAP,
    DenseSignatureKernel,
    divmod_generic,
    pack_bits_generic,
    popcount_generic,
    scatter_or_generic,
    unpack_bits_generic,
    view_u8_generic,
)
from repro.xp.numpy_backend import ScipySignatureKernel

pytestmark = pytest.mark.xp

BE = NumpyBackend()


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


class TestPackUnpackParity:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_pack_matches_generic(self, rng, word_bits):
        rows = rng.random((5, 3 * word_bits)) < 0.4
        padded = np.ascontiguousarray(rows)
        native = BE.pack_bits(padded, word_bits)
        generic = pack_bits_generic(BE, padded, word_bits)
        assert native.dtype == generic.dtype
        np.testing.assert_array_equal(native, generic)

    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_unpack_roundtrips_both_ways(self, rng, word_bits):
        n_bits = 2 * word_bits + 5
        rows = rng.random((4, word_bits * 3)) < 0.5
        rows[:, n_bits:] = False
        packed = BE.pack_bits(np.ascontiguousarray(rows), word_bits)
        native = BE.unpack_bits(packed, n_bits, word_bits)
        generic = unpack_bits_generic(BE, packed, n_bits, word_bits)
        np.testing.assert_array_equal(native, rows[:, :n_bits])
        np.testing.assert_array_equal(generic, rows[:, :n_bits])


class TestScalarShims:
    def test_view_u8_matches_generic(self, rng):
        arr = rng.integers(0, 2**63, size=16, dtype=np.uint64)
        np.testing.assert_array_equal(BE.view_u8(arr), view_u8_generic(BE, arr))

    def test_popcount_matches_generic(self, rng):
        arr = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        np.testing.assert_array_equal(
            BE.popcount(arr), popcount_generic(BE, arr)
        )

    def test_divmod_matches_generic(self, rng):
        a = rng.integers(0, 10**6, size=100)
        q1, r1 = BE.divmod_(a, 7)
        q2, r2 = divmod_generic(BE, a, 7)
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(r1, r2)

    def test_scatter_or_accumulates_duplicates(self):
        # np.bitwise_or.at semantics: repeated indices OR together.
        idx = np.array([0, 1, 1, 2, 1], dtype=np.int64)
        values = np.array([1, 2, 4, 8, 16], dtype=np.uint64)
        native = np.zeros(3, dtype=np.uint64)
        generic = np.zeros(3, dtype=np.uint64)
        BE.scatter_or(native, idx, values)
        scatter_or_generic(BE, generic, idx, values)
        np.testing.assert_array_equal(native, [1, 22, 8])
        np.testing.assert_array_equal(native, generic)


class TestFlatStrideOverflowGuard:
    """Regression for the latent int64 wraparound in the flat edge keys.

    ``accel/tabular.py`` and the CSR views build flat keys as
    ``u * width + v``; a bare ``np.int64(width)`` multiplication wraps
    silently once ``width**2`` exceeds 2**63.  The shim refuses such
    widths instead of corrupting every join probe.
    """

    @pytest.mark.parametrize("backend", ["numpy", "instrumented"])
    def test_max_width_accepted(self, backend):
        be = get_backend(backend)
        stride = be.checked_flat_stride(MAX_FLAT_STRIDE)
        assert int(stride) == MAX_FLAT_STRIDE
        # The guard boundary is exactly floor(sqrt(2**63 - 1)).
        assert MAX_FLAT_STRIDE**2 <= 2**63 - 1
        assert (MAX_FLAT_STRIDE + 1) ** 2 > 2**63 - 1

    @pytest.mark.parametrize("backend", ["numpy", "instrumented"])
    def test_overflowing_width_refused(self, backend):
        be = get_backend(backend)
        with pytest.raises(OverflowError, match="flat edge keys"):
            be.checked_flat_stride(MAX_FLAT_STRIDE + 1)

    def test_stride_result_is_int64(self):
        stride = BE.checked_flat_stride(1000)
        assert np.asarray(stride).dtype == np.int64


def _random_csrgo(rng, n_nodes=40, n_labels=4):
    graphs = [
        random_connected_graph(n_nodes // 2, 4, n_labels, rng),
        random_connected_graph(n_nodes - n_nodes // 2, 3, n_labels, rng),
    ]
    return CSRGO.from_batch(GraphBatch(graphs))


class TestSignatureKernelParity:
    def test_dense_matches_scipy_step_by_step(self, rng):
        data = _random_csrgo(rng)
        n_labels = int(data.labels.max()) + 1
        mask = np.ones(data.n_nodes, dtype=bool)
        args = (
            data.row_offsets,
            data.column_indices,
            data.n_nodes,
            data.labels,
            mask,
            n_labels,
        )
        sparse_k = ScipySignatureKernel(*args)
        dense_k = DenseSignatureKernel(BE, *args)
        for _ in range(5):
            s_sizes, s_delta = sparse_k.step()
            d_sizes, d_delta = dense_k.step()
            np.testing.assert_array_equal(s_sizes, d_sizes)
            if s_delta is None or d_delta is None:
                assert not s_sizes.any() and not d_sizes.any()
            else:
                np.testing.assert_array_equal(s_delta, d_delta)
            assert sparse_k.frontier_count == dense_k.frontier_count
        np.testing.assert_array_equal(
            sparse_k.reachable_counts(), dense_k.reachable_counts()
        )

    def test_masked_labels_ignored_identically(self, rng):
        data = _random_csrgo(rng, n_nodes=24)
        n_labels = int(data.labels.max()) + 1
        mask = np.asarray(data.labels) != 0  # pretend label 0 is wildcard
        args = (
            data.row_offsets,
            data.column_indices,
            data.n_nodes,
            data.labels,
            mask,
            n_labels,
        )
        sparse_k = ScipySignatureKernel(*args)
        dense_k = DenseSignatureKernel(BE, *args)
        for _ in range(3):
            s_sizes, s_delta = sparse_k.step()
            d_sizes, d_delta = dense_k.step()
            np.testing.assert_array_equal(s_sizes, d_sizes)
            if s_delta is not None and d_delta is not None:
                np.testing.assert_array_equal(s_delta, d_delta)

    def test_dense_kernel_caps_memory(self):
        n = int(DENSE_SIGNATURE_CELL_CAP**0.5) + 1
        with pytest.raises(MemoryError, match="dense signature"):
            DenseSignatureKernel(
                BE,
                np.zeros(n + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                n,
                np.zeros(n, dtype=np.int64),
                np.ones(n, dtype=bool),
                2,
            )
