"""Backend registry semantics and backend-identity config threading."""

import pytest

from repro import xp
from repro.core.config import SigmoConfig
from repro.xp import (
    BackendError,
    BackendStrictnessError,
    backend_name,
    backend_names,
    current_backend,
    get_backend,
    register_backend,
    use_backend,
)

pytestmark = pytest.mark.xp


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert "numpy" in names
        assert "instrumented" in names

    def test_default_backend_is_numpy(self):
        assert backend_name() == "numpy"
        assert current_backend() is get_backend("numpy")

    def test_use_backend_switches_and_restores(self):
        with use_backend("instrumented") as be:
            assert backend_name() == "instrumented"
            assert current_backend() is be
            with use_backend("numpy"):
                assert backend_name() == "numpy"
            assert backend_name() == "instrumented"
        assert backend_name() == "numpy"

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(BackendError, match="unknown array backend"):
            get_backend("tpu")
        with pytest.raises(BackendError):
            with use_backend("tpu"):
                raise AssertionError("must not enter the block")

    def test_register_refuses_silent_replacement(self):
        be = get_backend("numpy")
        with pytest.raises(BackendError, match="already registered"):
            register_backend(be)
        register_backend(be, replace=True)  # explicit replacement is fine

    def test_register_requires_a_name(self):
        with pytest.raises(BackendError, match="name"):
            register_backend(object())


class TestNamespaceDispatch:
    def test_module_getattr_follows_active_backend(self):
        arr = xp.zeros(3, dtype=xp.int64)
        assert arr.dtype == xp.int64
        with use_backend("instrumented"):
            with pytest.raises(BackendStrictnessError):
                xp.zeros(3)
            counted = xp.zeros(3, dtype=xp.int64)
            assert counted.dtype == xp.int64

    def test_instrumented_counters_see_dispatched_calls(self):
        be = get_backend("instrumented")
        be.reset()
        with use_backend("instrumented"):
            xp.zeros(8, dtype=xp.uint64)
            xp.arange(4, dtype=xp.int64)
        counts = be.op_counts()
        assert counts["zeros"][0] == 1
        assert counts["zeros"][1] == 64  # 8 x uint64
        assert counts["arange"][0] == 1
        assert be.total_calls() >= 2
        be.reset()
        assert be.total_calls() == 0


class TestConfigThreading:
    def test_config_validates_backend_name(self):
        assert SigmoConfig().array_backend == "numpy"
        cfg = SigmoConfig(array_backend="instrumented")
        assert cfg.array_backend == "instrumented"
        with pytest.raises(ValueError, match="array_backend"):
            SigmoConfig(array_backend="not-a-backend")

    def test_with_array_backend_helper(self):
        config = SigmoConfig()
        other = config.with_array_backend("instrumented")
        assert other.array_backend == "instrumented"
        assert config.array_backend == "numpy"
