"""Backend identity in cache keys: no stale-backend artifacts, ever.

Every cache keyed by ``CSRGO.content_hash()`` — the local/batch CSR view
LRUs, the global signature/plan memos, the pipeline artifact cache, and
the serving pool — also keys on the active backend, so switching
backends mid-session can never serve arrays (or compiled plans) built by
a different backend.
"""

import pytest

from repro.accel.local_view import BatchViewCache, LocalViewCache
from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.graph.batch import GraphBatch
from repro.graph.generators import random_connected_graph
from repro.pipeline import MatcherSession
from repro.pipeline.artifacts import filter_fingerprint
from repro.xp import use_backend

import numpy as np

pytestmark = pytest.mark.xp


@pytest.fixture
def data():
    rng = np.random.default_rng(99)
    graphs = [random_connected_graph(10, 3, 3, rng) for _ in range(3)]
    return CSRGO.from_batch(GraphBatch(graphs))


class TestViewCaches:
    def test_batch_view_cache_is_backend_keyed(self, data):
        cache = BatchViewCache(capacity=4)
        numpy_view = cache.get(data)
        with use_backend("instrumented"):
            other_view = cache.get(data)
        assert other_view is not numpy_view
        # Returning to numpy serves the original entry, not the other one.
        assert cache.get(data) is numpy_view
        with use_backend("instrumented"):
            assert cache.get(data) is other_view

    def test_local_view_cache_is_backend_keyed(self, data):
        cache = LocalViewCache(capacity=4)
        numpy_views = cache.views_of(data)
        with use_backend("instrumented"):
            other_views = cache.views_of(data)
        assert other_views is not numpy_views
        assert cache.views_of(data) is numpy_views


class TestFingerprints:
    def test_filter_fingerprint_includes_backend(self, data):
        numpy_cfg = SigmoConfig()
        instr_cfg = numpy_cfg.with_array_backend("instrumented")
        assert filter_fingerprint(data, data, 4, numpy_cfg) != (
            filter_fingerprint(data, data, 4, instr_cfg)
        )

    def test_session_never_reuses_other_backend_artifacts(self):
        dataset = build_benchmark(
            scale=1.0, n_queries=4, n_data_graphs=16, seed=3
        )
        config = SigmoConfig(refinement_iterations=2, record_embeddings=True)
        session = MatcherSession(dataset.queries, config=config)
        cold = session.match(dataset.data)
        warm = session.match(dataset.data)
        hits_after_warm = session.artifact_stats.as_dict()["hits"]
        assert hits_after_warm > 0  # same backend: artifacts are recalled
        switched = session.match(
            dataset.data, config=config.with_array_backend("instrumented")
        )
        stats = session.artifact_stats.as_dict()
        # The backend switch must MISS the cache (no stale-backend reuse)...
        assert stats["hits"] == hits_after_warm
        # ...and still produce the identical result.
        assert switched.total_matches == cold.total_matches
        assert switched.matched_pairs() == cold.matched_pairs()
        assert switched.embeddings == warm.embeddings
