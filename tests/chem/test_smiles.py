"""Unit tests for the SMILES parser and writer."""

import networkx as nx
import pytest

from repro.chem import elements as el
from repro.chem.smiles import SmilesError, mol_from_smiles, mol_to_smiles


def iso(m1, m2):
    nm = lambda a, b: a["label"] == b["label"]
    return nx.is_isomorphic(
        m1.graph(explicit_h=True).to_networkx(),
        m2.graph(explicit_h=True).to_networkx(),
        node_match=nm,
        edge_match=nm,
    )


class TestParserBasics:
    def test_ethanol(self):
        m = mol_from_smiles("CCO")
        assert m.n_atoms == 3 and m.n_bonds == 2
        assert m.formula() == "C2O"

    def test_bond_orders(self):
        m = mol_from_smiles("C=C")
        assert int(m.bonds[0].order) == 2
        m = mol_from_smiles("C#N")
        assert int(m.bonds[0].order) == 3

    def test_branches(self):
        m = mol_from_smiles("CC(C)(C)C")  # neopentane
        g = m.graph()
        assert max(g.degree()) == 4

    def test_two_letter_elements(self):
        m = mol_from_smiles("ClCBr")
        syms = {el.element_symbol(int(l)) for l in m.atom_labels}
        assert syms == {"Cl", "C", "Br"}

    def test_ring_closure(self):
        m = mol_from_smiles("C1CCCCC1")
        assert m.n_bonds == 6

    def test_percent_ring_closure(self):
        m = mol_from_smiles("C%11CC%11")
        assert m.n_bonds == 3

    def test_aromatic_ring(self):
        m = mol_from_smiles("c1ccccc1")
        assert all(int(b.order) == 4 for b in m.bonds)

    def test_aromatic_default_only_between_aromatics(self):
        m = mol_from_smiles("Cc1ccccc1")  # toluene: first bond single
        orders = sorted(int(b.order) for b in m.bonds)
        assert orders.count(1) == 1 and orders.count(4) == 6

    def test_bracket_hydrogens_materialized(self):
        m = mol_from_smiles("[NH2]")
        assert m.n_atoms == 3
        assert m.n_heavy_atoms == 1

    def test_bracket_charge_ignored(self):
        m = mol_from_smiles("[O-]")
        assert m.n_atoms == 1

    def test_dot_disconnects(self):
        m = mol_from_smiles("C.C")
        assert m.n_bonds == 0

    def test_explicit_bond_into_ring_closure(self):
        m = mol_from_smiles("C=1CCCCC=1")
        assert any(int(b.order) == 2 for b in m.bonds)


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "C(",
            "C)",
            "C1CC",
            "CC==C",
            "C[Zz]",
            "[C",
            "C/C=C/C",
            "C@",
            "=C",
            "C=",
            "1CC1",
            "C%1C",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(SmilesError):
            mol_from_smiles(bad)

    def test_duplicate_ring_bond(self):
        with pytest.raises(SmilesError):
            mol_from_smiles("C12CC12")  # would duplicate the same bond


class TestWriter:
    ROUNDTRIP = [
        "CCO",
        "c1ccccc1",
        "CC(=O)O",
        "C1CC1",
        "N#Cc1ccccc1",
        "CC(C)(C)O",
        "[OH]",
        "O=C(O)c1ccccc1",
        "C1CCC2CCCCC2C1",
        "CCS(=O)(=O)N",
        "FC(F)(F)c1ccc(Cl)cc1",
        "c1ccc2ccccc2c1",
        "C.C",
        "[Si](C)(C)C",
        "c1cc[nH]c1",
        "COP(=O)(O)O",
    ]

    @pytest.mark.parametrize("smiles", ROUNDTRIP)
    def test_roundtrip_isomorphic(self, smiles):
        m = mol_from_smiles(smiles)
        back = mol_from_smiles(mol_to_smiles(m))
        assert iso(m, back)

    def test_empty_molecule_raises(self):
        from repro.chem.molecule import Molecule

        with pytest.raises(ValueError):
            mol_to_smiles(Molecule([]))

    def test_writer_roundtrips_generated_molecules(self):
        from repro.chem.generator import MoleculeGenerator

        gen = MoleculeGenerator(seed=11)
        for m in gen.generate_batch(15):
            back = mol_from_smiles(mol_to_smiles(m))
            assert iso(m, back)
