"""Unit tests for substructure-key fingerprints."""

import numpy as np
import pytest

from repro.chem.fingerprints import (
    FingerprintScheme,
    compute_fingerprints,
    screen_candidates,
    screen_then_match,
)
from repro.chem.generator import MoleculeGenerator
from repro.chem.smiles import mol_from_smiles
from repro.core.engine import find_first


@pytest.fixture(scope="module")
def library():
    return [m.graph() for m in MoleculeGenerator(seed=21).generate_batch(40)]


@pytest.fixture(scope="module")
def fps(library):
    return compute_fingerprints(library, FingerprintScheme.default(24))


class TestScheme:
    def test_default_scheme(self):
        s = FingerprintScheme.default()
        assert s.n_bits == len(s.names) > 40

    def test_subset(self):
        assert FingerprintScheme.default(10).n_bits == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            FingerprintScheme(patterns=(), names=())


class TestFingerprints:
    def test_bits_reflect_exact_matching(self, library, fps):
        dense = fps.dense()
        # spot-check a handful of (molecule, key) pairs against the engine
        rng = np.random.default_rng(0)
        for _ in range(15):
            m = int(rng.integers(0, len(library)))
            k = int(rng.integers(0, fps.scheme.n_bits))
            expected = (
                find_first([fps.scheme.patterns[k]], [library[m]]).total_matches > 0
            )
            assert dense[m, k] == expected

    def test_bits_of_names(self, fps):
        names = fps.bits_of(0)
        assert all(n in fps.scheme.names for n in names)

    def test_tanimoto_properties(self, fps):
        assert fps.tanimoto(0, 0) == pytest.approx(1.0)
        assert 0.0 <= fps.tanimoto(0, 1) <= 1.0
        assert fps.tanimoto(0, 1) == pytest.approx(fps.tanimoto(1, 0))

    def test_tanimoto_matrix_matches_pairwise(self, fps):
        mat = fps.tanimoto_matrix()
        for a, b in [(0, 1), (2, 5), (3, 3)]:
            assert mat[a, b] == pytest.approx(fps.tanimoto(a, b))


class TestScreening:
    def test_no_false_negatives(self, library, fps):
        """The core guarantee: every true match passes the screen."""
        query = mol_from_smiles("CC(=O)N").graph()  # amide
        candidates = set(screen_candidates(query, fps).tolist())
        for idx, mol in enumerate(library):
            if find_first([query], [mol]).total_matches:
                assert idx in candidates, idx

    def test_screen_then_match_correct(self, library, fps):
        query = mol_from_smiles("c1ccccc1O").graph()  # phenol
        matched, stats = screen_then_match(query, library, fps)
        truth = [
            i for i, m in enumerate(library)
            if find_first([query], [m]).total_matches
        ]
        assert matched.tolist() == truth
        assert stats["screened_in"] + stats["skipped"] == stats["total"]
        assert stats["false_positives"] == stats["screened_in"] - len(truth)

    def test_screen_reduces_work(self, library, fps):
        # a rare key should screen most molecules out
        query = mol_from_smiles("CS(=O)(=O)N").graph()  # sulfonamide
        _, stats = screen_then_match(query, library, fps)
        assert stats["skipped"] > 0 or stats["screened_in"] == stats["total"]

    def test_empty_candidates_short_circuit(self, library, fps):
        query = mol_from_smiles("[Si](C)(C)C").graph()
        matched, stats = screen_then_match(query, library, fps)
        # silicon never occurs in this library
        assert matched.size == 0
