"""Unit tests for the benchmark dataset builder."""

import numpy as np
import pytest

from repro.chem.datasets import (
    PAPER_N_DATA_GRAPHS,
    PAPER_N_QUERIES,
    balanced_diameter_groups,
    build_benchmark,
    zinc_like_molecules,
)
from repro.graph.algorithms import is_connected


class TestBuildBenchmark:
    def test_scaled_sizes(self):
        ds = build_benchmark(scale=0.001, seed=1)
        assert ds.n_queries == max(4, round(PAPER_N_QUERIES * 0.001))
        assert ds.n_data_graphs == max(10, round(PAPER_N_DATA_GRAPHS * 0.001))

    def test_explicit_sizes(self, small_dataset):
        assert small_dataset.n_queries == 24
        assert small_dataset.n_data_graphs == 60

    def test_queries_connected_multiatom(self, small_dataset):
        for q in small_dataset.queries:
            assert q.n_nodes >= 2
            assert is_connected(q)

    def test_query_node_budget(self, small_dataset):
        # paper constraint: queries <= 30 nodes
        assert all(q.n_nodes <= 30 for q in small_dataset.queries)

    def test_diameters_computed(self, small_dataset):
        assert small_dataset.query_diameters.size == small_dataset.n_queries
        assert small_dataset.query_diameters.min() >= 1

    def test_reproducible(self):
        a = build_benchmark(scale=0.0005, seed=3)
        b = build_benchmark(scale=0.0005, seed=3)
        assert a.queries[0] == b.queries[0]
        assert a.data[-1] == b.data[-1]

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_benchmark(scale=0)

    def test_batches(self, small_dataset):
        assert small_dataset.query_batch().n_graphs == small_dataset.n_queries
        assert small_dataset.data_batch().total_nodes == small_dataset.total_data_nodes

    def test_summary(self, small_dataset):
        assert "queries=24" in small_dataset.summary()


class TestDiameterGroups:
    def test_groups_partition_by_diameter(self, small_dataset):
        groups = small_dataset.queries_by_diameter()
        total = sum(len(v) for v in groups.values())
        assert total == small_dataset.n_queries
        for diam, idxs in groups.items():
            for i in idxs:
                assert small_dataset.query_diameters[i] == diam

    def test_balanced_groups_equal_size(self):
        ds = build_benchmark(scale=1.0, n_queries=60, n_data_graphs=30, seed=2)
        groups = balanced_diameter_groups(ds)
        sizes = {len(v) for v in groups.values()}
        assert len(sizes) == 1


class TestZincStream:
    def test_stream_sizes(self):
        mols = zinc_like_molecules(15, seed=4)
        assert len(mols) == 15
        assert all(m.n_nodes >= 2 for m in mols)

    def test_stream_deterministic(self):
        assert zinc_like_molecules(3, seed=5)[0] == zinc_like_molecules(3, seed=5)[0]
