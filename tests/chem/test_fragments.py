"""Unit tests for the fragment library."""

import numpy as np
import pytest

from repro.chem.fragments import (
    FRAGMENT_LIBRARY,
    Fragment,
    fragment_by_name,
    fragment_queries,
)
from repro.graph.algorithms import is_connected


class TestLibrary:
    def test_all_fragments_parse(self):
        for frag in FRAGMENT_LIBRARY:
            mol = frag.molecule()
            assert mol.n_atoms >= 2

    def test_all_heavy_graphs_connected_multiatom(self):
        # the paper deletes single-atom patterns from its benchmark
        for frag in FRAGMENT_LIBRARY:
            g = frag.graph()
            assert g.n_nodes >= 2, frag.name
            assert is_connected(g), frag.name

    def test_names_unique(self):
        names = [f.name for f in FRAGMENT_LIBRARY]
        assert len(names) == len(set(names))

    def test_query_sizes_within_paper_bound(self):
        # paper: queries have no more than 30 nodes
        for frag in FRAGMENT_LIBRARY:
            assert frag.graph().n_nodes <= 30

    def test_lookup(self):
        assert fragment_by_name("benzene").family == "aromatic"
        with pytest.raises(KeyError):
            fragment_by_name("unobtainium")

    def test_known_structures(self):
        benzene = fragment_by_name("benzene").graph()
        assert benzene.n_nodes == 6 and benzene.n_edges == 6
        carboxyl = fragment_by_name("carboxylic-acid").graph()
        assert carboxyl.n_nodes == 4


class TestFragmentQueries:
    def test_full_library(self):
        qs = fragment_queries()
        assert len(qs) == len(FRAGMENT_LIBRARY)

    def test_subsample_diverse(self, rng):
        qs = fragment_queries(10, rng)
        assert len(qs) == 10

    def test_explicit_h(self):
        with_h = fragment_queries(5, explicit_h=True)
        without = fragment_queries(5)
        assert sum(g.n_nodes for g in with_h) > sum(g.n_nodes for g in without)
