"""Unit tests for the Molecule model."""

import numpy as np
import pytest

from repro.chem import elements as el
from repro.chem.molecule import Bond, BondOrder, Molecule

C = el.element_index("C")
H = el.element_index("H")
O = el.element_index("O")
N = el.element_index("N")


class TestConstruction:
    def test_bond_tuple_forms(self):
        m = Molecule([C, C, O], [(0, 1), (1, 2, BondOrder.DOUBLE)])
        assert m.bonds[0].order == BondOrder.SINGLE
        assert m.bonds[1].order == BondOrder.DOUBLE

    def test_rejects_duplicate_bond(self):
        with pytest.raises(ValueError):
            Molecule([C, C], [(0, 1), (1, 0)])

    def test_rejects_self_bond(self):
        with pytest.raises(ValueError):
            Molecule([C], [(0, 0)])

    def test_rejects_unknown_label(self):
        with pytest.raises(ValueError):
            Molecule([99])

    def test_counts(self):
        m = Molecule([C, H, H], [(0, 1), (0, 2)])
        assert m.n_atoms == 3 and m.n_heavy_atoms == 1 and m.n_bonds == 2


class TestFormula:
    def test_hill_order(self):
        m = Molecule([O, C, H, N], [])
        assert m.formula() == "CHNO"

    def test_counts_in_formula(self):
        m = Molecule([C, C, H, H, H], [])
        assert m.formula() == "C2H3"


class TestValence:
    def test_methane_implicit_h(self):
        m = Molecule([C])
        np.testing.assert_array_equal(m.implicit_hydrogens(), [4])

    def test_carbonyl_uses_two(self):
        m = Molecule([C, O], [(0, 1, BondOrder.DOUBLE)])
        np.testing.assert_array_equal(m.implicit_hydrogens(), [2, 0])

    def test_benzene_carbons_one_h(self):
        edges = [(i, (i + 1) % 6, BondOrder.AROMATIC) for i in range(6)]
        m = Molecule([C] * 6, edges)
        assert m.implicit_hydrogens().tolist() == [1] * 6
        assert not m.valence_violations()

    def test_pyridine_n_no_h(self):
        edges = [(i, (i + 1) % 6, BondOrder.AROMATIC) for i in range(6)]
        m = Molecule([N] + [C] * 5, edges)
        assert m.implicit_hydrogens()[0] == 0
        assert not m.valence_violations()

    def test_furan_o_not_violating(self):
        edges = [(i, (i + 1) % 5, BondOrder.AROMATIC) for i in range(5)]
        m = Molecule([O] + [C] * 4, edges)
        assert not m.valence_violations()

    def test_pentavalent_carbon_flagged(self):
        m = Molecule([C, O, O, O], [(0, 1, 2), (0, 2, 2), (0, 3)])
        assert 0 in m.valence_violations()

    def test_aromatic_bond_counts(self):
        edges = [(0, 1, BondOrder.AROMATIC), (1, 2)]
        m = Molecule([C, C, C], edges)
        assert m.aromatic_bond_counts().tolist() == [1, 1, 0]


class TestGraphViews:
    def test_heavy_view_drops_hydrogens(self):
        m = Molecule([C, H, O], [(0, 1), (0, 2)])
        g = m.graph()
        assert g.n_nodes == 2 and g.n_edges == 1

    def test_explicit_view_materializes_implicit_h(self):
        m = Molecule([C])  # methane
        g = m.graph(explicit_h=True)
        assert g.n_nodes == 5 and g.n_edges == 4

    def test_explicit_view_keeps_existing_h(self):
        m = Molecule([C, H], [(0, 1)])
        g = m.graph(explicit_h=True)
        assert g.n_nodes == 5  # C + 1 explicit H + 3 implicit

    def test_edge_labels_are_bond_orders(self):
        m = Molecule([C, O], [(0, 1, BondOrder.DOUBLE)])
        assert m.graph().edge_label(0, 1) == int(BondOrder.DOUBLE)

    def test_from_graph_roundtrip(self):
        m = Molecule([C, O, N], [(0, 1, 2), (1, 2)])
        back = Molecule.from_graph(m.graph())
        assert back.graph() == m.graph()

    def test_repr(self):
        assert "Molecule" in repr(Molecule([C], [], name="methane"))


class TestBondOrder:
    def test_valence_costs(self):
        assert BondOrder.SINGLE.valence_cost == 1
        assert BondOrder.DOUBLE.valence_cost == 2
        assert BondOrder.TRIPLE.valence_cost == 3
        assert BondOrder.AROMATIC.valence_cost == 1
