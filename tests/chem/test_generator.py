"""Unit tests for the calibrated molecule generator."""

import numpy as np
import pytest

from repro.chem import elements as el
from repro.chem.generator import MoleculeGenerator, dataset_statistics
from repro.graph.algorithms import is_connected


class TestValidity:
    def test_molecules_are_chemically_valid(self):
        gen = MoleculeGenerator(seed=42)
        for mol in gen.generate_batch(100):
            assert not mol.valence_violations()

    def test_molecules_connected(self):
        gen = MoleculeGenerator(seed=43)
        for mol in gen.generate_batch(50):
            assert is_connected(mol.graph())

    def test_degree_bound(self):
        # paper: vertex degree cannot exceed 6 in organic molecules
        gen = MoleculeGenerator(seed=44)
        for mol in gen.generate_batch(50):
            assert max(mol.graph().degree()) <= 6

    def test_size_cap(self):
        gen = MoleculeGenerator(seed=45, mean_heavy_atoms=60, std_heavy_atoms=40,
                                max_heavy_atoms=80)
        for mol in gen.generate_batch(30):
            assert mol.n_heavy_atoms <= 80 + 12  # growth may overshoot a ring


class TestCalibration:
    def test_statistics_match_paper(self):
        gen = MoleculeGenerator(seed=46)
        stats = dataset_statistics(gen.generate_batch(300))
        # paper: ~23.9 nodes/molecule, avg degree <= 4, high sparsity
        assert 18 <= stats["mean_heavy_atoms"] <= 30
        assert stats["mean_degree"] <= 4.0
        assert stats["carbon_share"] > 0.6
        assert stats["mean_sparsity"] > 0.8

    def test_label_set_within_vocabulary(self):
        gen = MoleculeGenerator(seed=47)
        for mol in gen.generate_batch(30):
            assert mol.atom_labels.max() < el.N_ELEMENT_LABELS


class TestDeterminism:
    def test_same_seed_same_molecules(self):
        a = MoleculeGenerator(seed=7).generate_batch(10)
        b = MoleculeGenerator(seed=7).generate_batch(10)
        for ma, mb in zip(a, b):
            assert ma.graph() == mb.graph()

    def test_different_seeds_differ(self):
        a = MoleculeGenerator(seed=1).generate()
        b = MoleculeGenerator(seed=2).generate()
        assert a.graph() != b.graph()


class TestParameters:
    def test_rejects_oversized_molecules(self):
        with pytest.raises(ValueError, match="200"):
            MoleculeGenerator(max_heavy_atoms=500)

    def test_rejects_inconsistent_mean(self):
        with pytest.raises(ValueError):
            MoleculeGenerator(mean_heavy_atoms=2, min_heavy_atoms=6)

    def test_negative_batch(self):
        with pytest.raises(ValueError):
            MoleculeGenerator().generate_batch(-1)

    def test_mean_size_scales(self):
        small = MoleculeGenerator(seed=9, mean_heavy_atoms=10).generate_batch(40)
        large = MoleculeGenerator(seed=9, mean_heavy_atoms=40).generate_batch(40)
        s = np.mean([m.n_heavy_atoms for m in small])
        l = np.mean([m.n_heavy_atoms for m in large])
        assert l > s + 10
