"""Unit tests for the element vocabulary."""

import numpy as np
import pytest

from repro.chem import elements as el


class TestLookup:
    def test_symbol_roundtrip(self):
        for i, e in enumerate(el.ELEMENTS):
            assert el.element_index(e.symbol) == i
            assert el.element_symbol(i) == e.symbol

    def test_lowercase_aromatic_symbols(self):
        assert el.element_index("c") == el.element_index("C")
        assert el.element_index("n") == el.element_index("N")

    def test_two_letter_case_sensitive(self):
        assert el.element_index("Cl") == 7
        with pytest.raises(KeyError):
            el.element_index("CL")

    def test_unknown_symbol(self):
        with pytest.raises(KeyError):
            el.element_index("Xx")


class TestProperties:
    def test_valences(self):
        assert el.default_valence(el.element_index("C")) == 4
        assert el.default_valence(el.element_index("H")) == 1
        assert el.default_valence(el.element_index("N")) == 3

    def test_heavy_frequencies_skewed(self):
        f = el.heavy_frequencies()
        c = el.element_index("C")
        si = el.element_index("Si")
        assert f[c] > 100 * f[si]
        assert f[el.element_index("H")] == 0.0  # implicit in heavy view

    def test_heavy_labels_exclude_hydrogen(self):
        assert el.element_index("H") not in el.heavy_labels()
        assert len(el.heavy_labels()) == el.N_ELEMENT_LABELS - 1

    def test_element_record(self):
        e = el.element(el.element_index("S"))
        assert e.symbol == "S" and e.aromatic_capable
