"""Unit tests for the SMARTS-lite wildcard pattern language."""

import numpy as np
import pytest

from repro.chem import elements as el
from repro.chem.smarts import (
    ANY_BOND_LABEL,
    WILDCARD_ATOM_LABEL,
    has_wildcards,
    pattern_from_smarts,
    wildcard_config,
)
from repro.chem.smiles import SmilesError


class TestParsing:
    def test_wildcard_atom(self):
        p = pattern_from_smarts("C*O")
        assert p.n_nodes == 3
        assert p.labels[1] == WILDCARD_ATOM_LABEL

    def test_bracket_wildcard(self):
        p = pattern_from_smarts("[*]C")
        assert p.labels[0] == WILDCARD_ATOM_LABEL

    def test_any_bond(self):
        p = pattern_from_smarts("C~O")
        assert p.edge_label(0, 1) == ANY_BOND_LABEL

    def test_plain_smiles_still_parses(self):
        p = pattern_from_smarts("c1ccccc1")
        assert p.n_nodes == 6
        assert all(l == el.element_index("C") for l in p.labels)
        assert not has_wildcards(p)

    def test_no_implicit_hydrogens(self):
        # pattern semantics: "C" constrains only the carbon itself
        p = pattern_from_smarts("C")
        assert p.n_nodes == 1

    def test_bracket_h_explicit(self):
        p = pattern_from_smarts("[OH]")
        assert p.n_nodes == 2

    def test_ring_closure_with_any_bond(self):
        p = pattern_from_smarts("C~1CCCCC~1")
        labels = [p.edge_label(int(u), int(v)) for u, v in p.edges]
        assert ANY_BOND_LABEL in labels

    @pytest.mark.parametrize("bad", ["", "C(", "~C", "C~~O", "C1CC", "[Zz]"])
    def test_malformed(self, bad):
        with pytest.raises(SmilesError):
            pattern_from_smarts(bad)


class TestHasWildcards:
    def test_detects_atom_wildcard(self):
        assert has_wildcards(pattern_from_smarts("C*"))

    def test_detects_bond_wildcard(self):
        assert has_wildcards(pattern_from_smarts("C~C"))

    def test_negative(self):
        assert not has_wildcards(pattern_from_smarts("C=C"))


class TestWildcardConfig:
    def test_sets_reserved_labels(self):
        cfg = wildcard_config()
        assert cfg.wildcard_label == WILDCARD_ATOM_LABEL
        assert cfg.wildcard_edge_label == ANY_BOND_LABEL

    def test_overrides_pass_through(self):
        cfg = wildcard_config(refinement_iterations=2)
        assert cfg.refinement_iterations == 2
