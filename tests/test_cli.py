"""End-to-end CLI tests."""

import json

import pytest

from repro.cli import main
from repro.io import read_smi


@pytest.fixture
def library(tmp_path):
    path = tmp_path / "lib.smi"
    assert main(["generate", "--out", str(path), "-n", "25", "--seed", "1"]) == 0
    return path


class TestGenerate:
    def test_generates_library(self, library):
        assert len(read_smi(library)) == 25

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.smi", tmp_path / "b.smi"
        main(["generate", "--out", str(a), "-n", "5", "--seed", "9"])
        main(["generate", "--out", str(b), "-n", "5", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestInfo:
    def test_prints_stats(self, library, capsys):
        assert main(["info", str(library)]) == 0
        out = capsys.readouterr().out
        assert "25 molecules" in out
        assert "mean_heavy_atoms" in out


class TestMatch:
    def test_query_file_match(self, library, tmp_path, capsys):
        queries = tmp_path / "q.smi"
        queries.write_text("CC ethyl\nCO c-o\n")
        assert main(["match", "--data", str(library), "--queries", str(queries)]) == 0
        out = capsys.readouterr().out
        assert "matches across 25 molecules x 2 queries" in out

    def test_inline_smarts_with_wildcards(self, library, capsys):
        assert main(
            ["match", "--data", str(library), "--smarts", "C~*", "--mode",
             "find-first"]
        ) == 0
        out = capsys.readouterr().out
        assert "find-first" in out

    def test_json_output_with_embeddings(self, library, tmp_path, capsys):
        out_json = tmp_path / "res.json"
        assert main(
            ["match", "--data", str(library), "--smarts", "CC",
             "--embeddings", "--json", str(out_json)]
        ) == 0
        payload = json.loads(out_json.read_text())
        assert payload["total_matches"] == len(payload["embeddings"])
        assert payload["matched_pairs"]

    def test_chunked_equals_unchunked(self, library, tmp_path):
        import io
        from contextlib import redirect_stdout

        def run(extra):
            buf = io.StringIO()
            with redirect_stdout(buf):
                main(["match", "--data", str(library), "--smarts", "CCO"] + extra)
            return buf.getvalue().splitlines()[0]

        assert run([]).split()[0] == run(["--chunk-size", "4"]).split()[0]


class TestSelftest:
    def test_selftest_runs(self, capsys):
        assert main(["selftest", "--molecules", "30", "--queries", "8"]) == 0
        assert "selftest ok" in capsys.readouterr().out
