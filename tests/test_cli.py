"""End-to-end CLI tests."""

import json

import pytest

from repro.cli import main
from repro.io import read_smi


@pytest.fixture
def library(tmp_path):
    path = tmp_path / "lib.smi"
    assert main(["generate", "--out", str(path), "-n", "25", "--seed", "1"]) == 0
    return path


class TestGenerate:
    def test_generates_library(self, library):
        assert len(read_smi(library)) == 25

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.smi", tmp_path / "b.smi"
        main(["generate", "--out", str(a), "-n", "5", "--seed", "9"])
        main(["generate", "--out", str(b), "-n", "5", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestInfo:
    def test_prints_stats(self, library, capsys):
        assert main(["info", str(library)]) == 0
        out = capsys.readouterr().out
        assert "25 molecules" in out
        assert "mean_heavy_atoms" in out


class TestMatch:
    def test_query_file_match(self, library, tmp_path, capsys):
        queries = tmp_path / "q.smi"
        queries.write_text("CC ethyl\nCO c-o\n")
        assert main(["match", "--data", str(library), "--queries", str(queries)]) == 0
        out = capsys.readouterr().out
        assert "matches across 25 molecules x 2 queries" in out

    def test_inline_smarts_with_wildcards(self, library, capsys):
        assert main(
            ["match", "--data", str(library), "--smarts", "C~*", "--mode",
             "find-first"]
        ) == 0
        out = capsys.readouterr().out
        assert "find-first" in out

    def test_json_output_with_embeddings(self, library, tmp_path, capsys):
        out_json = tmp_path / "res.json"
        assert main(
            ["match", "--data", str(library), "--smarts", "CC",
             "--embeddings", "--json", str(out_json)]
        ) == 0
        payload = json.loads(out_json.read_text())
        assert payload["total_matches"] == len(payload["embeddings"])
        assert payload["matched_pairs"]

    def test_chunked_equals_unchunked(self, library, tmp_path):
        import io
        from contextlib import redirect_stdout

        def run(extra):
            buf = io.StringIO()
            with redirect_stdout(buf):
                main(["match", "--data", str(library), "--smarts", "CCO"] + extra)
            return buf.getvalue().splitlines()[0]

        assert run([]).split()[0] == run(["--chunk-size", "4"]).split()[0]


class TestSelftest:
    def test_selftest_runs(self, capsys):
        assert main(["selftest", "--molecules", "30", "--queries", "8"]) == 0
        assert "selftest ok" in capsys.readouterr().out


@pytest.mark.robustness
class TestResilientRun:
    def test_requires_data_or_smoke(self, capsys):
        assert main(["resilient-run"]) == 2
        assert "required" in capsys.readouterr().err

    def test_basic_run(self, library, capsys):
        assert main(
            ["resilient-run", "--data", str(library), "--smarts", "CC",
             "--chunk-size", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "complete:" in out and "chunk(s)" in out

    def test_faulted_run_equals_clean(self, library, tmp_path, capsys):
        def run(extra, out_json):
            code = main(
                ["resilient-run", "--data", str(library), "--smarts", "CC",
                 "--chunk-size", "5", "--json", str(out_json)] + extra
            )
            capsys.readouterr()
            return code, json.loads(out_json.read_text())

        code, clean = run([], tmp_path / "clean.json")
        assert code == 0
        code, faulted = run(
            ["--fault-oom-rate", "0.6", "--fault-seed", "4",
             "--memory-budget-mb", "64", "--max-attempts", "8"],
            tmp_path / "faulted.json",
        )
        assert code == 0
        assert faulted["total_matches"] == clean["total_matches"]
        assert faulted["matched_pairs"] == clean["matched_pairs"]
        assert any(a["outcome"] == "oom" for a in faulted["attempts"]["attempts"])

    def test_checkpoint_resume(self, library, tmp_path, capsys):
        args = ["resilient-run", "--data", str(library), "--smarts", "CC",
                "--chunk-size", "8", "--checkpoint-dir", str(tmp_path / "ck")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 from checkpoint" in out

    def test_join_budget_flags(self, library, capsys):
        assert main(
            ["resilient-run", "--data", str(library), "--smarts", "C",
             "--chunk-size", "25", "--max-join-matches", "10"]
        ) == 0
        assert "complete:" in capsys.readouterr().out

    def test_smoke_mode(self, capsys):
        assert main(["resilient-run", "--smoke", "--fault-seed", "3"]) == 0
        assert "resilient smoke ok" in capsys.readouterr().out


@pytest.mark.perf_accel
class TestCalibrate:
    def test_sweep_prints_model_and_decisions(self, tmp_path, capsys):
        out_json = tmp_path / "model.json"
        assert main(
            ["calibrate", "--points", "1", "--repeats", "1",
             "--out", str(out_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "cost model (source: calibrated-seed0)" in out
        assert "dispatch decisions vs the static threshold" in out
        assert "static/fitted agreement:" in out
        assert "round-trip verified" in out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro.join_cost/1"

    def test_load_and_install_round_trips(self, tmp_path, capsys):
        from repro.accel.dispatch import get_cost_model, set_cost_model

        out_json = tmp_path / "model.json"
        again = tmp_path / "again.json"
        assert main(
            ["calibrate", "--points", "1", "--repeats", "1",
             "--out", str(out_json)]
        ) == 0
        capsys.readouterr()
        try:
            assert main(
                ["calibrate", "--load", str(out_json), "--out", str(again),
                 "--install"]
            ) == 0
            out = capsys.readouterr().out
            assert "installed as the process-wide dispatch model" in out
            assert get_cost_model().source == "calibrated-seed0"
        finally:
            set_cost_model(None)
        # Persisting is deterministic: load -> save reproduces the bytes.
        assert again.read_text() == out_json.read_text()


@pytest.mark.slo
class TestServeSimObservability:
    def test_dashboard_and_bundle_dump(self, tmp_path, capsys):
        assert main(
            ["serve-sim", "--clients", "1", "--requests", "2",
             "--dashboard", "--dump-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "repro serve dashboard" in out
        assert "goodput" in out
        bundles = sorted(tmp_path.glob("load-*.json"))
        assert bundles, "the load run must dump at least the manual bundle"
        from repro.obs.recorder import validate_bundle

        assert validate_bundle(json.loads(bundles[-1].read_text())) == []

    def test_chaos_dump_names_scenario_and_trigger(self, tmp_path, capsys):
        assert main(
            ["serve-sim", "--chaos", "--scenarios", "poison",
             "--dump-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bundles=[manual]" in out
        path = tmp_path / "poison-00-manual.json"
        assert path.is_file()
        bundle = json.loads(path.read_text())
        assert bundle["context"]["scenario"] == "poison"


@pytest.mark.slo
class TestTraceRequest:
    def make_bundle(self, tmp_path):
        assert main(
            ["serve-sim", "--chaos", "--scenarios", "straggler",
             "--dump-dir", str(tmp_path)]
        ) == 0
        return sorted(tmp_path.glob("straggler-*.json"))[-1]

    def test_traces_resume_chain_from_bundle(self, tmp_path, capsys):
        bundle = self.make_bundle(tmp_path)
        capsys.readouterr()
        assert main(
            ["trace-request", "req-000000", "--bundle", str(bundle)]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("req-000000:")
        assert "resume chain: req-000000" in out
        assert "admitted" in out and "finished" in out

    def test_unknown_request_lists_known_chains(self, tmp_path, capsys):
        bundle = self.make_bundle(tmp_path)
        capsys.readouterr()
        assert main(
            ["trace-request", "req-999999", "--bundle", str(bundle)]
        ) == 1
        err = capsys.readouterr().err
        assert "req-999999" in err and "req-000000" in err

    def test_rejects_invalid_bundle_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(
            ["trace-request", "req-000000", "--bundle", str(bad)]
        ) == 2
        assert "invalid bundle" in capsys.readouterr().err
