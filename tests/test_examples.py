"""Smoke tests: every example script must run and produce sane output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "Find All:" in out
        assert "aspirin" in out

    def test_atom_typing(self, capsys):
        out = run_example("atom_typing.py", capsys=capsys)
        assert "rule matches" in out
        assert "typed 13/13" in out  # aspirin fully typed

    def test_virtual_screening(self, capsys):
        out = run_example("virtual_screening.py", ["60"], capsys=capsys)
        assert "screened 60 molecules" in out
        assert "hit rates" in out

    def test_wildcard_patterns(self, capsys):
        out = run_example("wildcard_patterns.py", capsys=capsys)
        assert "embeddings" in out
        assert "C~N" in out

    def test_protonation_sites(self, capsys):
        out = run_example("protonation_sites.py", capsys=capsys)
        assert "protonation microstates" in out
        assert "glycine-like" in out

    @pytest.mark.slow
    def test_cross_device_tuning(self, capsys):
        out = run_example("cross_device_tuning.py", capsys=capsys)
        assert "nvidia-v100s" in out
