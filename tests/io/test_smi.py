"""Unit tests for .smi reading/writing."""

import pytest

from repro.chem.generator import MoleculeGenerator
from repro.chem.smiles import mol_from_smiles
from repro.io import read_smi, write_smi


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        mols = MoleculeGenerator(seed=3).generate_batch(10)
        path = tmp_path / "lib.smi"
        write_smi(path, mols, [f"m{i}" for i in range(10)])
        back = read_smi(path)
        assert len(back) == 10
        assert back[0].name == "m0"
        assert back[3].n_heavy_atoms == mols[3].n_heavy_atoms

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "x.smi"
        path.write_text("# header\n\nCCO ethanol\n\nc1ccccc1\tbenzene\n")
        mols = read_smi(path)
        assert [m.name for m in mols] == ["ethanol", "benzene"]

    def test_parse_error_includes_location(self, tmp_path):
        path = tmp_path / "bad.smi"
        path.write_text("CCO\nC(\n")
        with pytest.raises(ValueError, match="bad.smi:2"):
            read_smi(path)
