"""Unit tests for dataset serialization."""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.graph.labeled_graph import LabeledGraph
from repro.io.serialization import load_dataset, load_graphs, save_dataset, save_graphs


class TestGraphsRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        from repro.graph.generators import random_connected_graph

        graphs = [random_connected_graph(6, 2, 3, rng, 2) for _ in range(5)]
        graphs.append(LabeledGraph([7]))  # single node, no edges
        save_graphs(tmp_path / "g.npz", graphs)
        back = load_graphs(tmp_path / "g.npz")
        assert len(back) == 6
        for a, b in zip(graphs, back):
            assert a == b

    def test_empty_list(self, tmp_path):
        save_graphs(tmp_path / "e.npz", [])
        assert load_graphs(tmp_path / "e.npz") == []


class TestDatasetRoundtrip:
    def test_roundtrip(self, tmp_path):
        ds = build_benchmark(scale=1.0, n_queries=6, n_data_graphs=12, seed=3)
        save_dataset(tmp_path / "ds", ds)
        back = load_dataset(tmp_path / "ds")
        assert back.n_queries == 6 and back.n_data_graphs == 12
        assert back.scale == ds.scale and back.seed == ds.seed
        for a, b in zip(ds.queries, back.queries):
            assert a == b

    def test_metadata_mismatch_detected(self, tmp_path):
        ds = build_benchmark(scale=1.0, n_queries=6, n_data_graphs=12, seed=3)
        save_dataset(tmp_path / "ds", ds)
        # corrupt: overwrite queries with a different count
        save_graphs(tmp_path / "ds" / "queries.npz", ds.queries[:2])
        with pytest.raises(ValueError, match="metadata"):
            load_dataset(tmp_path / "ds")
