"""Property-based tests (hypothesis) on the core data structures and the
matching pipeline's invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.networkx_ref import networkx_count_matches
from repro.core.candidates import CandidateBitmap
from repro.core.csrgo import CSRGO
from repro.core.engine import find_all
from repro.core.signatures import SignaturePacking, SignatureState, reference_signatures
from repro.graph.batch import GraphBatch
from repro.graph.generators import random_connected_graph, random_subgraph_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.utils.bitops import pack_bool_rows, row_popcount, unpack_bitmap_rows

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def labeled_graphs(draw, max_nodes=12, n_labels=4, n_edge_labels=2):
    """Random connected labeled graph via seeded generator."""
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(2, max_nodes))
    extra = draw(st.integers(0, 5))
    rng = np.random.default_rng(seed)
    return random_connected_graph(n, extra, n_labels, rng, n_edge_labels)


@st.composite
def query_data_pairs(draw):
    """(query, data) with the query planted in the data graph."""
    data = draw(labeled_graphs(max_nodes=14))
    seed = draw(st.integers(0, 2**31 - 1))
    k = draw(st.integers(2, min(5, data.n_nodes)))
    rng = np.random.default_rng(seed)
    query, _ = random_subgraph_pattern(data, k, rng)
    return query, data


class TestBitmapProperties:
    @given(st.data())
    @settings(**SETTINGS)
    def test_pack_unpack_roundtrip(self, data):
        n_rows = data.draw(st.integers(1, 6))
        n_bits = data.draw(st.integers(1, 200))
        word_bits = data.draw(st.sampled_from([8, 16, 32, 64]))
        seed = data.draw(st.integers(0, 2**31 - 1))
        rows = np.random.default_rng(seed).random((n_rows, n_bits)) < 0.5
        packed = pack_bool_rows(rows, word_bits)
        np.testing.assert_array_equal(
            unpack_bitmap_rows(packed, n_bits, word_bits), rows
        )
        np.testing.assert_array_equal(row_popcount(packed), rows.sum(axis=1))

    @given(st.data())
    @settings(**SETTINGS)
    def test_and_row_never_adds_bits(self, data):
        n_bits = data.draw(st.integers(1, 150))
        seed = data.draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        bitmap = CandidateBitmap(1, n_bits)
        first = rng.random(n_bits) < 0.5
        second = rng.random(n_bits) < 0.5
        bitmap.set_row_bool(0, first)
        bitmap.and_row_bool(0, second)
        assert not (bitmap.row_bool(0) & ~first).any()


class TestSignatureProperties:
    @given(st.data())
    @settings(**SETTINGS)
    def test_packing_domination_equals_saturated_comparison(self, data):
        n_labels = data.draw(st.integers(1, 8))
        bits = data.draw(
            st.lists(st.integers(1, 8), min_size=n_labels, max_size=n_labels)
        )
        if sum(bits) > 64:
            bits = [1] * n_labels
        packing = SignaturePacking(np.asarray(bits))
        seed = data.draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 20, size=(1, n_labels))
        d = rng.integers(0, 20, size=(5, n_labels))
        packed_result = packing.dominates(packing.pack(d), packing.pack(q)[0])
        sat_result = np.all(packing.saturate(d) >= packing.saturate(q)[0], axis=1)
        np.testing.assert_array_equal(packed_result, sat_result)

    @given(labeled_graphs())
    @settings(**SETTINGS)
    def test_batched_signatures_match_reference(self, graph):
        c = CSRGO.from_graphs([graph])
        n_labels = graph.max_label + 1
        state = SignatureState(c, n_labels)
        radius = 3
        state.run_to(radius)
        np.testing.assert_array_equal(
            state.counts, reference_signatures(c, radius, n_labels)
        )

    @given(labeled_graphs())
    @settings(**SETTINGS)
    def test_signatures_monotone_in_radius(self, graph):
        c = CSRGO.from_graphs([graph])
        state = SignatureState(c, graph.max_label + 1)
        prev = state.counts.copy()
        for _ in range(4):
            state.step()
            assert (state.counts >= prev).all()
            prev = state.counts.copy()


class TestCsrgoProperties:
    @given(st.lists(labeled_graphs(max_nodes=8), min_size=1, max_size=4))
    @settings(**SETTINGS)
    def test_batch_roundtrip(self, graphs):
        c = CSRGO.from_batch(GraphBatch(graphs))
        for i, g in enumerate(graphs):
            assert c.extract_graph(i) == g

    @given(st.lists(labeled_graphs(max_nodes=8), min_size=1, max_size=4))
    @settings(**SETTINGS)
    def test_graph_of_node_consistent(self, graphs):
        c = CSRGO.from_batch(GraphBatch(graphs))
        for node in range(c.n_nodes):
            g = c.graph_of_node(node)
            lo, hi = c.graph_node_range(g)
            assert lo <= node < hi


class TestMatchingProperties:
    @given(query_data_pairs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sigmo_equals_oracle(self, pair):
        query, data = pair
        got = find_all([query], [data]).total_matches
        ref = networkx_count_matches(query, data)
        assert got == ref
        assert got >= 1  # planted pattern

    @given(query_data_pairs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_embeddings_are_valid_monomorphisms(self, pair):
        from repro.core.config import SigmoConfig

        query, data = pair
        res = find_all([query], [data], SigmoConfig(record_embeddings=True))
        seen = set()
        for rec in res.embeddings:
            mapping = tuple(rec.mapping.tolist())
            assert mapping not in seen  # no duplicates
            seen.add(mapping)
            assert len(set(mapping)) == len(mapping)  # injective
            for qi, di in enumerate(rec.mapping):
                assert data.labels[di] == query.labels[qi]
            for (u, v), lab in zip(query.edges, query.edge_labels):
                assert data.has_edge(int(rec.mapping[u]), int(rec.mapping[v]))
                assert data.edge_label(int(rec.mapping[u]), int(rec.mapping[v])) == lab

    @given(query_data_pairs(), st.integers(1, 6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_iteration_invariance(self, pair, iterations):
        from repro.core.config import SigmoConfig

        query, data = pair
        got = find_all(
            [query], [data], SigmoConfig(refinement_iterations=iterations)
        ).total_matches
        ref = networkx_count_matches(query, data)
        assert got == ref
