"""Induced-isomorphism mode (classic VF2 semantics extension)."""

import numpy as np
import pytest
from networkx.algorithms.isomorphism import GraphMatcher

from repro.core.config import SigmoConfig
from repro.core.engine import find_all
from repro.graph.generators import path_graph, ring_graph
from tests.conftest import random_case

INDUCED = SigmoConfig(induced=True)


def oracle_induced(q, d):
    gm = GraphMatcher(
        d.to_networkx(), q.to_networkx(),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    return sum(1 for _ in gm.subgraph_isomorphisms_iter())


class TestInducedSemantics:
    def test_path_not_induced_in_triangle(self):
        # a 3-path occurs in a triangle as a monomorphism but never as an
        # induced subgraph (the closing edge is extra)
        q = path_graph([0, 0, 0])
        d = ring_graph(3, [0, 0, 0])
        assert find_all([q], [d]).total_matches == 6
        assert find_all([q], [d], INDUCED).total_matches == 0

    def test_induced_subset_of_monomorphisms(self, rng):
        for _ in range(10):
            q, d, _ = random_case(rng)
            mono = find_all([q], [d]).total_matches
            induced = find_all([q], [d], INDUCED).total_matches
            assert induced <= mono

    def test_agrees_with_networkx(self, rng):
        for _ in range(20):
            q, d, _ = random_case(rng)
            assert find_all([q], [d], INDUCED).total_matches == oracle_induced(q, d)

    def test_exact_graph_still_matches(self):
        g = ring_graph(6, [0, 1, 2, 3, 4, 5])
        assert find_all([g], [g], INDUCED).total_matches == 1

    def test_iteration_invariance(self, rng):
        q, d, _ = random_case(rng)
        counts = {
            find_all(
                [q], [d], SigmoConfig(induced=True, refinement_iterations=s)
            ).total_matches
            for s in (1, 3, 6)
        }
        assert len(counts) == 1

    def test_embeddings_have_no_extra_edges(self, rng):
        cfg = SigmoConfig(induced=True, record_embeddings=True)
        for _ in range(5):
            q, d, _ = random_case(rng)
            res = find_all([q], [d], cfg)
            for rec in res.embeddings:
                mapping = rec.mapping
                for i in range(q.n_nodes):
                    for j in range(i + 1, q.n_nodes):
                        if not q.has_edge(i, j):
                            assert not d.has_edge(int(mapping[i]), int(mapping[j]))
