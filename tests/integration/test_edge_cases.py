"""Edge-case coverage: degenerate inputs, extreme configurations, and
boundary conditions across the pipeline."""

import numpy as np
import pytest

from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine, find_all, find_first
from repro.graph.generators import path_graph, ring_graph, star_graph
from repro.graph.labeled_graph import LabeledGraph


class TestDegenerateQueries:
    def test_query_larger_than_every_data_graph(self):
        q = path_graph([0] * 10)
        d = path_graph([0] * 3)
        assert find_all([q], [d]).total_matches == 0

    def test_single_node_query(self):
        # the paper's benchmark deletes single-atom patterns, but the
        # engine must still handle them: every label-0 node matches
        q = LabeledGraph([0])
        d = path_graph([0, 1, 0])
        assert find_all([q], [d]).total_matches == 2

    def test_query_equals_data(self):
        g = ring_graph(5, [0, 1, 2, 3, 4])
        assert find_all([g], [g]).total_matches == 1  # ring with distinct labels

    def test_no_label_overlap(self):
        res = find_all([path_graph([7, 8])], [path_graph([0, 1, 2])])
        assert res.total_matches == 0
        assert res.gmcr.n_pairs == 0
        assert res.join_result.stats.pairs_joined == 0

    def test_many_identical_queries(self):
        q = path_graph([1, 2])
        d = path_graph([1, 2, 1])
        res = find_all([q] * 5, [d])
        assert res.total_matches == 5 * 2

    def test_duplicate_data_graphs(self):
        q = path_graph([1, 2])
        d = path_graph([1, 2])
        res = find_all([q], [d, d, d])
        assert res.total_matches == 3


class TestDegenerateData:
    def test_data_with_isolated_nodes(self):
        d = LabeledGraph([1, 2, 1], [(0, 1)])  # node 2 isolated
        q = path_graph([1, 2])
        assert find_all([q], [d]).total_matches == 1

    def test_single_node_data_graphs(self):
        q = LabeledGraph([3])
        data = [LabeledGraph([3]), LabeledGraph([4]), LabeledGraph([3])]
        res = find_first([q], data)
        assert res.total_matches == 2

    def test_mixed_sizes(self):
        q = path_graph([1, 1])
        data = [LabeledGraph([1]), path_graph([1, 1]), ring_graph(20, [1] * 20)]
        res = find_all([q], data)
        assert res.total_matches == 0 + 2 + 40


class TestExtremeConfigs:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_all_word_widths(self, word_bits):
        q = path_graph([1, 2])
        d = ring_graph(6, [1, 1, 2, 1, 1, 2])
        res = find_all([q], [d], SigmoConfig(word_bits=word_bits))
        assert res.total_matches == 4

    def test_many_iterations_beyond_convergence(self):
        q = path_graph([1, 2])
        d = path_graph([1, 2, 1])
        res = find_all([q], [d], SigmoConfig(refinement_iterations=30))
        assert res.total_matches == 2

    def test_wide_label_vocabulary(self):
        # ~60 labels: the frequency-based packing must still fit 64 bits
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 60, size=40)
        d = LabeledGraph(labels, [(i, i + 1) for i in range(39)])
        q = LabeledGraph(labels[:3], [(0, 1), (1, 2)])
        res = find_all([q], [d], SigmoConfig(refinement_iterations=3))
        assert res.total_matches >= 1

    def test_zero_record_cap(self):
        q = path_graph([1, 1])
        d = ring_graph(6, [1] * 6)
        res = find_all(
            [q], [d], SigmoConfig(record_embeddings=True, max_embeddings_recorded=0)
        )
        assert res.total_matches == 12
        assert res.embeddings == []


class TestHighSymmetry:
    def test_clique_automorphism_explosion(self):
        # K5 in K6: 6!/(6-5)! = 720 embeddings
        k5 = LabeledGraph([0] * 5, [(a, b) for a in range(5) for b in range(a + 1, 5)])
        k6 = LabeledGraph([0] * 6, [(a, b) for a in range(6) for b in range(a + 1, 6)])
        assert find_all([k5], [k6]).total_matches == 720

    def test_star_in_star(self):
        q = star_graph(0, [1, 1])
        d = star_graph(0, [1, 1, 1, 1])
        # center fixed; choose+order 2 of 4 leaves = 12
        assert find_all([q], [d]).total_matches == 12

    def test_long_path_in_long_ring(self):
        n = 30
        q = path_graph([0] * 10)
        d = ring_graph(n, [0] * n)
        # each of n starting points, 2 directions
        assert find_all([q], [d]).total_matches == 2 * n


class TestBatchScale:
    def test_hundreds_of_tiny_graphs(self):
        q = path_graph([1, 2])
        data = [path_graph([1, 2]) if i % 3 == 0 else path_graph([2, 2])
                for i in range(300)]
        res = find_all([q], data)
        assert res.total_matches == 100

    def test_global_ids_never_leak_across_graphs(self):
        # a match can never span two data graphs even with identical labels
        q = path_graph([5, 5])
        data = [LabeledGraph([5]), LabeledGraph([5])]
        assert find_all([q], data).total_matches == 0
