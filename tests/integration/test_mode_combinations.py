"""Combinations of engine modes must compose without changing exactness."""

import numpy as np
import pytest
from networkx.algorithms.isomorphism import GraphMatcher

from repro.core.chunked import run_chunked
from repro.core.config import SigmoConfig
from repro.core.engine import find_all
from tests.conftest import random_case


def oracle(q, d, induced):
    gm = GraphMatcher(
        d.to_networkx(), q.to_networkx(),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    it = gm.subgraph_isomorphisms_iter() if induced else gm.subgraph_monomorphisms_iter()
    return sum(1 for _ in it)


@pytest.mark.parametrize("induced", [False, True])
@pytest.mark.parametrize("edge_signatures", [False, True])
@pytest.mark.parametrize("word_bits", [32, 64])
class TestModeMatrix:
    def test_exact_under_all_combinations(self, rng, induced, edge_signatures, word_bits):
        cfg = SigmoConfig(
            induced=induced,
            edge_signatures=edge_signatures,
            word_bits=word_bits,
            refinement_iterations=3,
        )
        for _ in range(5):
            q, d, _ = random_case(rng)
            assert find_all([q], [d], cfg).total_matches == oracle(q, d, induced)


class TestChunkedCombinations:
    def test_chunked_induced_edge_aware(self, rng):
        cfg = SigmoConfig(induced=True, edge_signatures=True)
        cases = [random_case(rng) for _ in range(6)]
        queries = [c[0] for c in cases[:2]]
        data = [c[1] for c in cases]
        full = find_all(queries, data, cfg).total_matches
        chunked = run_chunked(queries, data, 2, config=cfg).total_matches
        assert full == chunked

    def test_wildcards_with_edge_signatures_and_chunking(self):
        from repro.chem.smarts import pattern_from_smarts, wildcard_config
        from repro.chem.smiles import mol_from_smiles

        mols = [
            mol_from_smiles(s).graph()
            for s in ("CC(=O)Oc1ccccc1", "CCN", "O=S(=O)(N)c1ccccc1")
        ]
        pattern = pattern_from_smarts("*~C(=O)*")
        cfg_plain = wildcard_config()
        cfg_full = wildcard_config(edge_signatures=True)
        base = find_all([pattern], mols, cfg_plain).total_matches
        assert find_all([pattern], mols, cfg_full).total_matches == base
        assert run_chunked([pattern], mols, 1, config=cfg_full).total_matches == base
