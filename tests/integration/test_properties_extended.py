"""Property-based tests for the extension modules (chunking, canonical
forms, fingerprints, BFS join, wildcards)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.chunked import run_chunked
from repro.core.config import SigmoConfig
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine
from repro.core.filtering import IterativeFilter
from repro.core.join import run_join
from repro.core.join_bfs import run_bfs_join
from repro.core.mapping import build_gmcr
from repro.graph.canonical import canonical_form, relabel
from repro.graph.generators import random_connected_graph, random_subgraph_pattern

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workloads(draw, n_data_max=6):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_data = draw(st.integers(2, n_data_max))
    data = [
        random_connected_graph(int(rng.integers(4, 12)), 3, 3, rng, 2)
        for _ in range(n_data)
    ]
    host = data[int(rng.integers(0, n_data))]
    query, _ = random_subgraph_pattern(host, int(rng.integers(2, 5)), rng)
    return [query], data


class TestChunkingProperties:
    @given(workloads(), st.integers(1, 4))
    @settings(**SETTINGS)
    def test_chunking_invariant(self, workload, chunk_size):
        queries, data = workload
        full = SigmoEngine(queries, data).run()
        chunked = run_chunked(queries, data, chunk_size)
        assert chunked.total_matches == full.total_matches


class TestCanonicalProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(3, 10))
    @settings(**SETTINGS)
    def test_canonical_form_permutation_invariant(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(n, 3, 3, rng, 2)
        perm = rng.permutation(n)
        assert canonical_form(g) == canonical_form(relabel(g, perm))


class TestBfsJoinProperties:
    @given(workloads(n_data_max=3))
    @settings(**SETTINGS)
    def test_bfs_equals_dfs(self, workload):
        queries, data = workload
        config = SigmoConfig(refinement_iterations=2)
        q = CSRGO.from_graphs(queries)
        d = CSRGO.from_graphs(data)
        fr = IterativeFilter(q, d, config).run()
        gmcr_a = build_gmcr(fr.bitmap, q, d)
        gmcr_b = build_gmcr(fr.bitmap, q, d)
        dfs = run_join(q, d, fr.bitmap, gmcr_a, config)
        bfs = run_bfs_join(q, d, fr.bitmap, gmcr_b, config)
        assert dfs.total_matches == bfs.total_matches
        np.testing.assert_array_equal(dfs.pair_matches, bfs.pair_matches)


class TestWildcardProperties:
    @given(workloads(n_data_max=3), st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_wildcarding_monotone(self, workload, seed):
        """Replacing a query node's label with the wildcard can only add
        matches (superset property)."""
        from repro.chem.smarts import WILDCARD_ATOM_LABEL, wildcard_config
        from repro.graph.labeled_graph import LabeledGraph

        (query,), data = workload
        rng = np.random.default_rng(seed)
        labels = query.labels.copy()
        labels[int(rng.integers(0, labels.size))] = WILDCARD_ATOM_LABEL
        wild = LabeledGraph(labels, query.edges, query.edge_labels)
        cfg = wildcard_config(refinement_iterations=3)
        base = SigmoEngine([query], data, cfg).run().total_matches
        wilded = SigmoEngine([wild], data, cfg).run().total_matches
        assert wilded >= base
