"""Qualitative paper-claim checks: the shapes the evaluation section reports.

These are the cheap, always-on versions of the benchmark harness: each test
asserts one directional claim from the paper on a small calibrated dataset.
The full quantitative reproductions live in benchmarks/.
"""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.device.counters import counters_from_result
from repro.device.spec import DEVICES
from repro.perf.model import PerformanceModel


@pytest.fixture(scope="module")
def sweep(small_dataset):
    engine = SigmoEngine(small_dataset.queries, small_dataset.data)
    return engine, engine.run_iteration_sweep([1, 2, 4, 6])


class TestFig5Claims:
    def test_first_iteration_prunes_most(self, sweep):
        """'A significant reduction in candidate sets is observed after the
        first iteration.'"""
        _, results = sweep
        stats = results[6].filter_result.iterations
        drop_1_2 = stats[0].total_candidates - stats[1].total_candidates
        later_drops = stats[1].total_candidates - stats[-1].total_candidates
        assert drop_1_2 > 0
        assert drop_1_2 >= later_drops * 0.5

    def test_candidates_plateau(self, sweep):
        _, results = sweep
        stats = results[6].filter_result.iterations
        totals = [s.total_candidates for s in stats]
        # relative marginal pruning shrinks towards the end
        first_rel = (totals[0] - totals[1]) / totals[0]
        last_rel = (totals[-2] - totals[-1]) / totals[-2]
        assert last_rel < first_rel


class TestFig6Claims:
    def test_join_work_decreases_with_iterations(self, sweep):
        _, results = sweep
        visits = {
            s: r.join_result.stats.candidate_visits for s, r in results.items()
        }
        assert visits[1] > visits[2] >= visits[6]

    def test_filter_cost_grows_with_iterations(self, sweep):
        _, results = sweep
        # modeled filter time grows with iteration count on any device
        engine = sweep[0]
        model = PerformanceModel(DEVICES["nvidia-v100s"])
        f_times = {}
        for s, r in results.items():
            cnt = counters_from_result(r, engine.query, engine.data)
            f_times[s] = model.estimate(cnt).filter_seconds
        assert f_times[1] < f_times[2] < f_times[6]


class TestFig10Claims:
    def test_sigmo_faster_than_pairwise_vf3(self, small_dataset):
        """Batching beats one-pair-at-a-time state-space search."""
        import time

        from repro.baselines.vf2 import vf3_batch

        queries = small_dataset.queries[:8]
        data = small_dataset.data[:20]
        t0 = time.perf_counter()
        sigmo_matches = SigmoEngine(queries, data).run().total_matches
        t_sigmo = time.perf_counter() - t0
        t0 = time.perf_counter()
        vf3_matches = vf3_batch(queries, data)
        t_vf3 = time.perf_counter() - t0
        assert sigmo_matches == vf3_matches
        # SIGMo must win on batches (the paper reports 33.6x on GPU; on the
        # CPU substrate we only assert the direction)
        assert t_sigmo < t_vf3

    def test_cuts_like_finds_more_raw_matches(self, small_dataset):
        """'cuTS does not support labels, leading to a higher number of
        matches.'"""
        from repro.baselines.cuts_like import CutsLikeMatcher
        from repro.baselines.vf2 import VF3Matcher

        total_labeled = 0
        total_blind = 0
        for q in small_dataset.queries[:5]:
            for d in small_dataset.data[:10]:
                total_labeled += VF3Matcher(q, d).count_all()
                total_blind += CutsLikeMatcher(q, d).count_all()
        assert total_blind > total_labeled


class TestFig11Claims:
    def test_device_ordering_at_fixed_iterations(self, sweep):
        """AMD fastest, Intel slowest at >= 2 iterations (section 5.3)."""
        engine, results = sweep
        cnt = counters_from_result(results[6], engine.query, engine.data)
        cnt = cnt.scaled(500)
        totals = {
            name: PerformanceModel(DEVICES[name]).estimate(cnt).total_seconds
            for name in ("nvidia-v100s", "amd-mi100", "intel-max1100")
        }
        assert totals["amd-mi100"] < totals["nvidia-v100s"] < totals["intel-max1100"]

    def test_intel_optimum_earlier(self, sweep):
        """Intel's weak compute makes extra refinement iterations more
        expensive, so its best iteration count is earlier (paper: 2 vs 5-6)."""
        engine, results = sweep
        best = {}
        for name in ("nvidia-v100s", "intel-max1100"):
            model = PerformanceModel(DEVICES[name])
            times = {}
            for s, r in results.items():
                cnt = counters_from_result(r, engine.query, engine.data).scaled(500)
                times[s] = model.estimate(cnt).total_seconds
            best[name] = min(times, key=times.get)
        assert best["intel-max1100"] <= best["nvidia-v100s"]


class TestFindFirstClaims:
    def test_find_first_cheaper_than_find_all(self, small_dataset):
        # The claim is about the paper's DFS search (abandon the pair at
        # the first embedding), so pin the reference backend: the
        # vectorized backends agree on results but pay block-granular
        # work, so their Find First visit counters can tie Find All on
        # tiny pairs (see repro.accel.tabular).
        engine = SigmoEngine(
            small_dataset.queries,
            small_dataset.data,
            SigmoConfig(join_backend="dfs"),
        )
        fa = engine.run()
        ff = engine.run(mode="find-first")
        assert (
            ff.join_result.stats.candidate_visits
            < fa.join_result.stats.candidate_visits
        )
        assert ff.total_matches <= fa.total_matches
