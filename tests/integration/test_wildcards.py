"""End-to-end wildcard matching (the paper's future-work extension)."""

import numpy as np
import pytest
from networkx.algorithms.isomorphism import GraphMatcher

from repro.chem.smarts import (
    ANY_BOND_LABEL,
    WILDCARD_ATOM_LABEL,
    pattern_from_smarts,
    wildcard_config,
)
from repro.chem.smiles import mol_from_smiles
from repro.core.engine import SigmoEngine

MOLECULES = [
    "CC(=O)Oc1ccccc1C(=O)O",
    "CC(=O)Nc1ccc(O)cc1",
    "CCOC(=O)C",
    "c1ccncc1CCl",
    "CS(=O)(=O)NCC1CCCO1",
]


def oracle_count(pattern, data):
    """NetworkX oracle with wildcard-aware matchers."""
    def node_match(d_attrs, q_attrs):
        return (
            q_attrs["label"] == WILDCARD_ATOM_LABEL
            or d_attrs["label"] == q_attrs["label"]
        )

    def edge_match(d_attrs, q_attrs):
        return (
            q_attrs["label"] == ANY_BOND_LABEL
            or d_attrs["label"] == q_attrs["label"]
        )

    gm = GraphMatcher(
        data.to_networkx(), pattern.to_networkx(),
        node_match=node_match, edge_match=edge_match,
    )
    return sum(1 for _ in gm.subgraph_monomorphisms_iter())


@pytest.fixture(scope="module")
def mols():
    return [mol_from_smiles(s).graph() for s in MOLECULES]


class TestWildcardMatching:
    @pytest.mark.parametrize(
        "smarts",
        ["C*O", "C~O", "*~*", "C(=O)*", "c1ccccc1*", "C~N", "*C(=O)*", "O~*~O"],
    )
    def test_agrees_with_oracle(self, smarts, mols):
        pattern = pattern_from_smarts(smarts)
        engine = SigmoEngine([pattern], mols, wildcard_config())
        got = engine.run().total_matches
        ref = sum(oracle_count(pattern, m) for m in mols)
        assert got == ref

    def test_wildcard_superset_of_concrete(self, mols):
        """`C*` must match at least everything `CC` and `CO` match."""
        cfg = wildcard_config()
        wild = SigmoEngine([pattern_from_smarts("C*")], mols, cfg).run().total_matches
        cc = SigmoEngine([pattern_from_smarts("CC")], mols, cfg).run().total_matches
        co = SigmoEngine([pattern_from_smarts("CO")], mols, cfg).run().total_matches
        assert wild >= cc + co

    def test_any_bond_superset_of_single(self, mols):
        cfg = wildcard_config()
        any_b = SigmoEngine([pattern_from_smarts("C~O")], mols, cfg).run().total_matches
        single = SigmoEngine([pattern_from_smarts("CO")], mols, cfg).run().total_matches
        double = SigmoEngine([pattern_from_smarts("C=O")], mols, cfg).run().total_matches
        assert any_b == single + double  # molecules only use single/double C-O

    def test_iteration_invariance_with_wildcards(self, mols):
        pattern = pattern_from_smarts("*C(=O)*")
        counts = set()
        for s in (1, 2, 4, 6):
            cfg = wildcard_config(refinement_iterations=s)
            counts.add(SigmoEngine([pattern], mols, cfg).run().total_matches)
        assert len(counts) == 1

    def test_filter_still_prunes_wildcard_neighbors(self, mols):
        """Wildcard nodes keep their own neighborhood constraints: a
        wildcard bonded to two oxygens only matches atoms with >= 2 O
        neighbors."""
        pattern = pattern_from_smarts("O~*~O")
        engine = SigmoEngine([pattern], mols, wildcard_config())
        result = engine.run()
        ref = sum(oracle_count(pattern, m) for m in mols)
        assert result.total_matches == ref
        # the filter must cut the wildcard row below "all data nodes"
        wildcard_row = int(np.nonzero(engine.query.labels == WILDCARD_ATOM_LABEL)[0][0])
        assert (
            result.filter_result.bitmap.row_counts()[wildcard_row]
            < engine.data.n_nodes
        )

    def test_find_first_with_wildcards(self, mols):
        pattern = pattern_from_smarts("C~N")
        engine = SigmoEngine([pattern], mols, wildcard_config())
        ff = engine.run(mode="find-first")
        expected = sum(1 for m in mols if oracle_count(pattern, m) > 0)
        assert ff.total_matches == expected

    def test_property_random_patterns(self, rng, mols):
        """Randomized wildcardizations of mined patterns stay oracle-exact."""
        from repro.graph.generators import random_subgraph_pattern
        from repro.graph.labeled_graph import LabeledGraph

        for _ in range(10):
            host = mols[int(rng.integers(0, len(mols)))]
            base, _ = random_subgraph_pattern(host, int(rng.integers(2, 5)), rng)
            labels = base.labels.copy()
            # wildcard a random node
            labels[int(rng.integers(0, labels.size))] = WILDCARD_ATOM_LABEL
            edge_labels = base.edge_labels.copy()
            if edge_labels.size and rng.random() < 0.5:
                edge_labels[int(rng.integers(0, edge_labels.size))] = ANY_BOND_LABEL
            pattern = LabeledGraph(labels, base.edges, edge_labels)
            engine = SigmoEngine([pattern], mols, wildcard_config())
            assert engine.run().total_matches == sum(
                oracle_count(pattern, m) for m in mols
            )
