"""End-to-end integration tests over the calibrated benchmark dataset."""

import numpy as np
import pytest

from repro.baselines.vf2 import VF3Matcher
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine


@pytest.fixture(scope="module")
def engine(small_dataset):
    return SigmoEngine(small_dataset.queries, small_dataset.data)


@pytest.fixture(scope="module")
def result(engine):
    return engine.run()


class TestEndToEnd:
    def test_finds_matches(self, result):
        assert result.total_matches > 0

    def test_agrees_with_vf3_per_pair(self, small_dataset, engine, result):
        """SIGMo's per-pair counts equal an independent matcher's."""
        pair_counts = {}
        gmcr = result.gmcr
        for d_idx in range(gmcr.n_data_graphs):
            sl = gmcr.pair_slice(d_idx)
            for q_idx, n in zip(
                gmcr.query_graph_indices[sl], result.join_result.pair_matches[sl]
            ):
                pair_counts[(d_idx, int(q_idx))] = int(n)
        # check a sample of pairs including non-GMCR ones (must be 0 matches)
        rng = np.random.default_rng(0)
        checked = 0
        for d_idx in rng.choice(len(small_dataset.data), 12, replace=False):
            for q_idx in rng.choice(len(small_dataset.queries), 6, replace=False):
                ref = VF3Matcher(
                    small_dataset.queries[int(q_idx)], small_dataset.data[int(d_idx)]
                ).count_all()
                got = pair_counts.get((int(d_idx), int(q_idx)), 0)
                assert got == ref, (d_idx, q_idx)
                checked += 1
        assert checked == 72

    def test_total_equals_pair_sum(self, result):
        assert result.total_matches == int(result.join_result.pair_matches.sum())

    def test_iteration_count_does_not_change_results(self, engine):
        totals = {
            s: engine.run(config=SigmoConfig(refinement_iterations=s)).total_matches
            for s in (1, 3, 6)
        }
        assert len(set(totals.values())) == 1

    def test_word_width_does_not_change_results(self, engine, result):
        res32 = engine.run(config=SigmoConfig(word_bits=32))
        assert res32.total_matches == result.total_matches

    def test_candidate_order_does_not_change_results(self, engine, result):
        res = engine.run(config=SigmoConfig(candidate_order="bfs"))
        assert res.total_matches == result.total_matches

    def test_find_first_counts_matched_pairs(self, engine, result):
        ff = engine.run(mode="find-first")
        matched_pairs = sum(
            1 for n in result.join_result.pair_matches if n > 0
        )
        assert ff.total_matches == matched_pairs
        assert ff.gmcr.matched.sum() == matched_pairs

    def test_memory_bitmap_share_grows_with_queries(self, small_dataset):
        # paper 5.1.3: at full scale (3,413 query nodes) the bitmap is ~80%
        # of the footprint.  Bitmap bytes scale with nq x nd while graphs
        # scale with nd, so the share must grow with the query count; the
        # full-scale 80% figure itself is asserted from the closed-form
        # footprint in tests/device/test_memory.py.
        few = SigmoEngine(small_dataset.queries[:4], small_dataset.data).run()
        many = SigmoEngine(small_dataset.queries, small_dataset.data).run()
        assert (
            many.memory.fractions()["candidate_bitmap"]
            > few.memory.fractions()["candidate_bitmap"]
        )

    def test_deterministic_across_runs(self, engine, result):
        again = engine.run()
        assert again.total_matches == result.total_matches
        np.testing.assert_array_equal(
            again.join_result.pair_matches, result.join_result.pair_matches
        )
