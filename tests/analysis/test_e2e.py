"""End-to-end: the full Find-All pipeline under ``REPRO_CHECK=1`` raises
no contract violation, the kernel traces stay race-free, and the
``repro analyze`` CLI gate passes against the committed baseline."""

import json

import numpy as np
import pytest

from repro.analysis import contracts
from repro.analysis.races import trace_join_races, trace_refine_races
from repro.chem.datasets import build_benchmark
from repro.cli import main
from repro.core.csrgo import CSRGO
from repro.core.engine import SigmoEngine

pytestmark = pytest.mark.analysis


@pytest.fixture(scope="module")
def dataset():
    return build_benchmark(n_queries=5, n_data_graphs=12, seed=3)


def test_find_all_with_checks_enabled(dataset, monkeypatch):
    monkeypatch.setenv(contracts.ENV_FLAG, "1")
    assert contracts.enabled()
    # Engine construction validates both CSR-GO batches; run() validates
    # the bitmap after every refinement iteration, the filter result, and
    # the GMCR.  Any violation raises, failing this test.
    engine = SigmoEngine(dataset.queries, dataset.data)
    checked = engine.run(mode="find-all")
    first = engine.run(mode="find-first")
    assert checked.total_matches >= first.total_matches >= 0

    # Checks must observe, never alter: identical results with checks off.
    monkeypatch.delenv(contracts.ENV_FLAG)
    plain = SigmoEngine(dataset.queries, dataset.data).run(mode="find-all")
    assert plain.total_matches == checked.total_matches
    assert sorted(plain.matched_pairs()) == sorted(checked.matched_pairs())


def test_kernel_traces_race_free_with_checks_enabled(dataset, monkeypatch):
    monkeypatch.setenv(contracts.ENV_FLAG, "1")
    query = CSRGO.from_graphs(dataset.queries)
    data = CSRGO.from_graphs(dataset.data)
    refine = trace_refine_races(query, data)
    join = trace_join_races(query, data)
    assert not refine.has_conflicts, [c.format() for c in refine.conflicts]
    assert not join.has_conflicts, [c.format() for c in join.conflicts]


def test_checked_sweep_is_monotone(dataset, monkeypatch):
    # More refinement iterations never add matches; with REPRO_CHECK on,
    # every intermediate bitmap is also contract-validated.
    monkeypatch.setenv(contracts.ENV_FLAG, "1")
    engine = SigmoEngine(dataset.queries, dataset.data)
    results = engine.run_iteration_sweep([1, 3, 6])
    totals = [results[s].total_matches for s in (1, 3, 6)]
    assert totals[0] == totals[1] == totals[2]  # filtering is exact-safe
    per_node = [
        results[s].filter_result.iterations[-1].candidates_per_node.sum()
        for s in (1, 3, 6)
    ]
    assert np.all(np.diff(per_node) <= 0)


def test_cli_analyze_gate_passes(capsys):
    # Static gate: syntactic + dataflow lint against the committed
    # baseline (dynamic pass is covered above and by `make check`;
    # skipping keeps this test quick).
    rc = main(["analyze", "--dataflow", "--no-dynamic", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["ok"] is True
    assert payload["new_findings"] == []
    assert payload["baseline_entries"] == len(payload["findings"])


def test_cli_analyze_flags_new_findings(tmp_path, capsys):
    bad = tmp_path / "snippet.py"
    bad.write_text(
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.uint64(x) << np.int64(1)\n"
    )
    rc = main(["analyze", str(bad), "--no-dynamic", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["ok"] is False
    assert [f["rule"] for f in payload["new_findings"]] == ["SGL001"]
