"""Per-rule lint fixtures: each rule fires exactly once on its bad
snippet and not at all on the corresponding clean snippet."""

import pytest

from repro.analysis.findings import Severity
from repro.analysis.linter import lint_source
from repro.analysis.rules import RULES

pytestmark = pytest.mark.analysis


def count(rule_id, source):
    return sum(1 for f in lint_source(source) if f.rule == rule_id)


# (rule id, bad snippet that fires exactly once, clean snippet)
CASES = {
    "SGL001": (
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.uint64(x) << np.int64(2)\n",
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.uint64(x) << np.uint64(2)\n",
    ),
    "SGL002": (
        "import numpy as np\n"
        "def f(n):\n"
        "    return np.zeros(n)\n",
        "import numpy as np\n"
        "def f(n):\n"
        "    return np.zeros(n, dtype=np.uint64)\n",
    ),
    "SGL003": (
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(xs):\n"
        "    for x in xs:\n"
        "        x + 1\n",
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(xs):\n"
        "    return [x + 1 for x in xs]\n"
        "def g(xs):\n"
        "    for x in xs:\n"
        "        x + 1\n",
    ),
    "SGL004": (
        "def f():\n"
        "    for x in {1, 2, 3}:\n"
        "        x + 1\n",
        "def f():\n"
        "    for x in sorted({1, 2, 3}):\n"
        "        x + 1\n",
    ),
    "SGL005": (
        "def f(g):\n"
        "    try:\n"
        "        g()\n"
        "    except:\n"
        "        raise ValueError('boom')\n",
        "def f(g):\n"
        "    try:\n"
        "        g()\n"
        "    except ValueError:\n"
        "        raise\n",
    ),
    "SGL006": (
        "def f(g):\n"
        "    try:\n"
        "        g()\n"
        "    except ValueError:\n"
        "        pass\n",
        "def f(g, log):\n"
        "    try:\n"
        "        g()\n"
        "    except ValueError as exc:\n"
        "        log(exc)\n",
    ),
    "SGL007": (
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(x):\n"
        "    return min(x, 255)\n",
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(x, cap):\n"
        "    return min(x, cap)\n"
        "def g(x):\n"
        "    return min(x, 255)\n",
    ),
    "SGL008": (
        "import json\n"
        "def f(x):\n"
        "    return x + 1\n",
        "import json\n"
        "def f(x):\n"
        "    return json.dumps(x)\n",
    ),
    "SGL009": (
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(xs):\n"
        "    visits = 0\n"
        "    visits += 1\n"
        "    return visits\n",
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(xs, counters):\n"
        "    counters.visits += 1\n"
        "    total = 0\n"
        "    total += 1\n"
        "    return total\n"
        "def g():\n"
        "    visits = 0\n"
        "    visits += 1\n"
        "    return visits\n",
    ),
    "SGL010": (
        "def f(filter_result, gmcr, config):\n"
        "    return run_join(filter_result, gmcr, config)\n",
        "def f(session, data):\n"
        "    return session.match(data)\n",
    ),
    # SGL011-SGL014 are dataflow rules (repro.analysis.dataflow); the
    # snippets flow through lint_source's dataflow pass.
    "SGL011": (
        "import numpy as np\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.uint64)\n"
        "    b = np.ones(n, dtype=np.int64)\n"
        "    return a + b\n",  # uint64+int64 silently promotes to float64
        "import numpy as np\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.uint64)\n"
        "    b = np.ones(n, dtype=np.uint64)\n"
        "    return a + b\n",
    ),
    "SGL012": (
        "import numpy as np\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.float64)\n"
        "    return a.astype(np.int32)\n",  # drops the fractional part
        "import numpy as np\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.int32)\n"
        "    return a.astype(np.int64)\n",
    ),
    "SGL013": (
        "from repro.analysis.markers import kernel\n"
        "@kernel(writes=())\n"
        "def f(out):\n"
        "    out[0] = 1\n",  # stores outside the declared write set
        "from repro.analysis.markers import kernel\n"
        "@kernel(writes=('out',))\n"
        "def f(out):\n"
        "    out[0] = 1\n",
    ),
    "SGL014": (
        "import numpy as np\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(mask):\n"
        "    return np.packbits(mask)\n",  # raw numpy bypasses repro.xp
        "from repro import xp\n"
        "from repro.analysis.markers import kernel\n"
        "@kernel\n"
        "def f(mask):\n"
        "    return xp.count_nonzero(mask)\n",
    ),
}


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_bad_fixture_fires_exactly_once(rule_id):
    bad, _ = CASES[rule_id]
    assert count(rule_id, bad) == 1


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_clean_fixture_does_not_fire(rule_id):
    _, clean = CASES[rule_id]
    assert count(rule_id, clean) == 0


def test_catalog_covers_all_cases():
    assert set(CASES) == set(RULES)
    assert len(RULES) >= 6
    for rule_id, rule in RULES.items():
        assert rule.rule == rule_id
        assert isinstance(rule.severity, Severity)


def test_mixed_sign_shift_detects_astype_and_string_dtypes():
    src = (
        "import numpy as np\n"
        "def f(a, b):\n"
        "    return a.astype(np.uint64) >> b.astype('int64')\n"
    )
    assert count("SGL001", src) == 1


def test_signed_mask_construction_flagged():
    # np.int64(1) << width silently overflows to 0 at width 64; constant
    # widths are statically checkable and stay allowed.
    bad = "import numpy as np\ndef f(w):\n    return np.int64(1) << w\n"
    ok = "import numpy as np\ndef f():\n    return np.int64(1) << 3\n"
    assert count("SGL001", bad) == 1
    assert count("SGL001", ok) == 0


def test_python_int_shift_not_flagged():
    src = "import numpy as np\ndef f(x):\n    return np.uint64(x) << 7\n"
    assert count("SGL001", src) == 0


def test_set_comprehension_iteration_flagged():
    src = "def f(ys):\n    return [y for y in set(ys)]\n"
    assert count("SGL004", src) == 1


def test_bare_silent_handler_fires_both_rules():
    src = "def f(g):\n    try:\n        g()\n    except:\n        pass\n"
    findings = lint_source(src)
    assert {f.rule for f in findings} == {"SGL005", "SGL006"}


def test_unused_import_exempt_in_init_modules():
    src = "from json import dumps\n"
    assert any(f.rule == "SGL008" for f in lint_source(src, "pkg/mod.py"))
    assert not lint_source(src, "pkg/__init__.py")


def test_inline_allow_suppresses_single_rule():
    flagged = "import numpy as np\nx = np.zeros(3)\n"
    allowed = "import numpy as np\nx = np.zeros(3)  # sigmo: allow=SGL002\n"
    wildcard = "import numpy as np\nx = np.zeros(3)  # sigmo: allow=*\n"
    other = "import numpy as np\nx = np.zeros(3)  # sigmo: allow=SGL001\n"
    assert count("SGL002", flagged) == 1
    assert count("SGL002", allowed) == 0
    assert count("SGL002", wildcard) == 0
    assert count("SGL002", other) == 1


def test_finding_structure():
    (finding,) = lint_source(
        "import numpy as np\nx = np.zeros(3)\n", "core/demo.py"
    )
    assert finding.rule == "SGL002"
    assert finding.file == "core/demo.py"
    assert finding.line == 2
    assert finding.text == "x = np.zeros(3)"
    assert "core/demo.py:2" in finding.format()
    payload = finding.to_dict()
    assert payload["rule"] == "SGL002"
    assert payload["severity"] == "warning"
