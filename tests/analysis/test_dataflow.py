"""Dataflow analyzer: lattice laws, NEP 50 promotion, seeded bad kernels
for SGL011-SGL014, interprocedural effect summaries, the static-vs-dynamic
shadow-memory coverage gate, and the backend-surface report."""

import itertools
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import contracts
from repro.analysis.dataflow import (
    EffectIndex,
    analyze_source,
    effect_coverage,
    render_report,
    run_dataflow,
    summarize_function,
)
from repro.analysis.dataflow.lattice import (
    MAX_WIDTH,
    PY_BOOL,
    PY_FLOAT,
    PY_INT,
    TOP,
    AbstractDtype,
    AbstractRank,
    AbstractValue,
    promote,
    promote_names,
)
from repro.analysis.linter import repo_src_root
from repro.analysis.races import run_race_checks
from repro.xp import get_backend

pytestmark = pytest.mark.analysis

KERNEL_IMPORT = "from repro.analysis.markers import kernel\n"


def rules_of(source, filename="mod.py"):
    return [(f.rule, f.line) for f in analyze_source(source, filename).findings]


# -- lattice laws --------------------------------------------------------------

_SAMPLE_DTYPES = [
    AbstractDtype.of("int32"),
    AbstractDtype.of("uint64"),
    AbstractDtype.of("float64", "float32"),
    AbstractDtype.of(PY_INT),
    AbstractDtype.top(),
    AbstractDtype.bottom(),
]


@pytest.mark.parametrize(
    "a,b", list(itertools.product(_SAMPLE_DTYPES, repeat=2))
)
def test_dtype_join_commutative_and_absorbing(a, b):
    assert a.join(b) == b.join(a)
    # join is an upper bound: joining the result again changes nothing
    assert a.join(b).join(a) == a.join(b)
    assert a.join(a) == a  # idempotent


def test_dtype_join_collapses_to_top_beyond_max_width():
    wide = AbstractDtype.of(*[f"t{i}" for i in range(MAX_WIDTH)])
    assert not wide.is_top
    assert wide.join(AbstractDtype.of("one_more")).is_top


def test_top_absorbs_everything():
    assert AbstractDtype.top().join(AbstractDtype.of("int8")).is_top
    assert AbstractRank.top().join(AbstractRank.of(1)).is_top
    assert TOP.join(AbstractValue.scalar("int64")) == TOP


def test_rank_broadcast_is_max():
    a = AbstractRank.of(0, 1)
    b = AbstractRank.of(2)
    assert a.broadcast(b) == AbstractRank.of(2)
    assert a.broadcast(AbstractRank.top()).is_top


# -- NEP 50 promotion ----------------------------------------------------------


@pytest.mark.parametrize(
    "a,b",
    [
        ("int32", "int64"),
        ("uint8", "int16"),
        ("uint64", "int64"),
        ("float32", "float64"),
        ("bool", "uint8"),
        (PY_INT, "int8"),
        (PY_FLOAT, "float32"),
        (PY_BOOL, "bool"),
    ],
)
@pytest.mark.parametrize("backend", ["numpy", "instrumented"])
def test_promotion_matches_numpy(a, b, backend):
    # The lattice models NEP 50 promotion; every repro.xp backend must
    # agree (the contract pins result_type to NumPy semantics), so the
    # same assertion runs through each backend's dtype machinery.
    be = get_backend(backend)
    samples = {PY_INT: 2, PY_FLOAT: 2.0, PY_BOOL: True}
    lhs = samples.get(a, be.dtype(a) if a not in samples else a)
    rhs = samples.get(b, be.dtype(b) if b not in samples else b)
    expected = be.result_type(lhs, rhs).name
    assert promote_names(a, b) == expected


def test_uint64_int64_promotes_to_float64():
    # The NumPy promotion footgun the analyzer exists to catch.
    assert promote_names("uint64", "int64") == "float64"


def test_promote_pointwise_with_top():
    assert promote(AbstractDtype.top(), AbstractDtype.of("int8")).is_top
    got = promote(AbstractDtype.of("int32"), AbstractDtype.of("int64"))
    assert got == AbstractDtype.of("int64")
    # multi-name operands promote pointwise
    got = promote(
        AbstractDtype.of("int16", "int64"), AbstractDtype.of("float32")
    )
    assert got.names == frozenset(
        {np.result_type(np.int16, np.float32).name,
         np.result_type(np.int64, np.float32).name}
    )


# -- SGL011: implicit upcast ---------------------------------------------------


def test_mixed_sign_add_flags_float_escape():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.uint64)\n"
        "    b = np.ones(n, dtype=np.int64)\n"
        "    return a + b\n"
    )
    assert ("SGL011", 7) in rules_of(src)


def test_int64_shift_by_variable_width_flagged():
    # np.int64(1) << 64 silently overflows; a variable width cannot be
    # proven < 64, so the shift is overflow-capable.
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(w):\n"
        "    one = np.int64(1)\n"
        "    return one << w\n"
    )
    assert any(rule == "SGL011" for rule, _ in rules_of(src))


def test_same_dtype_arithmetic_not_flagged():
    src = (
        "from repro import xp\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = xp.zeros(n, dtype=xp.uint64)\n"
        "    return (a | a) + a\n"
    )
    assert rules_of(src) == []


def test_unknown_dtype_never_flagged():
    # Precision discipline: parameters are TOP; no finding without two
    # known concrete dtypes (zero false positives on unannotated code).
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(a, b):\n"
        "    return a + b\n"
    )
    assert rules_of(src) == []


def test_augmented_writeback_cast_flagged():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    acc = np.zeros(n, dtype=np.int32)\n"
        "    acc += np.float64(1.5)\n"
        "    return acc\n"
    )
    assert any(rule == "SGL011" for rule, _ in rules_of(src))


# -- SGL012: narrowing cast ----------------------------------------------------


def test_float_to_int_astype_flagged():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.float64)\n"
        "    return a.astype(np.int64)\n"
    )
    assert ("SGL012", 6) in rules_of(src)


def test_signed_to_unsigned_astype_flagged():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.int64)\n"
        "    return a.astype(np.uint64)\n"
    )
    assert any(rule == "SGL012" for rule, _ in rules_of(src))


def test_widening_astype_not_flagged():
    src = (
        "from repro import xp\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = xp.zeros(n, dtype=xp.int32)\n"
        "    return a.astype(xp.float64)\n"
    )
    assert rules_of(src) == []


def test_narrowing_scalar_constructor_flagged():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(n):\n"
        "    a = np.ones(n, dtype=np.int64)\n"
        "    return np.int32(a)\n"
    )
    assert any(rule == "SGL012" for rule, _ in rules_of(src))


# -- SGL013: effect escape -----------------------------------------------------


def test_undeclared_param_store_flagged():
    src = (
        KERNEL_IMPORT +
        "@kernel(writes=())\n"
        "def f(out, n):\n"
        "    out[n] = 1\n"
    )
    assert rules_of(src) == [("SGL013", 4)]


def test_declared_param_store_clean():
    src = (
        KERNEL_IMPORT +
        "@kernel(writes=('out',))\n"
        "def f(out, n):\n"
        "    out[n] = 1\n"
    )
    assert rules_of(src) == []


def test_attribute_store_escape_flagged():
    src = (
        KERNEL_IMPORT +
        "@kernel(writes=('stats',))\n"
        "def f(stats, record):\n"
        "    stats.visits += 1\n"
        "    record.append(3)\n"
    )
    assert rules_of(src) == [("SGL013", 5)]


def test_store_through_nested_closure_attributed_to_kernel():
    src = (
        KERNEL_IMPORT +
        "@kernel(writes=())\n"
        "def f(out):\n"
        "    def inner(i):\n"
        "        out[i] = 1\n"
        "    inner(0)\n"
    )
    assert [rule for rule, _ in rules_of(src)] == ["SGL013"]


def test_local_stores_never_escape():
    src = (
        "from repro import xp\n" + KERNEL_IMPORT +
        "@kernel(writes=())\n"
        "def f(n):\n"
        "    scratch = xp.zeros(n, dtype=xp.int64)\n"
        "    scratch[0] = 1\n"
        "    return scratch\n"
    )
    assert rules_of(src) == []


def test_bare_kernel_without_contract_unchecked():
    src = (
        KERNEL_IMPORT +
        "@kernel\n"
        "def f(out):\n"
        "    out[0] = 1\n"
    )
    assert rules_of(src) == []


# -- SGL014: backend surface ---------------------------------------------------


def test_unportable_call_reachable_through_helper():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "def helper(mask):\n"
        "    return np.packbits(mask)\n"
        "@kernel\n"
        "def f(mask):\n"
        "    return helper(mask)\n"
    )
    assert ("SGL014", 4) in rules_of(src)


def test_unportable_call_outside_kernel_reach_ignored():
    src = (
        "import numpy as np\n"
        "from repro import xp\n" + KERNEL_IMPORT +
        "def host_only(mask):\n"
        "    return np.packbits(mask)\n"
        "@kernel\n"
        "def f(mask):\n"
        "    return xp.sum(mask)\n"
    )
    assert rules_of(src) == []


def test_raw_numpy_in_kernel_is_a_bypass():
    # Even a perfectly standard call is unportable when it goes through
    # numpy directly instead of the dispatched xp namespace.
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(mask):\n"
        "    return np.sum(mask)\n"
    )
    assert ("SGL014", 5) in rules_of(src)


def test_xp_shim_calls_are_portable():
    src = (
        "from repro import xp\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(mask):\n"
        "    return xp.pack_bits(mask, 64)\n"
    )
    assert rules_of(src) == []


def test_xp_call_outside_the_contract_still_fires():
    src = (
        "from repro import xp\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(mask):\n"
        "    return xp.packbits(mask)\n"  # not a contract name
    )
    assert ("SGL014", 5) in rules_of(src)


def test_chained_method_call_surface_recovered():
    src = (
        "import numpy as np\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(x, d):\n"
        "    return x.reshape(4).view(d)\n"
    )
    assert ("SGL014", 5) in rules_of(src)


def test_aliased_numpy_import_resolved():
    src = (
        "import numpy as xp\n" + KERNEL_IMPORT +
        "@kernel\n"
        "def f(mask):\n"
        "    return xp.packbits(mask)\n"
    )
    assert ("SGL014", 5) in rules_of(src)


# -- real-repo dataflow run ----------------------------------------------------


@pytest.fixture(scope="module")
def repo_report():
    from repro.analysis.linter import iter_target_files

    return run_dataflow(iter_target_files(), repo_src_root())


def test_repo_kernels_have_no_effect_escapes(repo_report):
    # SGL013 is ERROR severity: real kernels must honor their declared
    # write contracts (never baselined).
    escapes = [f for f in repo_report.findings if f.rule == "SGL013"]
    assert escapes == [], "\n".join(f.format() for f in escapes)


def test_repo_surface_has_no_unportable_sites(repo_report):
    unportable = [c for c in repo_report.surface if not c.portable]
    assert unportable == [], "\n".join(
        f"{c.api} at {c.file}:{c.line}" for c in unportable
    )
    # The historical unportables (packbits, bitwise_or.at, .view, scipy
    # .tocsr) are now reached only through the contract shims.
    apis = {c.api for c in repo_report.surface if c.portable}
    assert {
        "xp.pack_bits",
        "xp.scatter_or",
        "xp.divmod_",
        "xp.checked_flat_stride",
    } <= apis


def test_repo_surface_report_deterministic(repo_report):
    from repro.analysis.linter import iter_target_files

    again = run_dataflow(iter_target_files(), repo_src_root())
    assert render_report(repo_report.surface) == render_report(again.surface)


def test_committed_surface_report_is_current(repo_report):
    committed = Path(__file__).resolve().parents[2] / "docs/backend_surface.md"
    assert committed.is_file(), "regenerate with `python -m repro analyze --write-surface`"
    assert committed.read_text() == render_report(repo_report.surface)


def test_real_kernel_summaries_compose_interprocedurally():
    index = EffectIndex(repo_src_root().parent)
    run_join = summarize_function(index, "repro.core.join", "run_join")
    stores = run_join.store_writes()
    # join_pair's stats writes compose through the stats=result.stats
    # call-site binding into run_join's frame...
    assert "run_join:result.stats.candidate_visits" in stores
    # ...and the positions_of closure (defined inside a `with` block)
    # surfaces the shared bitmap read.
    assert any(p == "bitmap.words" for p in run_join.reads)


# -- static vs dynamic coverage gate -------------------------------------------


@pytest.fixture(scope="module")
def traces():
    with contracts.forced(True):
        return run_race_checks(n_queries=3, n_data_graphs=6, seed=0)


def test_static_effects_cover_all_dynamic_accesses(traces):
    # The hybrid race gate: every dynamically observed shadow-memory
    # access (refine, DFS join, tabular join) must be predicted by the
    # static effect analysis.  A dynamic access with no static
    # counterpart means the analyzer lost track of a kernel's memory
    # traffic -- exactly the blind spot that hides races.
    report = effect_coverage(traces)
    assert report.ok, report.format()
    assert set(report.traces) == {"refine", "join", "tabular"}


def test_coverage_distinguishes_reads_from_writes(traces):
    report = effect_coverage(traces)
    join = report.traces["join"]
    assert "bitmap/read" in join.covered
    assert "join.pair_matches/write" in join.covered
    assert "join.match_count/atomic" in join.covered


def test_unknown_trace_is_uncovered():
    class FakeShadow:
        def access_kinds(self):
            return {"mystery.space": frozenset({"write"})}

    report = effect_coverage({"unknown-kernel": FakeShadow()})
    assert not report.ok
    assert report.traces["unknown-kernel"].uncovered == [
        ("mystery.space", "write")
    ]


def test_unexercised_static_writes_reported_not_failed(traces):
    report = effect_coverage(traces)
    refine = report.traces["refine"]
    # initialize_candidates' private bitmap rows are never replayed as a
    # shadow space of their own: reported for review, but not a failure.
    assert refine.ok
    assert any(
        "initialize_candidates:bitmap" in p
        for p in refine.unexercised_writes
    )
