"""Baseline semantics + the repo-wide gate: the full lint run over the
kernel packages must match the committed baseline exactly."""

import pytest

from repro.analysis.findings import Severity
from repro.analysis.linter import (
    default_baseline_path,
    lint_paths,
    lint_source,
    load_baseline,
    new_findings,
    save_baseline,
    stale_entries,
)

pytestmark = pytest.mark.analysis


@pytest.fixture(scope="module")
def repo_findings():
    # The committed baseline is generated with the dataflow analyses on
    # (`make baseline`), so the gate must compare against the same set.
    return lint_paths(dataflow=True)


def test_full_repo_run_matches_committed_baseline(repo_findings):
    baseline = load_baseline()
    fresh = new_findings(repo_findings, baseline)
    assert fresh == [], (
        "new lint findings not covered by the committed baseline "
        "(run `python -m repro analyze --dataflow` for details, review, "
        "then `make baseline`):\n"
        + "\n".join(f.format() for f in fresh)
    )


def test_committed_baseline_is_not_stale(repo_findings):
    # Every baseline entry must still correspond to a real finding;
    # otherwise the budget silently masks future regressions.
    current = load_baseline()
    stale = stale_entries(repo_findings, current)
    assert not stale, f"baseline entries no longer observed: {stale}"


def test_no_error_severity_findings_in_repo(repo_findings):
    # Accepted findings are warnings/info only; errors (including SGL013
    # effect-escapes) must be fixed, never baselined.
    errors = [f for f in repo_findings if f.severity is Severity.ERROR]
    assert errors == [], "\n".join(f.format() for f in errors)


def test_committed_baseline_exists():
    assert default_baseline_path().is_file()


def test_baseline_roundtrip(tmp_path):
    findings = lint_source(
        "import numpy as np\na = np.zeros(3)\nb = np.empty(4)\n", "mod.py"
    )
    assert len(findings) == 2
    path = tmp_path / "baseline.json"
    assert save_baseline(findings, path) == path
    assert new_findings(findings, load_baseline(path)) == []


def test_baseline_matching_is_multiset():
    # Two findings share a fingerprint (same rule, file, stripped line);
    # a baseline holding one occurrence absorbs exactly one of them.
    findings = lint_source(
        "import numpy as np\n"
        "def f():\n"
        "    a = np.zeros(3)\n"
        "    return a\n"
        "def g():\n"
        "    a = np.zeros(3)\n"
        "    return a\n",
        "mod.py",
    )
    assert len(findings) == 2
    assert findings[0].key == findings[1].key
    from repro.analysis.linter import baseline_counter

    baseline = baseline_counter(findings[:1])
    fresh = new_findings(findings, baseline)
    assert len(fresh) == 1


def test_baseline_robust_to_line_number_churn():
    src_a = "import numpy as np\na = np.zeros(3)\n"
    src_b = "import numpy as np\n\n\n# moved down by edits above\na = np.zeros(3)\n"
    (f_a,) = lint_source(src_a, "mod.py")
    (f_b,) = lint_source(src_b, "mod.py")
    assert f_a.line != f_b.line
    assert f_a.key == f_b.key  # fingerprint ignores the line number


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}
