"""Shadow-memory race detector: conflict model unit tests, the seeded
racy scatter-add, and race-freedom of the real refine/join kernel traces."""

import numpy as np
import pytest

from repro.analysis.races import (
    run_race_checks,
    scatter_add_trace,
    trace_join_races,
    trace_refine_races,
    trace_tabular_join_races,
)
from repro.chem.datasets import build_benchmark
from repro.core.csrgo import CSRGO
from repro.device.counters import counters_from_shadow
from repro.device.simt import ATOMIC, READ, WRITE, Conflict, ShadowMemory

pytestmark = pytest.mark.analysis


# -- conflict model -----------------------------------------------------------


def test_write_write_conflict():
    sh = ShadowMemory()
    sh.write("buf", 3, 0)
    sh.write("buf", 3, 1)
    assert sh.has_conflicts
    (c,) = sh.conflicts
    assert (c.space, c.word, c.epoch, c.items) == ("buf", 3, 0, (0, 1))
    assert WRITE in c.kinds


def test_read_write_conflict():
    sh = ShadowMemory()
    sh.read("buf", 0, 0)
    sh.write("buf", 0, 1)
    assert sh.has_conflicts
    assert set(sh.conflicts[0].kinds) == {READ, WRITE}


def test_read_read_clean():
    sh = ShadowMemory()
    for item in range(8):
        sh.read("buf", 0, item)
    assert not sh.has_conflicts


def test_atomic_atomic_clean():
    sh = ShadowMemory()
    for item in range(8):
        sh.atomic("counter", 0, item)
    assert not sh.has_conflicts


def test_atomic_vs_plain_conflicts():
    sh = ShadowMemory()
    sh.atomic("counter", 0, 0)
    sh.read("counter", 0, 1)
    assert sh.has_conflicts
    assert ATOMIC in sh.conflicts[0].kinds


def test_barrier_separates_epochs():
    sh = ShadowMemory()
    sh.write("buf", 0, 0)
    sh.barrier()
    sh.write("buf", 0, 1)
    assert not sh.has_conflicts
    assert sh.epoch == 1


def test_same_item_read_modify_write_clean():
    sh = ShadowMemory()
    sh.read("buf", 0, 0)
    sh.write("buf", 0, 0)
    sh.write("buf", 0, 0)
    assert not sh.has_conflicts


def test_disjoint_words_clean():
    sh = ShadowMemory()
    sh.write("buf", 0, 0)
    sh.write("buf", 1, 1)
    sh.write("other", 0, 1)
    assert not sh.has_conflicts


def test_conflict_deduped_and_upgraded_per_word_epoch():
    sh = ShadowMemory()
    sh.write("buf", 0, 0)
    sh.write("buf", 0, 1)
    sh.write("buf", 0, 2)  # same word, same epoch: still one conflict
    assert len(sh.conflicts) == 1
    assert sh.conflicts[0].items == (0, 1, 2)
    sh.barrier()
    sh.write("buf", 0, 0)
    sh.write("buf", 0, 1)  # new epoch: a second conflict record
    assert len(sh.conflicts) == 2
    assert sh.conflicts[1].epoch == 1


def test_counters_and_summary():
    sh = ShadowMemory(word_bytes=8)
    sh.write_many("buf", np.arange(4), 0)
    sh.read_many("buf", [0, 1], 0)
    sh.atomic("counter", 0, 1)
    assert (sh.n_reads, sh.n_writes, sh.n_atomics) == (2, 4, 1)
    assert sh.n_accesses == 7
    assert sh.n_items == 2
    assert sh.footprint_words == 5
    summary = sh.summary()
    assert summary["work_items"] == 2
    assert summary["footprint_bytes"] == 40
    assert summary["conflicts"] == []


def test_conflict_format():
    c = Conflict("bitmap", 7, 2, (0, 3), (READ, WRITE))
    line = c.format()
    assert "bitmap[7]" in line and "epoch 2" in line and "0, 3" in line


def test_counters_from_shadow():
    sh = ShadowMemory(word_bytes=8)
    sh.write_many("buf", np.arange(10), 0)
    sh.read_many("buf", np.arange(10), 1)
    kc = counters_from_shadow("replay", sh)
    assert kc.name == "replay"
    assert kc.instructions == sh.n_accesses == 20
    assert kc.bytes_hbm == 20 * 8
    assert kc.work_items == 2


# -- seeded races -------------------------------------------------------------


def test_scatter_add_duplicate_targets_flagged():
    sh = scatter_add_trace([4, 9, 4, 1])
    assert sh.has_conflicts
    (c,) = sh.conflicts
    assert c.space == "scatter.out"
    assert c.word == 4
    assert c.items == (0, 2)
    assert set(c.kinds) == {READ, WRITE}


def test_scatter_add_unique_targets_clean():
    sh = scatter_add_trace([0, 1, 2, 3])
    assert not sh.has_conflicts


def test_scatter_add_atomic_fix_clean():
    # The fix the real bitmap kernels apply: atomic read-modify-writes.
    sh = ShadowMemory()
    for item, word in enumerate([4, 9, 4, 1]):
        sh.atomic("scatter.out", word, item)
    assert not sh.has_conflicts


# -- real kernel traces -------------------------------------------------------


@pytest.fixture(scope="module")
def csr_batches():
    ds = build_benchmark(n_queries=3, n_data_graphs=8, seed=1)
    return CSRGO.from_graphs(ds.queries), CSRGO.from_graphs(ds.data)


def test_refine_trace_race_free(csr_batches):
    query, data = csr_batches
    sh = trace_refine_races(query, data)
    assert not sh.has_conflicts, [c.format() for c in sh.conflicts]
    assert sh.n_items == query.n_nodes  # one work-item per query node
    assert sh.epoch >= 2  # one barrier per refinement iteration + init
    assert sh.n_writes > 0 and sh.n_reads > 0


def test_join_trace_race_free(csr_batches):
    query, data = csr_batches
    sh = trace_join_races(query, data)
    assert not sh.has_conflicts, [c.format() for c in sh.conflicts]
    assert sh.n_atomics == sh.n_items  # one Find-All counter bump per pair
    assert sh.n_writes > 0


def test_tabular_trace_race_free(csr_batches):
    query, data = csr_batches
    sh = trace_tabular_join_races(query, data)
    assert not sh.has_conflicts, [c.format() for c in sh.conflicts]
    assert sh.n_atomics == sh.n_items  # one Find-All counter bump per pair
    kinds = sh.access_kinds()
    # The tabular backend's distinguishing traffic: sorted flat-key
    # probes (shared, read-only) and pair-private frontier tables.
    assert kinds["csr.flat_keys"] == {"read"}
    assert kinds["csr.edge_labels"] == {"read"}
    assert kinds["tabular.frontier"] == {"write"}


def test_run_race_checks_clean():
    shadows = run_race_checks(n_queries=3, n_data_graphs=6, seed=0)
    assert set(shadows) == {"refine", "join", "tabular"}
    for name, sh in shadows.items():
        assert not sh.has_conflicts, (name, [c.format() for c in sh.conflicts])
        assert sh.n_accesses > 0
