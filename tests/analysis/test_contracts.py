"""Contract checkers: valid pipeline artifacts pass, corrupted copies
raise :class:`ContractViolation`, and the REPRO_CHECK gate works."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import contracts
from repro.analysis.contracts import (
    ContractViolation,
    check_bitmap,
    check_csrgo,
    check_gmcr,
    check_refinement_monotone,
)
from repro.core.candidates import CandidateBitmap
from repro.core.csrgo import CSRGO
from repro.graph.generators import path_graph, ring_graph

pytestmark = pytest.mark.analysis


@pytest.fixture
def csr():
    return CSRGO.from_graphs(
        [path_graph([1, 2, 1]), ring_graph(4, [1, 2, 1, 2]), path_graph([3])]
    )


def mutable_copy(csr):
    """Duck-typed, freely corruptible view of a CSR-GO batch."""
    return SimpleNamespace(
        graph_offsets=csr.graph_offsets.copy(),
        row_offsets=csr.row_offsets.copy(),
        column_indices=csr.column_indices.copy(),
        labels=csr.labels.copy(),
        adj_edge_labels=csr.adj_edge_labels.copy(),
    )


# -- gating -------------------------------------------------------------------


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(contracts.ENV_FLAG, raising=False)
    assert not contracts.enabled()


def test_env_flag_enables(monkeypatch):
    for value in ("1", "true", "ON", "yes"):
        monkeypatch.setenv(contracts.ENV_FLAG, value)
        assert contracts.enabled()
    monkeypatch.setenv(contracts.ENV_FLAG, "0")
    assert not contracts.enabled()


def test_forced_overrides_env(monkeypatch):
    monkeypatch.setenv(contracts.ENV_FLAG, "0")
    with contracts.forced(True):
        assert contracts.enabled()
    assert not contracts.enabled()
    monkeypatch.setenv(contracts.ENV_FLAG, "1")
    with contracts.forced(False):
        assert not contracts.enabled()
    assert contracts.enabled()


# -- CSR-GO -------------------------------------------------------------------


def test_valid_csrgo_passes(csr):
    check_csrgo(csr, "valid")


def test_unsorted_adjacency_rejected(csr):
    bad = mutable_copy(csr)
    # Reverse one node's adjacency list (degree >= 2): still symmetric as a
    # multiset, but no longer sorted ascending.
    row = int(np.argmax(np.diff(bad.row_offsets) >= 2))
    lo, hi = int(bad.row_offsets[row]), int(bad.row_offsets[row + 1])
    assert hi - lo >= 2
    bad.column_indices[lo:hi] = bad.column_indices[lo:hi][::-1]
    bad.adj_edge_labels[lo:hi] = bad.adj_edge_labels[lo:hi][::-1]
    with pytest.raises(ContractViolation, match="sorted"):
        check_csrgo(bad, "unsorted")


def test_duplicate_neighbor_rejected(csr):
    bad = mutable_copy(csr)
    row = int(np.argmax(np.diff(bad.row_offsets) >= 2))
    lo = int(bad.row_offsets[row])
    bad.column_indices[lo + 1] = bad.column_indices[lo]
    with pytest.raises(ContractViolation):
        check_csrgo(bad, "duplicate")


def test_cross_graph_edge_rejected(csr):
    bad = mutable_copy(csr)
    # Rewire the first graph's first edge to point into the last graph.
    bad.column_indices[0] = int(bad.graph_offsets[-1]) - 1
    with pytest.raises(ContractViolation, match="boundary|symmetric|sorted"):
        check_csrgo(bad, "crossing")


def test_asymmetric_edge_labels_rejected(csr):
    bad = mutable_copy(csr)
    if not bad.adj_edge_labels.size:
        pytest.skip("no edges")
    bad.adj_edge_labels[0] += 1  # one direction relabeled
    with pytest.raises(ContractViolation, match="symmetric"):
        check_csrgo(bad, "asymmetric")


def test_non_monotone_row_offsets_rejected(csr):
    bad = mutable_copy(csr)
    bad.row_offsets[1] = bad.row_offsets[-1] + 5
    with pytest.raises(ContractViolation, match="monotone|prefix"):
        check_csrgo(bad, "rows")


def test_label_length_mismatch_rejected(csr):
    bad = mutable_copy(csr)
    bad.labels = bad.labels[:-1]
    with pytest.raises(ContractViolation, match="labels length"):
        check_csrgo(bad, "labels")


# -- bitmaps ------------------------------------------------------------------


@pytest.fixture
def bitmap(rng):
    # 70 data nodes: the last 64-bit word has 6 valid bits and 58 tail bits.
    rows = rng.random((3, 70)) < 0.5
    return CandidateBitmap.from_bool(rows)


def test_valid_bitmap_passes(bitmap):
    counts = np.bitwise_count(bitmap.words).sum(axis=1, dtype=np.int64)
    check_bitmap(bitmap, expected_counts=counts)


def test_tail_bit_rejected(bitmap):
    rem = bitmap.n_data_nodes % bitmap.word_bits
    assert rem  # fixture chosen so the last word has a tail
    bitmap.words[1, -1] |= np.uint64(1) << np.uint64(rem)
    with pytest.raises(ContractViolation, match="tail"):
        check_bitmap(bitmap)


def test_count_mismatch_rejected(bitmap):
    counts = np.bitwise_count(bitmap.words).sum(axis=1, dtype=np.int64)
    counts[0] += 1
    with pytest.raises(ContractViolation, match="popcount"):
        check_bitmap(bitmap, expected_counts=counts)


def test_refinement_monotone():
    prev = np.array([[0b1110, 0b0001]], dtype=np.uint64)
    shrunk = np.array([[0b0110, 0b0000]], dtype=np.uint64)
    check_refinement_monotone(prev, shrunk)  # clearing bits is fine
    regrown = np.array([[0b1110, 0b0011]], dtype=np.uint64)
    with pytest.raises(ContractViolation, match="monotone"):
        check_refinement_monotone(prev, regrown)


# -- GMCR ---------------------------------------------------------------------


def test_gmcr_checks():
    good = SimpleNamespace(
        data_graph_offsets=np.array([0, 2, 2, 3], dtype=np.int64),
        query_graph_indices=np.array([0, 1, 0], dtype=np.int64),
        matched=np.zeros(3, dtype=bool),
    )
    check_gmcr(good, n_query_graphs=2)
    bad_offsets = SimpleNamespace(
        data_graph_offsets=np.array([0, 2, 1, 3], dtype=np.int64),
        query_graph_indices=good.query_graph_indices,
        matched=good.matched,
    )
    with pytest.raises(ContractViolation, match="prefix"):
        check_gmcr(bad_offsets, n_query_graphs=2)
    bad_index = SimpleNamespace(
        data_graph_offsets=good.data_graph_offsets,
        query_graph_indices=np.array([0, 5, 0], dtype=np.int64),
        matched=good.matched,
    )
    with pytest.raises(ContractViolation, match="range"):
        check_gmcr(bad_index, n_query_graphs=2)


def test_violation_lists_every_failed_clause(csr):
    bad = mutable_copy(csr)
    bad.labels = bad.labels[:-1]
    bad.row_offsets[1] = bad.row_offsets[-1] + 5
    with pytest.raises(ContractViolation, match=r"2 violation\(s\)"):
        check_csrgo(bad, "multi")
