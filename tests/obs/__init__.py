"""Observability (repro.obs) test suite."""
