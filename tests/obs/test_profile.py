"""Profiles and baseline comparison (``repro profile``)."""

import copy

import pytest

from repro.obs.export import validate_metrics
from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.profile import (
    PIPELINE_STAGES,
    ProfileBaseline,
    format_profile,
    format_regressions,
    smoke_profile,
)

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def profile():
    """One small smoke profile shared across this module's tests."""
    return smoke_profile(n_queries=8, n_data_graphs=40, seed=3, iterations=4)


class TestProfile:
    def test_payload_validates(self, profile):
        payload = profile.payload()
        assert validate_metrics(payload) == []
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["context"]["workload"] == "smoke"
        assert payload["counters"]["engine.matches"] >= 0

    def test_stage_split_covers_the_pipeline(self, profile):
        names = [s["stage"] for s in profile.stages]
        assert set(names) <= set(PIPELINE_STAGES)
        for required in ("filter", "mapping", "join"):
            assert required in names
        assert all(s["count"] >= 1 for s in profile.stages)
        # The filter stage runs once per refinement iteration.
        filter_row = next(s for s in profile.stages if s["stage"] == "filter")
        assert filter_row["count"] >= 2

    def test_top_kernels_sorted_by_simulated_bytes(self, profile):
        assert profile.kernels
        top = profile.top_kernels(3)
        assert len(top) <= 3
        sizes = [row["bytes_total"] for row in top]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == max(r["bytes_total"] for r in profile.kernels)

    def test_kernel_rows_have_roofline_annotations(self, profile):
        bounds = {row["bound"] for row in profile.kernels}
        assert bounds - {"-"}  # at least one kernel placed on the roofline
        for row in profile.kernels:
            assert 0.0 <= row["roof_fraction"] <= 1.0 + 1e-9

    def test_format_profile_report(self, profile):
        text = format_profile(profile, top_k=3)
        assert "stage breakdown" in text
        assert "filter" in text and "join" in text
        assert "top 3 kernels by simulated bytes" in text
        for row in profile.top_kernels(3):
            assert row["kernel"] in text


class TestProfileBaseline:
    def test_profile_matches_itself(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        assert baseline.compare(payload) == []

    def test_work_counter_regression_flagged(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        payload = copy.deepcopy(payload)
        payload["counters"]["join.edge_checks"] *= 2
        regs = baseline.compare(payload, tolerance=0.1)
        assert [r.metric for r in regs] == ["join.edge_checks"]
        assert regs[0].kind == "work"

    def test_small_counter_growth_within_tolerance(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        payload = copy.deepcopy(payload)
        payload["counters"]["join.edge_checks"] *= 1.05
        assert baseline.compare(payload, tolerance=0.1) == []

    def test_match_count_must_agree_exactly_both_directions(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        for delta in (+1, -1):
            current = copy.deepcopy(payload)
            current["counters"]["engine.matches"] += delta
            regs = baseline.compare(current)
            assert [r.kind for r in regs] == ["matches"]

    def test_missing_metric_flagged(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        current = copy.deepcopy(payload)
        del current["counters"]["join.stack_pushes"]
        regs = baseline.compare(current)
        assert [(r.metric, r.kind) for r in regs] == [
            ("join.stack_pushes", "missing")
        ]

    def synthetic(self, gauges):
        return {
            "schema": METRICS_SCHEMA,
            "counters": {},
            "gauges": dict(gauges),
            "histograms": {},
        }

    def test_wall_clock_gauges_use_loose_tolerance(self):
        baseline = ProfileBaseline(
            self.synthetic({"engine.stage_seconds.join": 1.0})
        )
        noisy = self.synthetic({"engine.stage_seconds.join": 1.8})
        assert baseline.compare(noisy, tolerance=0.1, time_tolerance=1.0) == []
        slow = self.synthetic({"engine.stage_seconds.join": 2.5})
        regs = baseline.compare(slow, tolerance=0.1, time_tolerance=1.0)
        assert [r.kind for r in regs] == ["time"]

    def test_microsecond_stages_never_flag_on_jitter(self):
        # A 10x blowup of a 0.1 ms stage is scheduler noise, not a
        # regression: wall-clock gauges need absolute growth too.
        baseline = ProfileBaseline(
            self.synthetic({"engine.stage_seconds.initialize_candidates": 1e-4})
        )
        jitter = self.synthetic(
            {"engine.stage_seconds.initialize_candidates": 1e-3}
        )
        assert baseline.compare(jitter, time_tolerance=1.0) == []

    def test_model_seconds_use_tight_tolerance(self):
        baseline = ProfileBaseline(self.synthetic({"model.total_seconds": 1.0}))
        drift = self.synthetic({"model.total_seconds": 1.2})
        regs = baseline.compare(drift, tolerance=0.1, time_tolerance=1.0)
        assert [r.metric for r in regs] == ["model.total_seconds"]

    def test_non_time_gauges_are_informational(self):
        baseline = ProfileBaseline(self.synthetic({"roofline.roof_fraction.join": 0.1}))
        current = self.synthetic({"roofline.roof_fraction.join": 0.9})
        assert baseline.compare(current) == []

    def test_format_regressions(self, profile):
        payload = profile.payload()
        baseline = ProfileBaseline(copy.deepcopy(payload))
        current = copy.deepcopy(payload)
        current["counters"]["engine.matches"] += 5
        text = format_regressions(baseline.compare(current))
        assert "1 regression(s) against baseline:" in text
        assert "engine.matches" in text
        assert format_regressions([]) == ""
