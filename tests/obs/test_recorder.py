"""Flight recorder: ring semantics, ambient install, post-mortem bundles."""

import json

import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.recorder import (
    NULL_RECORDER,
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    NullFlightRecorder,
    events_for_request,
    get_recorder,
    recording,
    set_recorder,
    validate_bundle,
)

pytestmark = [pytest.mark.obs, pytest.mark.slo]


class TestRing:
    def test_bounded_eviction_keeps_newest(self):
        r = FlightRecorder(capacity=3)
        for i in range(5):
            r.record("note", float(i), text=f"e{i}")
        assert [e["text"] for e in r.events] == ["e2", "e3", "e4"]
        assert r.recorded == 5
        assert len(r.events) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_seq_wins_over_payload_seq(self):
        # The serving layer records request sequence numbers in the
        # payload; they must not clobber the ring's authoritative order.
        r = FlightRecorder()
        r.record("request", 0.0, request_seq=99)
        r.record("request", 0.0, request_seq=7)
        assert [e["seq"] for e in r.events] == [0, 1]
        assert [e["request_seq"] for e in r.events] == [99, 7]

    def test_record_now_uses_installed_clock(self):
        t = {"now": 4.5}
        r = FlightRecorder(clock=lambda: t["now"])
        r.record_now("note", text="a")
        t["now"] = 6.0
        r.record_now("note", text="b")
        assert [e["at_s"] for e in r.events] == [4.5, 6.0]

    def test_record_now_without_clock_reuses_last_timestamp(self):
        r = FlightRecorder()
        r.record("note", 3.0, text="anchor")
        r.record_now("note", text="follow")
        assert r.events[-1]["at_s"] == 3.0

    def test_find_filters_by_kind(self):
        r = FlightRecorder()
        r.record("note", 0.0)
        r.record_span("s", 0.1, lane="l0", duration_s=0.2)
        assert len(r.find("span")) == 1
        assert r.find("missing") == []


class TestRequestLinkage:
    def make_ring(self):
        r = FlightRecorder()
        r.record("request", 0.0, phase="admitted", request_id="req-1",
                 chain="req-1")
        r.record_span("serve:batch", 0.1, lane="l0",
                      request_ids=["req-1"], member_request_ids=["req-1", "req-2"])
        r.record("request", 0.2, phase="finished", request_id="req-3",
                 chain="req-1")
        r.record("request", 0.3, phase="finished", request_id="req-9",
                 chain="req-9")
        return r

    def test_for_request_matches_id_chain_and_membership(self):
        r = self.make_ring()
        got = r.for_request("req-1")
        assert len(got) == 3  # admitted + batch + chained follow-up
        assert r.for_request("req-2") and r.for_request("req-2")[0]["kind"] == "span"
        assert r.for_request("req-404") == []

    def test_events_for_request_works_on_plain_dicts(self):
        r = self.make_ring()
        bundle = r.dump("unit", at_s=1.0)
        roundtrip = json.loads(json.dumps(bundle))
        assert len(events_for_request(roundtrip["events"], "req-1")) == 3


class TestBundles:
    def test_dump_is_self_contained_and_valid(self):
        r = FlightRecorder()
        r.record("note", 0.5, text="before")
        r.record_span("serve:batch", 1.0, lane="l0", duration_s=0.25,
                      outcome="ok")
        bundle = r.dump("breaker-trip", at_s=2.0, context={"lane": "l0"})
        assert bundle["schema"] == POSTMORTEM_SCHEMA
        assert bundle["trigger"] == "breaker-trip"
        assert bundle["context"] == {"lane": "l0"}
        assert validate_bundle(bundle) == []
        assert r.dumps == 1

    def test_bundle_survives_json_roundtrip(self):
        r = FlightRecorder()
        r.record("alert", 1.0, slo="avail", state="firing")
        payload = json.loads(json.dumps(r.dump("slo-page-burn", at_s=1.0)))
        assert validate_bundle(payload) == []

    def test_chrome_trace_is_perfetto_valid(self):
        r = FlightRecorder()
        r.record_span("serve:batch", 0.0, lane="l0", duration_s=0.002)
        r.record_span("serve:batch", 0.001, lane="l1", duration_s=0.003)
        r.record("breaker", 0.004, lane="l0", old="closed", new="open")
        trace = r.dump("manual", at_s=0.01)["chrome_trace"]
        assert validate_chrome_trace(trace) == []
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        marks = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(spans) == 2 and len(marks) == 1
        # Lanes become named tracks; the two spans sit on distinct tids.
        assert spans[0]["tid"] != spans[1]["tid"]

    def test_write_bundle(self, tmp_path):
        r = FlightRecorder()
        r.record("note", 0.0, text="x")
        path = r.write_bundle(tmp_path / "b.json", "manual", at_s=0.0)
        assert validate_bundle(json.loads(path.read_text())) == []

    def test_validate_bundle_catches_corruption(self):
        r = FlightRecorder()
        r.record("note", 0.0)
        bundle = r.dump("manual", at_s=0.0)
        bundle["events"][0]["seq"] = -1
        bad = dict(bundle, schema="nope", trigger="")
        problems = validate_bundle(bad)
        assert any("schema" in p for p in problems)
        assert any("trigger" in p for p in problems)
        assert any("seq" in p for p in problems)


class TestAmbient:
    def test_default_is_noop(self):
        r = get_recorder()
        assert isinstance(r, NullFlightRecorder)
        assert not r.enabled
        r.record("note", 0.0, text="discarded")
        r.record_now("note")
        r.record_span("s", 0.0)
        assert r.find("note") == [] and r.for_request("x") == []

    def test_recording_scope_installs_and_restores(self):
        assert get_recorder() is NULL_RECORDER
        with recording() as r:
            assert get_recorder() is r
            get_recorder().record("note", 0.0, text="hi")
        assert get_recorder() is NULL_RECORDER
        assert len(r.events) == 1

    def test_set_recorder_returns_previous(self):
        mine = FlightRecorder()
        previous = set_recorder(mine)
        try:
            assert get_recorder() is mine
        finally:
            assert set_recorder(previous) is mine
        assert get_recorder() is previous

    def test_runtime_attempts_feed_ambient_recorder(self):
        from repro.runtime.telemetry import OK, Attempt, RunReport

        with recording() as r:
            report = RunReport()
            report.record(Attempt(unit="chunk[0:8]", attempt=0, outcome=OK))
        (event,) = r.find("runtime-attempt")
        assert event["unit"] == "chunk[0:8]"
        assert event["outcome"] == OK
