"""SLO engine: windows, specs, burn rates, and the alert state machine.

Everything here runs on explicit tick times (the virtual-clock
discipline), so window closing and every alert transition is exactly
reproducible — the tests assert specific windows, burns, and
OK <-> firing edges, not "roughly fires eventually".
"""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, collecting, get_metrics
from repro.obs.slo import (
    ALERT_FIRING,
    ALERT_OK,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    BurnRatePolicy,
    SLOEngine,
    SLOSpec,
    Window,
    WindowAggregator,
    burn_rate,
    default_policies,
    default_serve_slos,
    fraction_over,
    render_dashboard,
)

pytestmark = [pytest.mark.obs, pytest.mark.slo]


def make_window(index=0, start=0.0, end=1.0, **counters):
    delta = MetricsRegistry()
    for name, value in counters.items():
        delta.count(name.replace("__", "."), value)
    return Window(index=index, start_s=start, end_s=end, delta=delta)


class TestWindow:
    def test_totals_rates_and_width(self):
        w = make_window(end=2.0, serve__requests=10)
        assert w.width_s == 2.0
        assert w.total("serve.requests") == 10
        assert w.rate("serve.requests") == 5.0
        assert w.total("serve.absent") == 0

    def test_windowed_quantile_is_exact_to_bucket_resolution(self):
        delta = MetricsRegistry()
        for v in (0.001, 0.002, 0.004, 0.1):
            delta.observe("serve.latency_s", v)
        w = Window(index=0, start_s=0.0, end_s=1.0, delta=delta)
        assert w.observations("serve.latency_s") == 4
        assert w.quantile("serve.latency_s", 50) <= w.quantile(
            "serve.latency_s", 100
        )
        assert w.quantile("serve.missing", 99) == 0.0


class TestWindowAggregator:
    def test_activity_attributed_to_first_closed_window(self):
        m = MetricsRegistry()
        agg = WindowAggregator(m, width_s=1.0, origin_s=0.0)
        m.count("x", 3)
        closed = agg.tick(2.5)  # crosses two boundaries in one tick
        assert [w.index for w in closed] == [0, 1]
        assert [int(w.total("x")) for w in closed] == [3, 0]
        assert agg.tick(2.9) == []

    def test_lazy_origin_aligns_to_first_tick(self):
        # time.monotonic-style clocks start far from zero; the first
        # tick must not close thousands of empty pre-history windows.
        m = MetricsRegistry()
        agg = WindowAggregator(m, width_s=0.5)
        assert agg.tick(7533.695) == []
        m.count("x", 2)
        closed = agg.tick(7534.1)
        assert len(closed) == 1
        assert closed[0].start_s == 7533.5
        assert int(closed[0].total("x")) == 2

    def test_callable_registry_follows_ambient_swaps(self):
        with collecting() as inner:
            agg = WindowAggregator(get_metrics, width_s=1.0, origin_s=0.0)
            inner.count("y", 4)
            closed = agg.tick(1.0)
            assert [int(w.total("y")) for w in closed] == [4]
        # Registry swapped back: diff would raise; the aggregator
        # re-baselines with an empty delta instead of crashing.
        closed = agg.tick(2.0)
        assert len(closed) == 1
        assert closed[0].delta.counters == {}

    def test_history_bound(self):
        m = MetricsRegistry()
        agg = WindowAggregator(m, width_s=1.0, history=3, origin_s=0.0)
        agg.tick(10.0)
        assert len(agg.windows) == 3
        assert [w.index for w in agg.last(2)] == [8, 9]
        assert agg.last(0) == []


class TestFractionOver:
    def test_counts_only_provably_over_threshold(self):
        h = Histogram("lat", buckets=[0.01, 0.05, 0.1])
        for v in (0.005, 0.02, 0.05, 0.2):
            h.observe(v)
        # 0.02 and 0.05 land in the 0.05 bucket: not provably > 0.05.
        assert fraction_over(h, 0.05) == 0.25
        assert fraction_over(h, 0.1) == 0.25  # only the overflow obs
        assert fraction_over(Histogram("e", buckets=[1.0]), 0.5) is None


class TestSLOSpec:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLOSpec("x", "nope", objective=0.9)
        with pytest.raises(ValueError, match="objective"):
            SLOSpec("x", "availability", objective=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            SLOSpec("x", "latency", objective=0.9)

    def test_availability_bad_total(self):
        spec = SLOSpec("a", "availability", objective=0.99)
        w = make_window(
            serve__responses__complete=7,
            serve__responses__partial=2,
            serve__responses__rejected=1,
        )
        assert spec.bad_total(w) == (1.0, 10.0)
        assert spec.bad_fraction(w) == 0.1

    def test_latency_bad_total_from_bucket_deltas(self):
        spec = SLOSpec("l", "latency", objective=0.95, threshold_s=0.05)
        delta = MetricsRegistry()
        for v in (0.01, 0.02, 0.2, 0.3):
            delta.observe("serve.latency_s", v)
        w = Window(index=0, start_s=0.0, end_s=1.0, delta=delta)
        bad, total = spec.bad_total(w)
        assert total == 4.0
        assert bad == pytest.approx(2.0)

    def test_partial_ratio_and_shed_rate(self):
        partial = SLOSpec("p", "partial-ratio", objective=0.9)
        w = make_window(
            serve__responses__complete=3, serve__responses__partial=1
        )
        assert partial.bad_total(w) == (1.0, 4.0)
        shed = SLOSpec("s", "shed-rate", objective=0.95)
        w = make_window(serve__requests=8, serve__shed=2)
        assert shed.bad_total(w) == (2.0, 8.0)

    def test_idle_window_yields_none_not_zero(self):
        for spec in default_serve_slos():
            assert spec.bad_total(make_window()) is None

    def test_default_serve_slos_cover_all_kinds(self):
        specs = default_serve_slos(deadline_s=0.02)
        assert {s.kind for s in specs} == {
            "availability", "latency", "partial-ratio", "shed-rate"
        }
        latency = next(s for s in specs if s.kind == "latency")
        assert latency.threshold_s == 0.02


class TestBurnRate:
    def test_pooled_across_windows(self):
        spec = SLOSpec("a", "availability", objective=0.9)  # budget 0.1
        busy = make_window(
            serve__responses__complete=0, serve__responses__rejected=10
        )
        quiet = make_window(serve__responses__complete=10)
        # 10 bad / 20 total = 0.5 bad fraction -> burn 5.
        assert burn_rate(spec, [busy, quiet]) == pytest.approx(5.0)
        assert burn_rate(spec, []) == 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BurnRatePolicy("page", long_windows=2, short_windows=4, threshold=1.0)
        with pytest.raises(ValueError):
            BurnRatePolicy("page", long_windows=1, short_windows=1, threshold=0.0)

    def test_default_policies_page_and_ticket(self):
        severities = {p.severity for p in default_policies()}
        assert severities == {SEVERITY_PAGE, SEVERITY_TICKET}


class TestAlertStateMachine:
    """The OK -> firing -> OK life cycle, deterministic on explicit ticks."""

    def make_engine(self, threshold=10.0):
        m = MetricsRegistry()
        agg = WindowAggregator(m, width_s=1.0, origin_s=0.0)
        spec = SLOSpec("avail", "availability", objective=0.9)
        policy = BurnRatePolicy(
            SEVERITY_PAGE, long_windows=3, short_windows=1, threshold=threshold
        )
        return m, SLOEngine(agg, [spec], [policy])

    def test_clean_run_stays_silent(self):
        m, eng = self.make_engine()
        for t in range(1, 8):
            m.count("serve.responses.complete", 5)
            assert eng.tick(float(t)) == []
        assert eng.active_alerts() == []
        assert eng.state_of("avail", SEVERITY_PAGE) == ALERT_OK

    def test_overload_fires_then_recovery_clears(self):
        m, eng = self.make_engine()
        # Two healthy windows.
        for t in (1.0, 2.0):
            m.count("serve.responses.complete", 10)
            assert eng.tick(t) == []
        # Total outage: burn = (1.0 bad fraction) / 0.1 budget = 10.
        # Long lookback still pools the healthy windows, so the first
        # bad window burns (10/30)/0.1 = 3.3 < 10: no page yet.
        m.count("serve.responses.rejected", 10)
        assert eng.tick(3.0) == []
        # Two more bad windows push the 3-window burn to 10: fires.
        m.count("serve.responses.rejected", 10)
        assert eng.tick(4.0) == []
        m.count("serve.responses.rejected", 10)
        fired = eng.tick(5.0)
        assert [t.state for t in fired] == [ALERT_FIRING]
        assert fired[0].slo == "avail"
        assert fired[0].window_index == 4
        assert fired[0].burn_short == pytest.approx(10.0)
        assert eng.state_of("avail", SEVERITY_PAGE) == ALERT_FIRING
        assert eng.active_alerts()[0]["severity"] == SEVERITY_PAGE
        # Recovery: one healthy window drops the short burn below the
        # threshold and the alert clears immediately.
        m.count("serve.responses.complete", 10)
        cleared = eng.tick(6.0)
        assert [t.state for t in cleared] == [ALERT_OK]
        assert eng.active_alerts() == []

    def test_replays_bit_for_bit(self):
        def run():
            m, eng = self.make_engine()
            out = []
            for t in range(1, 10):
                if t % 3 == 0:
                    m.count("serve.responses.rejected", 9)
                else:
                    m.count("serve.responses.complete", 9)
                out.extend(tr.as_dict() for tr in eng.tick(float(t)))
            return out

        assert run() == run()

    def test_transition_as_dict_is_json_ready(self):
        m, eng = self.make_engine(threshold=1.0)
        m.count("serve.responses.rejected", 5)
        (tr,) = eng.tick(1.0)
        d = tr.as_dict()
        assert d["state"] == ALERT_FIRING
        assert d["at_s"] == 1.0
        assert set(d) == {
            "at_s", "window_index", "slo", "severity", "state",
            "burn_long", "burn_short",
        }


class TestDashboard:
    def test_renders_quiet_health(self):
        text = render_dashboard(
            {
                "at_s": 1.5,
                "queue_depth": 0,
                "outstanding": 0,
                "requests": 4,
                "pool_occupancy": 0.0,
                "lanes": [],
                "window": {},
                "active_alerts": [],
                "recorder": {"buffered": 3, "recorded": 3, "dumps": 0},
            }
        )
        assert "all objectives within budget" in text
        assert "requests=4" in text

    def test_renders_alerts_and_lanes(self):
        text = render_dashboard(
            {
                "at_s": 9.0,
                "queue_depth": 2,
                "outstanding": 1,
                "requests": 40,
                "pool_occupancy": 0.5,
                "lanes": [
                    {
                        "lane": "abc/0",
                        "busy": True,
                        "slowdown": 1.2,
                        "breaker": {"state": "open"},
                        "dispatches": 9,
                        "failures": 3,
                    }
                ],
                "window": {
                    "request_rate": 8.0,
                    "shed_rate": 2.0,
                    "latency_p50_s": 0.01,
                    "latency_p99_s": 0.2,
                    "partial_responses": 1,
                },
                "active_alerts": [
                    {
                        "slo": "serve-availability",
                        "severity": "page",
                        "since_s": 8.0,
                        "burn_long": 12.0,
                        "burn_short": 14.0,
                    }
                ],
                "recorder": {"buffered": 10, "recorded": 10, "dumps": 1},
            }
        )
        assert "abc/0" in text
        assert "serve-availability" in text
        assert "page" in text
