"""Metrics registry: counters, gauges, exact-bucket histograms."""

import numpy as np
import pytest

from repro.obs.export import stable_json
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    collecting,
    default_buckets,
    get_metrics,
)

pytestmark = pytest.mark.obs


class TestHistogram:
    def test_percentiles_exact_to_bucket_resolution(self):
        h = Histogram("lat", buckets=[1.0, 2.0, 4.0, 8.0])
        for v in (0.5, 1.5, 1.6, 3.0, 5.0, 6.0, 7.0, 7.5):
            h.observe(v)
        assert h.count == 8
        assert h.percentile(12.5) == 1.0
        assert h.percentile(50) == 4.0
        assert h.percentile(100) == 8.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("x", buckets=[1.0])
        h.observe(10.0)
        h.observe(42.0)
        assert h.percentile(100) == 42.0

    def test_observe_array_matches_scalar_observe(self):
        values = np.array([0.1, 0.5, 1.0, 2.5, 2.5, 100.0])
        a = Histogram("a", buckets=[0.5, 1.0, 2.0, 4.0])
        b = Histogram("b", buckets=[0.5, 1.0, 2.0, 4.0])
        a.observe_array(values)
        for v in values:
            b.observe(float(v))
        assert a.counts == b.counts
        assert a.count == b.count and a.sum == b.sum
        assert a.min == b.min and a.max == b.max

    def test_empty_histogram(self):
        h = Histogram("e")
        assert h.percentile(99) == 0.0
        assert h.mean == 0.0
        d = h.as_dict()
        assert d["count"] == 0 and d["buckets"] == []

    def test_merge_and_layout_mismatch(self):
        a = Histogram("m", buckets=[1.0, 2.0])
        b = Histogram("m", buckets=[1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        a.merge(b)
        assert a.count == 2 and a.counts == [1, 1, 0]
        with pytest.raises(ValueError):
            a.merge(Histogram("m", buckets=[1.0, 3.0]))

    def test_roundtrip_is_byte_stable(self):
        h = Histogram("rt")
        h.observe_array(np.array([1e-7, 0.003, 2.0, 1e12]))
        again = Histogram.from_dict("rt", h.as_dict())
        assert stable_json(again.as_dict()) == stable_json(h.as_dict())
        assert h.as_dict()["bounds"] == "geometric"

    def test_default_buckets_are_geometric(self):
        bounds = default_buckets()
        ratios = [bounds[i + 1] / bounds[i] for i in range(len(bounds) - 1)]
        assert all(abs(r - 10 ** 0.25) < 1e-9 for r in ratios)


class TestRegistry:
    def test_count_gauge_observe(self):
        m = MetricsRegistry()
        assert m.count("a") == 1
        assert m.count("a", 4) == 5
        m.gauge("g", 0.5)
        m.gauge("g", 0.7)
        m.observe("h", 2.0)
        d = m.as_dict()
        assert d["schema"] == METRICS_SCHEMA
        assert d["counters"] == {"a": 5}
        assert d["gauges"] == {"g": 0.7}
        assert d["histograms"]["h"]["count"] == 1

    def test_merge_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("c", 2)
        b.count("c", 3)
        a.gauge("g", 1.0)
        b.gauge("g", 9.0)
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        b.observe("only_b", 5.0)
        a.merge(b)
        assert a.counters["c"] == 5  # counters add
        assert a.gauges["g"] == 9.0  # gauges last-write-wins
        assert a.histograms["h"].count == 2  # histograms merge
        assert a.histograms["only_b"].count == 1

    def test_serialisation_roundtrip_sorted_and_stable(self):
        m = MetricsRegistry()
        m.count("z.last", 1)
        m.count("a.first", 2)
        m.gauge("mid", 3.5)
        m.observe("h", 0.25)
        payload = m.as_dict()
        assert list(payload["counters"]) == ["a.first", "z.last"]
        again = MetricsRegistry.from_dict(payload)
        assert stable_json(again.as_dict()) == stable_json(payload)

    def test_clear(self):
        m = MetricsRegistry()
        m.count("x")
        m.clear()
        assert m.as_dict()["counters"] == {}

    def test_collecting_scopes_the_global_registry(self):
        outer = get_metrics()
        with collecting() as m:
            get_metrics().count("scoped")
            assert get_metrics() is m
        assert get_metrics() is outer
        assert m.counters == {"scoped": 1}
        assert "scoped" not in outer.counters
