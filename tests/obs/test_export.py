"""Exporters: Chrome trace-event JSON and the ``repro.metrics/1`` payload."""

import json

import numpy as np
import pytest

from repro.obs.export import (
    chrome_trace,
    load_metrics,
    metrics_payload,
    stable_json,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import METRICS_SCHEMA, Histogram, MetricsRegistry
from repro.obs.trace import Tracer

pytestmark = pytest.mark.obs


def demo_tracer() -> Tracer:
    """A small deterministic tracer: two lanes, nested spans, odd attrs."""
    t = Tracer()
    with t.span("run", category="engine", mode="find-all"):
        with t.span("stage:filter", category="stage", iters=np.int64(3)):
            with t.span("kernel:refine", category="kernel", work=np.float32(1.5)):
                pass
        with t.lane("rank-0"):
            with t.span("rank:0", category="cluster", rank=0):
                pass
    return t


class TestChromeTrace:
    def test_schema_valid(self):
        payload = chrome_trace(demo_tracer())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["clock"] == "tick"

    def test_one_thread_name_metadata_event_per_lane(self):
        payload = chrome_trace(demo_tracer())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["main", "rank-0"]
        assert len({e["tid"] for e in meta}) == 2
        # Every span event lands on a declared lane track.
        tids = {e["tid"] for e in meta}
        assert all(
            e["tid"] in tids for e in payload["traceEvents"] if e["ph"] == "X"
        )

    def test_span_events_carry_json_safe_attrs(self):
        payload = chrome_trace(demo_tracer())
        by_name = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert by_name["stage:filter"]["args"]["iters"] == 3
        assert by_name["kernel:refine"]["args"]["work"] == pytest.approx(1.5)
        assert by_name["stage:filter"]["cat"] == "stage"
        # Must serialise without a custom encoder.
        json.dumps(payload)

    def test_tick_clock_is_byte_identical_across_runs(self):
        a = stable_json(chrome_trace(demo_tracer()))
        b = stable_json(chrome_trace(demo_tracer()))
        assert a == b

    def test_tick_events_nest_in_time(self):
        payload = chrome_trace(demo_tracer())
        spans = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        run, stage = spans["run"], spans["stage:filter"]
        assert run["ts"] < stage["ts"]
        assert stage["ts"] + stage["dur"] < run["ts"] + run["dur"]
        assert all(e["dur"] >= 1 for e in spans.values())

    def test_wall_clock_mode(self):
        payload = chrome_trace(demo_tracer(), clock="wall")
        assert payload["otherData"]["clock"] == "wall"
        assert validate_chrome_trace(payload) == []
        for e in payload["traceEvents"]:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace(demo_tracer(), clock="cpu")

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(demo_tracer(), tmp_path / "trace.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert validate_chrome_trace(json.loads(text)) == []

    def test_validator_catches_malformed_payloads(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 0, "tid": 0},
                {"ph": "X", "pid": 0, "tid": 0, "ts": "soon", "dur": -1},
                {"ph": "X", "name": "y", "pid": 0, "tid": 0, "ts": 0, "dur": 1,
                 "args": []},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("unknown phase" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ts' not numeric" in p for p in problems)
        assert any("negative dur" in p for p in problems)
        assert any("args not an object" in p for p in problems)
        assert any("not an object" in p for p in problems)


class TestMetricsPayload:
    def registry(self) -> MetricsRegistry:
        m = MetricsRegistry()
        m.count("engine.matches", 7)
        m.gauge("engine.total_seconds", 0.25)
        m.observe("join.pair_matches", 2.0)
        return m

    def test_payload_wraps_registry_with_context(self):
        payload = metrics_payload(self.registry(), {"seed": 0})
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["context"] == {"seed": 0}
        assert validate_metrics(payload) == []

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_metrics(self.registry(), tmp_path / "m.json", {"seed": 1})
        loaded = load_metrics(path)
        assert loaded == metrics_payload(self.registry(), {"seed": 1})
        assert path.read_text().endswith("\n")

    def test_load_rejects_invalid_payloads(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "counters": {}}))
        with pytest.raises(ValueError, match="not a valid"):
            load_metrics(path)

    def test_validator_catches_bad_sections(self):
        problems = validate_metrics(
            {
                "schema": METRICS_SCHEMA,
                "counters": {"ok": 1, "bad": "x", "worse": True},
                "gauges": [],
                "histograms": {"h": {"count": 1}},
                "context": "nope",
            }
        )
        assert any("counters['bad']" in p for p in problems)
        assert any("counters['worse']" in p for p in problems)
        assert any("gauges missing or not an object" in p for p in problems)
        assert any("missing 'sum'" in p for p in problems)
        assert any("context not an object" in p for p in problems)


class TestHistogramValidation:
    """Bucket-monotonicity and sum/min/max consistency of serialised histograms.

    Property-style: any honestly serialised histogram — random values,
    random bucket layouts — must validate clean, and every single-field
    corruption of it must be flagged.
    """

    def payload(self, hist_dict):
        return {
            "schema": METRICS_SCHEMA,
            "counters": {},
            "gauges": {},
            "histograms": {"h": hist_dict},
        }

    def test_any_honest_histogram_validates_clean(self):
        rng = np.random.default_rng(11)
        for trial in range(20):
            if trial % 2:
                buckets = sorted(
                    set(rng.uniform(0.001, 10.0, size=rng.integers(1, 8)))
                )
                h = Histogram("h", buckets=buckets)
            else:
                h = Histogram("h")  # default geometric layout
            for v in rng.uniform(0.0, 20.0, size=int(rng.integers(0, 50))):
                h.observe(float(v))
            assert validate_metrics(self.payload(h.as_dict())) == [], (
                f"trial {trial} produced spurious problems"
            )

    def corrupted(self, mutate):
        h = Histogram("h", buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.05, 0.5, 5.0, 0.05):
            h.observe(v)
        d = h.as_dict()
        mutate(d)
        return validate_metrics(self.payload(d))

    def test_non_monotonic_bucket_indices_flagged(self):
        problems = self.corrupted(
            lambda d: d["buckets"].__setitem__(0, [3, 1])
        )
        assert any("not strictly increasing" in p for p in problems)

    def test_bucket_index_beyond_layout_flagged(self):
        problems = self.corrupted(
            lambda d: d["buckets"].append([9, 1])
        )
        assert any("beyond" in p for p in problems)

    def test_count_mismatch_flagged(self):
        problems = self.corrupted(lambda d: d.update(count=99))
        assert any("sum to" in p for p in problems)

    def test_non_positive_bucket_count_flagged(self):
        problems = self.corrupted(
            lambda d: d["buckets"].__setitem__(0, [0, 0])
        )
        assert any("non-positive" in p for p in problems)

    def test_boolean_pair_members_flagged(self):
        problems = self.corrupted(
            lambda d: d["buckets"].__setitem__(0, [True, 1])
        )
        assert any("integer pair" in p for p in problems)

    def test_min_max_sum_inconsistency_flagged(self):
        assert any(
            "min" in p and "max" in p
            for p in self.corrupted(lambda d: d.update(min=5.0, max=0.1))
        )
        assert any(
            "outside" in p
            for p in self.corrupted(lambda d: d.update(sum=1e6))
        )

    def test_unsorted_bounds_flagged(self):
        problems = self.corrupted(lambda d: d["bounds"].reverse())
        assert any("ascending" in p for p in problems)

    def test_unknown_top_level_keys_tolerated(self):
        # BENCH_obs.json rides an `obs_overhead` block alongside the
        # metrics sections; the validator must not reject it.
        h = Histogram("h")
        h.observe(1.0)
        payload = self.payload(h.as_dict())
        payload["obs_overhead"] = {"overhead_frac": 0.01}
        assert validate_metrics(payload) == []
