"""Exporters: Chrome trace-event JSON and the ``repro.metrics/1`` payload."""

import json

import numpy as np
import pytest

from repro.obs.export import (
    chrome_trace,
    load_metrics,
    metrics_payload,
    stable_json,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.obs.trace import Tracer

pytestmark = pytest.mark.obs


def demo_tracer() -> Tracer:
    """A small deterministic tracer: two lanes, nested spans, odd attrs."""
    t = Tracer()
    with t.span("run", category="engine", mode="find-all"):
        with t.span("stage:filter", category="stage", iters=np.int64(3)):
            with t.span("kernel:refine", category="kernel", work=np.float32(1.5)):
                pass
        with t.lane("rank-0"):
            with t.span("rank:0", category="cluster", rank=0):
                pass
    return t


class TestChromeTrace:
    def test_schema_valid(self):
        payload = chrome_trace(demo_tracer())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["clock"] == "tick"

    def test_one_thread_name_metadata_event_per_lane(self):
        payload = chrome_trace(demo_tracer())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["main", "rank-0"]
        assert len({e["tid"] for e in meta}) == 2
        # Every span event lands on a declared lane track.
        tids = {e["tid"] for e in meta}
        assert all(
            e["tid"] in tids for e in payload["traceEvents"] if e["ph"] == "X"
        )

    def test_span_events_carry_json_safe_attrs(self):
        payload = chrome_trace(demo_tracer())
        by_name = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert by_name["stage:filter"]["args"]["iters"] == 3
        assert by_name["kernel:refine"]["args"]["work"] == pytest.approx(1.5)
        assert by_name["stage:filter"]["cat"] == "stage"
        # Must serialise without a custom encoder.
        json.dumps(payload)

    def test_tick_clock_is_byte_identical_across_runs(self):
        a = stable_json(chrome_trace(demo_tracer()))
        b = stable_json(chrome_trace(demo_tracer()))
        assert a == b

    def test_tick_events_nest_in_time(self):
        payload = chrome_trace(demo_tracer())
        spans = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        run, stage = spans["run"], spans["stage:filter"]
        assert run["ts"] < stage["ts"]
        assert stage["ts"] + stage["dur"] < run["ts"] + run["dur"]
        assert all(e["dur"] >= 1 for e in spans.values())

    def test_wall_clock_mode(self):
        payload = chrome_trace(demo_tracer(), clock="wall")
        assert payload["otherData"]["clock"] == "wall"
        assert validate_chrome_trace(payload) == []
        for e in payload["traceEvents"]:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace(demo_tracer(), clock="cpu")

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(demo_tracer(), tmp_path / "trace.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert validate_chrome_trace(json.loads(text)) == []

    def test_validator_catches_malformed_payloads(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 0, "tid": 0},
                {"ph": "X", "pid": 0, "tid": 0, "ts": "soon", "dur": -1},
                {"ph": "X", "name": "y", "pid": 0, "tid": 0, "ts": 0, "dur": 1,
                 "args": []},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("unknown phase" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ts' not numeric" in p for p in problems)
        assert any("negative dur" in p for p in problems)
        assert any("args not an object" in p for p in problems)
        assert any("not an object" in p for p in problems)


class TestMetricsPayload:
    def registry(self) -> MetricsRegistry:
        m = MetricsRegistry()
        m.count("engine.matches", 7)
        m.gauge("engine.total_seconds", 0.25)
        m.observe("join.pair_matches", 2.0)
        return m

    def test_payload_wraps_registry_with_context(self):
        payload = metrics_payload(self.registry(), {"seed": 0})
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["context"] == {"seed": 0}
        assert validate_metrics(payload) == []

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_metrics(self.registry(), tmp_path / "m.json", {"seed": 1})
        loaded = load_metrics(path)
        assert loaded == metrics_payload(self.registry(), {"seed": 1})
        assert path.read_text().endswith("\n")

    def test_load_rejects_invalid_payloads(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "counters": {}}))
        with pytest.raises(ValueError, match="not a valid"):
            load_metrics(path)

    def test_validator_catches_bad_sections(self):
        problems = validate_metrics(
            {
                "schema": METRICS_SCHEMA,
                "counters": {"ok": 1, "bad": "x", "worse": True},
                "gauges": [],
                "histograms": {"h": {"count": 1}},
                "context": "nope",
            }
        )
        assert any("counters['bad']" in p for p in problems)
        assert any("counters['worse']" in p for p in problems)
        assert any("gauges missing or not an object" in p for p in problems)
        assert any("missing 'sum'" in p for p in problems)
        assert any("context not an object" in p for p in problems)
