"""Span tracer invariants: nesting, ordering, lanes, no-op behaviour."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    tracing,
)

pytestmark = pytest.mark.obs


class TestNesting:
    def test_parent_child_links(self):
        t = Tracer()
        with t.span("run", category="engine"):
            with t.span("stage", category="stage"):
                with t.span("kernel", category="kernel"):
                    pass
            with t.span("stage2", category="stage"):
                pass
        run, stage, kern, stage2 = t.spans
        assert run.parent_id is None
        assert stage.parent_id == run.span_id
        assert kern.parent_id == stage.span_id
        assert stage2.parent_id == run.span_id
        assert [s.depth for s in t.spans] == [0, 1, 2, 1]

    def test_tick_clock_orders_every_event(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("c"):
            pass
        a, b, c = t.spans
        # Open/close each consume one tick; nesting is strict containment.
        assert a.start_tick < b.start_tick < b.end_tick < a.end_tick
        assert a.end_tick < c.start_tick < c.end_tick
        assert all(s.duration_ticks >= 1 for s in t.spans)

    def test_spans_recorded_in_start_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["outer", "inner"]
        assert t.roots() == [t.spans[0]]
        assert t.children(t.spans[0]) == [t.spans[1]]
        assert t.find("inner") == [t.spans[1]]
        assert t.max_depth() == 1

    def test_exception_unwinding_closes_abandoned_children(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                t.span("abandoned").__enter__()  # never exited explicitly
                raise RuntimeError("boom")
        outer = t.find("outer")[0]
        assert outer.end_tick > outer.start_tick
        # A new root opens at depth 0 — the stack was fully unwound.
        with t.span("after"):
            pass
        assert t.find("after")[0].depth == 0

    def test_attrs_via_kwargs_and_set(self):
        t = Tracer()
        with t.span("k", category="kernel", work_items=7) as sp:
            sp.set(matches=3)
        span = t.spans[0]
        assert span.attrs == {"work_items": 7, "matches": 3}
        assert span.category == "kernel"


class TestLanes:
    def test_default_lane_is_main(self):
        t = Tracer()
        with t.span("x"):
            pass
        assert t.spans[0].lane == "main"
        assert t.lanes == ["main"]

    def test_lane_scoping_and_depth_per_lane(self):
        t = Tracer()
        with t.span("driver"):
            with t.lane("rank-0"):
                with t.span("rank-root"):
                    with t.span("rank-child"):
                        pass
        root = t.find("rank-root")[0]
        child = t.find("rank-child")[0]
        assert root.lane == child.lane == "rank-0"
        # Depth and parentage are per lane: the rank span is a lane root.
        assert root.depth == 0 and root.parent_id is None
        assert child.parent_id == root.span_id
        assert t.lanes == ["main", "rank-0"]

    def test_explicit_lane_argument(self):
        t = Tracer()
        with t.span("x", lane="rank-3"):
            pass
        assert t.spans[0].lane == "rank-3"


class TestNullTracer:
    def test_default_tracer_is_noop_singleton(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_noop_span_records_nothing(self):
        n = NullTracer()
        with n.span("x", category="kernel", work=1) as sp:
            sp.set(more=2)
        assert n.spans == ()
        assert n.roots() == [] and n.find("x") == []
        assert n.max_depth() == -1

    def test_noop_handle_is_shared(self):
        n = NullTracer()
        assert n.span("a") is n.span("b")
        assert n.span("a").span is None

    def test_noop_lane_is_noop(self):
        n = NullTracer()
        with n.lane("rank-0"):
            with n.span("x"):
                pass
        assert n.lanes == ()


class TestInstallation:
    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        with tracing() as t:
            assert get_tracer() is t
            assert t.enabled
        assert get_tracer() is before

    def test_set_tracer_none_restores_noop(self):
        t = Tracer()
        previous = set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
        assert previous is NULL_TRACER

    def test_traced_decorator(self):
        @traced("unit-of-work", category="func")
        def work(x):
            return x * 2

        assert work(2) == 4  # no tracer installed: plain call
        with tracing() as t:
            assert work(3) == 6
        assert [s.name for s in t.spans] == ["unit-of-work"]
        assert t.spans[0].category == "func"
