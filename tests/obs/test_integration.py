"""End-to-end observability acceptance tests.

Covers the PR's acceptance criteria: a traced ``find_all`` run produces a
four-level span hierarchy (run -> stage -> kernel -> work-group), tracing
never changes match results, the no-op tracer is cheap, per-stage counts
aggregate correctly through chunked/resilient/checkpointed execution, the
runtime report speaks the metrics schema, and ``repro profile`` round-trips
through its JSON/trace/baseline flags.
"""

import copy
import json
import time

import pytest

from repro.chem.datasets import build_benchmark
from repro.cli import main as cli_main
from repro.core.chunked import run_chunked
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.obs.export import (
    load_metrics,
    stable_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import METRICS_SCHEMA, collecting
from repro.obs.trace import NULL_TRACER, get_tracer, tracing
from repro.runtime.resilient import run_resilient

pytestmark = pytest.mark.obs

N_QUERIES = 6
N_DATA = 30
SEED = 7
ITERATIONS = 3


@pytest.fixture(scope="module")
def dataset():
    """Small deterministic workload shared across this module."""
    return build_benchmark(
        scale=1.0, n_queries=N_QUERIES, n_data_graphs=N_DATA, seed=SEED
    )


def run_once(dataset, config=None):
    config = config or SigmoConfig(refinement_iterations=ITERATIONS)
    engine = SigmoEngine(dataset.queries, dataset.data, config)
    return engine.run(mode="find-all")


class TestTracedPipeline:
    def test_find_all_produces_four_nested_levels(self, dataset):
        with tracing() as t:
            result = run_once(dataset)
        assert result.total_matches > 0
        assert t.max_depth() >= 3  # depths 0..3 = four nested levels
        roots = t.roots()
        assert [r.name for r in roots if r.lane == "main"] == ["run"]
        # Walk one work-group span back up to the root: wg -> kernel ->
        # stage -> run, the hierarchy the profile report is built from.
        by_id = {s.span_id: s for s in t.spans}
        wg = next(s for s in t.spans if s.category == "workgroup")
        chain = [wg]
        while chain[-1].parent_id is not None:
            chain.append(by_id[chain[-1].parent_id])
        categories = [s.category for s in reversed(chain)]
        assert categories[0] == "engine"
        assert "stage" in categories and "kernel" in categories
        assert {"engine", "stage", "kernel", "workgroup"} <= {
            s.category for s in t.spans
        }

    def test_run_span_attrs_match_result(self, dataset):
        with tracing() as t:
            result = run_once(dataset)
        run = t.find("run")[0]
        assert run.attrs["mode"] == "find-all"
        assert run.attrs["n_queries"] == N_QUERIES
        assert run.attrs["n_data_graphs"] == N_DATA
        assert run.attrs["matches"] == result.total_matches

    def test_tracing_does_not_change_results(self, dataset):
        config = SigmoConfig(refinement_iterations=ITERATIONS, record_embeddings=True)
        assert get_tracer() is NULL_TRACER
        plain = run_once(dataset, config)
        with tracing():
            traced = run_once(dataset, config)
        assert traced.total_matches == plain.total_matches
        assert traced.matched_pairs() == plain.matched_pairs()
        assert traced.embeddings == plain.embeddings
        assert traced.stage_counts == plain.stage_counts

    def test_two_seeded_runs_export_byte_identical_traces(self, dataset):
        with tracing() as t1:
            run_once(dataset)
        with tracing() as t2:
            run_once(dataset)
        from repro.obs.export import chrome_trace

        assert stable_json(chrome_trace(t1)) == stable_json(chrome_trace(t2))

    def test_noop_tracer_overhead_is_negligible(self, dataset):
        # Measure per-call cost of a disabled span, then bound the total
        # no-op cost of all spans a traced run would open against the
        # workload's runtime.  This stays robust on noisy CI machines
        # where directly diffing two wall-clock runs flakes.
        start = time.perf_counter()
        run_once(dataset)
        workload_seconds = time.perf_counter() - start

        with tracing() as t:
            run_once(dataset)
        n_spans = len(t.spans)

        reps = 20_000
        start = time.perf_counter()
        for _ in range(reps):
            with NULL_TRACER.span("kernel:x", category="kernel", work_items=1):
                pass
        per_span = (time.perf_counter() - start) / reps
        assert per_span * n_spans < 0.05 * workload_seconds


class TestStageCounts:
    def test_engine_counts_filter_iterations(self, dataset):
        result = run_once(dataset)
        assert result.stage_counts["filter"] == len(result.filter_result.iterations)
        assert result.stage_counts["join"] == 1
        detail = result.stage_timings()
        assert detail["filter"]["count"] == result.stage_counts["filter"]

    def test_chunked_run_sums_counts_across_chunks(self, dataset):
        whole = run_once(dataset)
        chunked = run_chunked(
            dataset.queries,
            dataset.data,
            chunk_size=10,
            config=SigmoConfig(refinement_iterations=ITERATIONS),
        )
        assert chunked.n_chunks == 3
        assert chunked.total_matches == whole.total_matches
        assert chunked.stage_counts["join"] == chunked.n_chunks
        for stage, n in chunked.stage_counts.items():
            assert n == sum(
                r.stage_counts.get(stage, 0) for r in chunked.chunk_results
            )

    def test_resilient_run_matches_chunked_counts(self, dataset):
        config = SigmoConfig(refinement_iterations=ITERATIONS)
        chunked = run_chunked(dataset.queries, dataset.data, 10, config=config)
        resilient = run_resilient(
            dataset.queries, dataset.data, chunk_size=10, config=config
        )
        assert resilient.total_matches == chunked.total_matches
        assert resilient.stage_counts == chunked.stage_counts

    def test_checkpoint_roundtrip_preserves_counts(self, dataset, tmp_path):
        config = SigmoConfig(refinement_iterations=ITERATIONS)
        first = run_resilient(
            dataset.queries,
            dataset.data,
            chunk_size=10,
            config=config,
            checkpoint=tmp_path / "ckpt",
        )
        # Second run resumes every chunk from the checkpoint store.
        second = run_resilient(
            dataset.queries,
            dataset.data,
            chunk_size=10,
            config=config,
            checkpoint=tmp_path / "ckpt",
        )
        assert second.total_matches == first.total_matches
        assert second.stage_counts == first.stage_counts


class TestRuntimeReport:
    def test_report_speaks_the_metrics_schema(self, dataset):
        result = run_resilient(dataset.queries, dataset.data, chunk_size=10)
        payload = result.report.to_dict()
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["counters"]["runtime.attempts"] == result.report.n_attempts
        assert len(payload["attempts"]) == result.report.n_attempts
        assert "runtime.attempt_seconds" in payload["histograms"]
        assert "attempt(s)" in result.report.summary()

    def test_record_feeds_the_installed_registry(self, dataset):
        with collecting() as m:
            result = run_resilient(dataset.queries, dataset.data, chunk_size=10)
        assert m.counters["runtime.attempts"] == result.report.n_attempts
        assert m.counters["runtime.outcomes.ok"] >= 1


class TestProfileCli:
    ARGS = [
        "profile",
        "--n-queries", str(N_QUERIES),
        "--n-molecules", str(N_DATA),
        "--iterations", str(ITERATIONS),
        "--seed", str(SEED),
    ]

    def test_json_and_trace_outputs(self, tmp_path, capsys):
        metrics_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        rc = cli_main(
            self.ARGS + ["--json", str(metrics_path), "--trace", str(trace_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out and "kernels by simulated bytes" in out
        payload = load_metrics(metrics_path)  # raises if schema-invalid
        assert payload["context"]["workload"] == "smoke"
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_against_self_passes_and_regression_fails(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        rc = cli_main(self.ARGS + ["--json", str(baseline)])
        assert rc == 0
        rc = cli_main(self.ARGS + ["--against", str(baseline)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

        # Inject a regression: the baseline now expects fewer matches.
        payload = load_metrics(baseline)
        doctored = copy.deepcopy(payload)
        doctored["counters"]["engine.matches"] -= 1
        baseline.write_text(stable_json(doctored))
        rc = cli_main(self.ARGS + ["--against", str(baseline)])
        assert rc == 1
        assert "engine.matches" in capsys.readouterr().err


def test_write_chrome_trace_from_find_all(dataset, tmp_path):
    """The headline artifact: a Perfetto-loadable trace of one run."""
    with tracing() as t:
        run_once(dataset)
    path = write_chrome_trace(t, tmp_path / "run.json")
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == []
    depths = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
    assert "run" in depths
