"""Unit tests for the counter extraction."""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.device.counters import KernelCounters, PipelineCounters, counters_from_result


@pytest.fixture(scope="module")
def run_and_counters():
    ds = build_benchmark(scale=1.0, n_queries=10, n_data_graphs=25, seed=9)
    engine = SigmoEngine(ds.queries, ds.data, SigmoConfig(refinement_iterations=4))
    result = engine.run()
    return result, counters_from_result(result, engine.query, engine.data)


class TestKernelCounters:
    def test_intensity(self):
        k = KernelCounters(name="x", instructions=100, bytes_hbm=50)
        assert k.instruction_intensity() == pytest.approx(2.0)

    def test_intensity_no_bytes(self):
        assert KernelCounters(name="x", instructions=1).instruction_intensity() == float("inf")

    def test_scaled(self):
        k = KernelCounters(name="x", instructions=10, bytes_hbm=20, work_items=5)
        s = k.scaled(3)
        assert s.instructions == 30 and s.bytes_hbm == 60 and s.work_items == 15


class TestExtraction:
    def test_one_filter_kernel_per_iteration(self, run_and_counters):
        result, cnt = run_and_counters
        assert len(cnt.filter_iterations) == 4
        assert cnt.filter_iterations[0].name == "filter-1"

    def test_mapping_and_join_present(self, run_and_counters):
        _, cnt = run_and_counters
        assert cnt.mapping is not None and cnt.join is not None
        assert cnt.join.instructions > 0

    def test_join_work_distribution_present(self, run_and_counters):
        result, cnt = run_and_counters
        assert cnt.join.work_per_item is not None
        assert cnt.join.work_per_item.size == result.gmcr.n_pairs

    def test_later_iterations_cheaper(self, run_and_counters):
        # survivor-driven refine cost shrinks as candidates shrink (the
        # small BFS-ring term can wiggle, so compare first vs last).
        _, cnt = run_and_counters
        instr = [k.instructions for k in cnt.filter_iterations[1:]]
        assert instr[-1] <= instr[0]

    def test_filter_total_merges(self, run_and_counters):
        _, cnt = run_and_counters
        total = cnt.filter_total
        assert total.instructions == pytest.approx(
            sum(k.instructions for k in cnt.filter_iterations)
        )

    def test_all_kernels_order(self, run_and_counters):
        _, cnt = run_and_counters
        names = [k.name for k in cnt.all_kernels()]
        assert names[-2:] == ["mapping", "join"]

    def test_pipeline_scaled(self, run_and_counters):
        _, cnt = run_and_counters
        s = cnt.scaled(10)
        assert s.join.instructions == pytest.approx(cnt.join.instructions * 10)
        assert len(s.filter_iterations) == len(cnt.filter_iterations)
