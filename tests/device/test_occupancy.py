"""Unit tests for the occupancy timeline (Fig. 8 reconstruction)."""

import numpy as np
import pytest

from repro.chem.datasets import build_benchmark
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine
from repro.device.counters import counters_from_result
from repro.device.occupancy import OccupancyTimeline, build_timeline
from repro.device.spec import DEVICES
from repro.perf.model import PerformanceModel


@pytest.fixture(scope="module")
def timeline():
    ds = build_benchmark(scale=1.0, n_queries=12, n_data_graphs=30, seed=2)
    engine = SigmoEngine(ds.queries, ds.data, SigmoConfig(refinement_iterations=6))
    result = engine.run()
    factor = 114901 / 30
    cnt = counters_from_result(result, engine.query, engine.data).scaled(factor)
    device = DEVICES["nvidia-v100s"]
    model = PerformanceModel(device)
    times = model.estimate(cnt).per_kernel
    return build_timeline(cnt, times, device)


class TestTimelineMechanics:
    def test_append_sequencing(self):
        t = OccupancyTimeline()
        t.append(1.0, 0.5, "a")
        t.append(2.0, 0.9, "b")
        assert t.total_seconds == pytest.approx(3.0)
        assert t.segments[1].t_start_s == pytest.approx(1.0)

    def test_sample_shapes(self):
        t = OccupancyTimeline()
        t.append(1.0, 0.5, "a")
        times, occ = t.sample(100)
        assert times.shape == occ.shape == (100,)
        assert occ.max() == pytest.approx(50.0)

    def test_mean_occupancy(self):
        t = OccupancyTimeline()
        t.append(1.0, 1.0, "x")
        t.append(1.0, 0.0, "x-sync")
        assert t.mean_occupancy("x") == pytest.approx(0.5)


class TestFig8Shape:
    def test_six_filter_peaks(self, timeline):
        # paper: "six distinct peaks corresponding to the filter phase"
        assert timeline.phase_peaks("filter") == 6

    def test_filter_reaches_high_occupancy(self, timeline):
        filter_segs = [
            s for s in timeline.segments
            if s.phase.startswith("filter") and not s.phase.endswith("sync")
        ]
        assert max(s.occupancy for s in filter_segs) >= 0.95

    def test_join_occupancy_mid_range(self, timeline):
        join = [s for s in timeline.segments if s.phase == "join"]
        assert len(join) == 1
        # paper: join plateaus around 48%
        assert 0.2 <= join[0].occupancy <= 0.8

    def test_sync_dips_between_filters(self, timeline):
        syncs = [s for s in timeline.segments if s.phase.endswith("sync")]
        assert len(syncs) == 6
        assert all(s.occupancy < 0.2 for s in syncs)

    def test_starts_with_init_gap(self, timeline):
        assert timeline.segments[0].phase == "init"
        assert timeline.segments[0].occupancy == 0.0
