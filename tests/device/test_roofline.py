"""Unit tests for the instruction roofline (Fig. 9)."""

import pytest

from repro.device.counters import KernelCounters, PipelineCounters
from repro.device.roofline import RooflinePoint, build_roofline, kernel_point
from repro.device.spec import DEVICES

V100S = DEVICES["nvidia-v100s"]


class TestKernelPoint:
    def test_throughput_from_runtime(self):
        k = KernelCounters(name="k", instructions=1e9, bytes_hbm=1e8)
        p = kernel_point(k, runtime_s=1.0)
        assert p.throughput_ginstr_s == pytest.approx(1.0)
        assert p.intensity == pytest.approx(10.0)

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError):
            kernel_point(KernelCounters(name="k", instructions=1), 0.0)


class TestBounds:
    def test_low_intensity_is_hbm_bound(self):
        p = RooflinePoint("k", intensity=0.01, throughput_ginstr_s=1)
        assert p.bound_by(V100S) == "hbm"

    def test_high_intensity_is_compute_bound(self):
        p = RooflinePoint("k", intensity=1e4, throughput_ginstr_s=10)
        assert p.bound_by(V100S) == "compute"

    def test_roof_at(self):
        model = build_roofline(PipelineCounters(), {}, V100S)
        assert model.roof_at(1e9) == V100S.peak_ginstr_per_s
        assert model.roof_at(0.001, "hbm") == pytest.approx(0.001 * V100S.hbm_bandwidth_gbs)

    def test_ridge_point(self):
        model = build_roofline(PipelineCounters(), {}, V100S)
        ridge = model.ridge_point("hbm")
        assert model.roof_at(ridge * 0.99) < V100S.peak_ginstr_per_s


class TestBuildRoofline:
    def test_points_below_roofs(self):
        cnt = PipelineCounters(
            filter_iterations=[
                KernelCounters(name="filter-1", instructions=1e10, bytes_hbm=1e9)
            ],
            join=KernelCounters(name="join", instructions=5e9, bytes_l2=1e9),
        )
        times = {"filter-1": 0.05, "join": 0.05}
        model = build_roofline(cnt, times, V100S)
        assert len(model.points) == 2
        for row in model.table():
            assert row["roof_fraction"] <= 1.5  # sanity: near/below the roof

    def test_skips_untimed_kernels(self):
        cnt = PipelineCounters(
            filter_iterations=[KernelCounters(name="filter-1", instructions=1e9)]
        )
        model = build_roofline(cnt, {}, V100S)
        assert model.points == []
