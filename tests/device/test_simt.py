"""Unit tests for the SIMT execution model."""

import numpy as np
import pytest

from repro.device.simt import join_divergence, simulate_simt
from repro.device.spec import DEVICES

V100S = DEVICES["nvidia-v100s"]
MI100 = DEVICES["amd-mi100"]
MAX1100 = DEVICES["intel-max1100"]


class TestSimulateSimt:
    def test_uniform_work_no_divergence(self):
        work = np.ones(256)
        out = simulate_simt(work, V100S, 128)
        assert out.divergence_factor == pytest.approx(1.0)
        assert out.useful_work == 256

    def test_single_hot_lane_diverges(self):
        work = np.ones(32)
        work[0] = 100
        out = simulate_simt(work, V100S, 32)
        # lockstep: whole sub-group runs 100 units
        assert out.executed_work == pytest.approx(100 * 32)
        assert out.divergence_factor > 20

    def test_wider_subgroups_diverge_more(self, rng):
        work = rng.exponential(5.0, size=4096)
        d_nv = simulate_simt(work, V100S, 128).divergence_factor
        d_amd = simulate_simt(work, MI100, 128).divergence_factor
        d_intel = simulate_simt(work, MAX1100, 128).divergence_factor
        # the paper's section 5.3 ordering: 64-wide > 32-wide > 16-wide
        assert d_amd > d_nv > d_intel

    def test_workgroup_count(self):
        out = simulate_simt(np.ones(1000), V100S, 128)
        assert out.n_workgroups == 8

    def test_empty_work(self):
        out = simulate_simt(np.empty(0), V100S, 128)
        assert out.executed_work == 0 and out.divergence_factor == 1.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            simulate_simt(np.array([-1.0]), V100S, 32)

    def test_bad_workgroup(self):
        with pytest.raises(ValueError):
            simulate_simt(np.ones(4), V100S, 0)

    def test_occupancy_saturates_with_many_items(self):
        out = simulate_simt(np.ones(10_000_000), V100S, 256)
        assert out.occupancy == pytest.approx(1.0)

    def test_small_launch_low_occupancy(self):
        out = simulate_simt(np.ones(320), V100S, 32)
        assert out.occupancy < 0.1


class TestJoinDivergence:
    def test_damped_relative_to_raw(self, rng):
        work = rng.exponential(3.0, size=1000)
        raw = simulate_simt(work, MI100, 64).divergence_factor
        damped = join_divergence(work, MI100, 64)
        assert 1.0 < damped < raw

    def test_none_work(self):
        assert join_divergence(None, V100S, 128) == 1.0
