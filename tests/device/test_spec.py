"""Unit tests for the device catalog."""

import pytest

from repro.device.spec import DEVICES, device_by_name


class TestCatalog:
    def test_paper_devices_present(self):
        for name in ("nvidia-v100s", "amd-mi100", "intel-max1100", "nvidia-a100"):
            assert name in DEVICES

    def test_paper_peak_compute(self):
        # section 5.3 quotes: Intel 22, AMD ~180, NVIDIA 130 TFLOPS
        assert DEVICES["intel-max1100"].peak_compute_tflops == 22.0
        assert DEVICES["nvidia-v100s"].peak_compute_tflops == 130.0
        assert DEVICES["amd-mi100"].peak_compute_tflops > 180

    def test_subgroup_widths(self):
        # section 5.3: wavefront 64 (AMD) vs 32 (NVIDIA) vs 16 (Intel)
        assert DEVICES["amd-mi100"].subgroup_size == 64
        assert DEVICES["nvidia-v100s"].subgroup_size == 32
        assert DEVICES["intel-max1100"].subgroup_size == 16

    def test_v100s_capacity(self):
        # the paper's single-GPU experiments use a 32 GB V100S
        assert DEVICES["nvidia-v100s"].vram_bytes == 32 * 1024**3

    def test_lookup_error_lists_catalog(self):
        with pytest.raises(KeyError, match="nvidia-v100s"):
            device_by_name("gtx-1080")


class TestDerived:
    def test_concurrent_work_items(self):
        d = DEVICES["nvidia-v100s"]
        assert d.max_concurrent_work_items == 80 * 64 * 32

    def test_occupancy_clamped(self):
        d = DEVICES["nvidia-v100s"]
        assert d.occupancy_of(d.max_resident_subgroups * 2) == 1.0
        assert d.occupancy_of(d.max_resident_subgroups / 2) == 0.5
