"""Unit tests for device memory accounting."""

import pytest

from repro.device.memory import DeviceMemory, DeviceOutOfMemory, sigmo_footprint_bytes
from repro.device.spec import DEVICES


class TestDeviceMemory:
    def test_allocate_and_free(self):
        mem = DeviceMemory(capacity_bytes=1000, reserve_fraction=0.0)
        mem.allocate("a", 600)
        assert mem.used == 600 and mem.available == 400
        mem.free("a")
        assert mem.used == 0

    def test_oom_carries_sizes(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        with pytest.raises(DeviceOutOfMemory) as exc:
            mem.allocate("big", 200)
        assert exc.value.requested == 200 and exc.value.available == 100

    def test_duplicate_name_rejected(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        mem.allocate("x", 10)
        with pytest.raises(ValueError):
            mem.allocate("x", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            DeviceMemory(capacity_bytes=10).free("nope")

    def test_peak_tracking(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        mem.allocate("a", 60)
        mem.free("a")
        mem.allocate("b", 30)
        assert mem.peak == 60

    def test_reserve_fraction(self):
        mem = DeviceMemory(device=DEVICES["nvidia-v100s"], reserve_fraction=0.5)
        assert mem.capacity == DEVICES["nvidia-v100s"].vram_bytes // 2

    def test_would_fit(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        assert mem.would_fit(100) and not mem.would_fit(101)

    def test_requires_capacity_or_device(self):
        with pytest.raises(ValueError):
            DeviceMemory()


class TestFootprint:
    def test_paper_scale_footprint(self):
        # section 5.1.3: 3,413 query nodes x 2,745,872 data nodes -> ~1 GB
        # bitmap-dominated footprint.
        fp = sigmo_footprint_bytes(3413, 2_745_872, 2 * 3_000_000)
        total = sum(fp.values())
        assert 0.9e9 < total < 1.6e9
        assert fp["candidate_bitmap"] / total > 0.7

    def test_bitmap_formula(self):
        fp = sigmo_footprint_bytes(8, 64, 0, word_bits=64)
        assert fp["candidate_bitmap"] == 8 * 8  # 8 rows x 1 word x 8 bytes


class TestDeviceMemoryPool:
    def make_pool(self, capacity=1000):
        from repro.device.memory import DeviceMemoryPool

        return DeviceMemoryPool(capacity_bytes=capacity, reserve_fraction=0.0)

    def test_lease_claims_and_releases(self):
        pool = self.make_pool()
        with pool.lease({"bitmap": 600, "csr": 200}):
            assert pool.used == 800 and pool.available == 200
        assert pool.used == 0
        assert pool.peak == 800

    def test_reserve_fraction_shrinks_capacity(self):
        from repro.device.memory import DeviceMemoryPool
        from repro.device.spec import DEVICES

        pool = DeviceMemoryPool(device=DEVICES["nvidia-v100s"], reserve_fraction=0.25)
        assert pool.capacity == DEVICES["nvidia-v100s"].vram_bytes * 3 // 4

    def test_reserve_fraction_edge_cases(self):
        # 0.0 keeps the full capacity; values just under 1 leave a sliver
        assert self.make_pool(1000).capacity == 1000
        from repro.device.memory import DeviceMemoryPool

        tiny = DeviceMemoryPool(capacity_bytes=1000, reserve_fraction=0.999)
        assert tiny.capacity == 1
        with pytest.raises(DeviceOutOfMemory):
            with tiny.lease({"a": 2}):
                pass

    def test_oom_rolls_back_partial_claims(self):
        pool = self.make_pool(1000)
        with pytest.raises(DeviceOutOfMemory):
            with pool.lease({"a": 600, "b": 600}):
                pass
        # the first allocation was rolled back before the raise propagated
        assert pool.used == 0
        assert pool.would_fit({"x": 1000})

    def test_free_then_realloc_roundtrip(self):
        pool = self.make_pool(1000)
        with pytest.raises(DeviceOutOfMemory):
            with pool.lease({"big": 1200}):
                pass
        # after the failed lease the full budget is immediately reusable
        with pool.lease({"ok": 1000}):
            assert pool.used == 1000
        with pool.lease({"again": 500}):
            assert pool.used == 500
        assert pool.used == 0 and pool.peak == 1000

    def test_lease_released_on_body_exception(self):
        pool = self.make_pool(1000)
        with pytest.raises(RuntimeError):
            with pool.lease({"a": 500}):
                raise RuntimeError("chunk crashed")
        assert pool.used == 0

    def test_nested_leases_do_not_collide(self):
        pool = self.make_pool(1000)
        with pool.lease({"a": 300}, tag="chunk[0:4]"):
            with pool.lease({"a": 300}, tag="chunk[4:8]"):
                assert pool.used == 600
        assert pool.used == 0

    def test_oom_pickles_with_sizes(self):
        import pickle

        err = pickle.loads(pickle.dumps(DeviceOutOfMemory("boom", 12, 7)))
        assert isinstance(err, DeviceOutOfMemory)
        assert err.requested == 12 and err.available == 7


class TestEngineUnderBudget:
    def test_engine_under_pool_no_leaks_between_chunks(self, small_dataset):
        # satellite: run the engine under a pool budget chunk by chunk and
        # assert allocations never leak from one chunk to the next
        from repro.core.engine import SigmoEngine
        from repro.device.memory import DeviceMemoryPool
        from repro.runtime.resilient import predict_chunk_footprint

        queries, data = small_dataset.queries[:6], small_dataset.data[:12]
        footprint = predict_chunk_footprint(queries, data)
        pool = DeviceMemoryPool(
            capacity_bytes=sum(footprint.values()), reserve_fraction=0.0
        )
        total = 0
        for start in range(0, len(data), 4):
            chunk = data[start : start + 4]
            with pool.lease(predict_chunk_footprint(queries, chunk)):
                total += SigmoEngine(queries, chunk).run().total_matches
            assert pool.used == 0  # nothing leaked between chunks
        assert total == SigmoEngine(queries, data).run().total_matches
        assert 0 < pool.peak < sum(footprint.values())
