"""Unit tests for device memory accounting."""

import pytest

from repro.device.memory import DeviceMemory, DeviceOutOfMemory, sigmo_footprint_bytes
from repro.device.spec import DEVICES


class TestDeviceMemory:
    def test_allocate_and_free(self):
        mem = DeviceMemory(capacity_bytes=1000, reserve_fraction=0.0)
        mem.allocate("a", 600)
        assert mem.used == 600 and mem.available == 400
        mem.free("a")
        assert mem.used == 0

    def test_oom_carries_sizes(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        with pytest.raises(DeviceOutOfMemory) as exc:
            mem.allocate("big", 200)
        assert exc.value.requested == 200 and exc.value.available == 100

    def test_duplicate_name_rejected(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        mem.allocate("x", 10)
        with pytest.raises(ValueError):
            mem.allocate("x", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            DeviceMemory(capacity_bytes=10).free("nope")

    def test_peak_tracking(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        mem.allocate("a", 60)
        mem.free("a")
        mem.allocate("b", 30)
        assert mem.peak == 60

    def test_reserve_fraction(self):
        mem = DeviceMemory(device=DEVICES["nvidia-v100s"], reserve_fraction=0.5)
        assert mem.capacity == DEVICES["nvidia-v100s"].vram_bytes // 2

    def test_would_fit(self):
        mem = DeviceMemory(capacity_bytes=100, reserve_fraction=0.0)
        assert mem.would_fit(100) and not mem.would_fit(101)

    def test_requires_capacity_or_device(self):
        with pytest.raises(ValueError):
            DeviceMemory()


class TestFootprint:
    def test_paper_scale_footprint(self):
        # section 5.1.3: 3,413 query nodes x 2,745,872 data nodes -> ~1 GB
        # bitmap-dominated footprint.
        fp = sigmo_footprint_bytes(3413, 2_745_872, 2 * 3_000_000)
        total = sum(fp.values())
        assert 0.9e9 < total < 1.6e9
        assert fp["candidate_bitmap"] / total > 0.7

    def test_bitmap_formula(self):
        fp = sigmo_footprint_bytes(8, 64, 0, word_bits=64)
        assert fp["candidate_bitmap"] == 8 * 8  # 8 rows x 1 word x 8 bytes
