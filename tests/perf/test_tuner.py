"""Unit tests for the configuration tuner (Table 1)."""

import pytest

from repro.device.counters import KernelCounters, PipelineCounters
from repro.device.spec import DEVICES
from repro.perf.tuner import ConfigTuner


def realistic_counters(rng):
    work = rng.exponential(4.0, size=5000) + 1
    return PipelineCounters(
        filter_iterations=[
            KernelCounters(name=f"filter-{i}", instructions=3e10 / i, bytes_hbm=2e9)
            for i in range(1, 7)
        ],
        mapping=KernelCounters(name="mapping", instructions=1e8, bytes_hbm=1e9),
        join=KernelCounters(
            name="join",
            instructions=2e11,
            bytes_hbm=5e10,
            bytes_l2=1.5e11,
            work_per_item=work,
        ),
    )


class TestSweep:
    def test_sweep_sorted(self, rng):
        tuner = ConfigTuner(DEVICES["nvidia-v100s"])
        results = tuner.sweep(realistic_counters(rng))
        totals = [r.modeled_total_seconds for r in results]
        assert totals == sorted(totals)
        assert len(results) == 2 * 4 * 4

    def test_best_reproduces_table1(self, rng):
        cnt = realistic_counters(rng)
        expected = {
            "nvidia-v100s": (32, 1024, 128),
            "amd-mi100": (64, 512, 64),
            "intel-max1100": (32, 512, 32),
        }
        for name, (wb, fwg, jwg) in expected.items():
            best = ConfigTuner(DEVICES[name]).best(cnt)
            assert (best.word_bits, best.filter_workgroup_size,
                    best.join_workgroup_size) == (wb, fwg, jwg), name

    def test_as_row(self, rng):
        best = ConfigTuner(DEVICES["amd-mi100"]).best(realistic_counters(rng))
        row = best.as_row()
        assert row["Candidates bitmap integer"] == "64 bit"

    def test_empty_space(self, rng):
        tuner = ConfigTuner(
            DEVICES["nvidia-v100s"], word_bits_choices=(), filter_wg_choices=(),
            join_wg_choices=())
        with pytest.raises(RuntimeError):
            tuner.best(realistic_counters(rng))
