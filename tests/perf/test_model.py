"""Unit tests for the analytic performance model."""

import numpy as np
import pytest

from repro.device.counters import KernelCounters, PipelineCounters
from repro.device.spec import DEVICES
from repro.perf.model import PerformanceModel, PhaseTimes

V100S = DEVICES["nvidia-v100s"]
MI100 = DEVICES["amd-mi100"]
MAX1100 = DEVICES["intel-max1100"]


def make_counters(join_work=None):
    return PipelineCounters(
        filter_iterations=[
            KernelCounters(name="filter-1", instructions=1e9, bytes_hbm=1e9),
            KernelCounters(name="filter-2", instructions=5e10, bytes_hbm=2e9),
        ],
        mapping=KernelCounters(name="mapping", instructions=1e8, bytes_hbm=1e9),
        join=KernelCounters(
            name="join",
            instructions=1e11,
            bytes_hbm=1e10,
            bytes_l2=2e10,
            work_per_item=join_work,
        ),
    )


class TestKernelSeconds:
    def test_compute_bound(self):
        m = PerformanceModel(V100S)
        k = KernelCounters(name="k", instructions=4.89e11)  # ~1s at peak
        assert m.kernel_seconds(k) == pytest.approx(1.0 / 0.93, rel=0.01)

    def test_memory_bound(self):
        m = PerformanceModel(V100S)
        k = KernelCounters(name="k", bytes_hbm=1.134e12)
        assert m.kernel_seconds(k) == pytest.approx(1.0, rel=0.01)

    def test_divergence_multiplies(self):
        m = PerformanceModel(V100S)
        k = KernelCounters(name="k", instructions=1e11)
        assert m.kernel_seconds(k, divergence=2.0) == pytest.approx(
            2 * m.kernel_seconds(k), rel=0.01
        )


class TestPhaseTimes:
    def test_estimate_structure(self):
        m = PerformanceModel(V100S)
        t = m.estimate(make_counters())
        assert set(t.per_kernel) == {"filter-1", "filter-2", "mapping", "join"}
        assert t.total_seconds == pytest.approx(sum(t.per_kernel.values()))
        assert t.filter_seconds > 0 and t.join_seconds > 0

    def test_estimate_scaled_linear_in_compute(self):
        m = PerformanceModel(V100S)
        base = m.estimate(make_counters()).join_seconds
        scaled = m.estimate_scaled(make_counters(), 10.0).join_seconds
        assert scaled > 5 * base

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            PerformanceModel(V100S).estimate_scaled(make_counters(), 0)


class TestCrossDevice:
    def test_intel_slowest_on_compute_bound_work(self):
        cnt = make_counters()
        t_intel = PerformanceModel(MAX1100).estimate(cnt).total_seconds
        t_nv = PerformanceModel(V100S).estimate(cnt).total_seconds
        t_amd = PerformanceModel(MI100).estimate(cnt).total_seconds
        assert t_intel > t_nv > t_amd

    def test_amd_divergence_penalty(self, rng):
        work = rng.exponential(5.0, size=2000)
        cnt = make_counters(join_work=work)
        amd = PerformanceModel(MI100, join_workgroup_size=64)
        nv = PerformanceModel(V100S, join_workgroup_size=64)
        # normalize by peak: AMD is faster in raw instr/s, so compare the
        # divergence factors directly
        from repro.device.simt import join_divergence

        assert join_divergence(work, MI100, 64) > join_divergence(work, V100S, 64)


class TestTuningFactors:
    def test_filter_wg_sweet_spots(self):
        assert PerformanceModel(V100S, filter_workgroup_size=1024).filter_wg_factor() == pytest.approx(1.0)
        assert PerformanceModel(MI100, filter_workgroup_size=512).filter_wg_factor() == pytest.approx(1.0)
        assert PerformanceModel(V100S, filter_workgroup_size=128).filter_wg_factor() > 1.0

    def test_join_wg_sweet_spots(self):
        assert PerformanceModel(V100S, join_workgroup_size=128).join_wg_factor() == pytest.approx(1.0)
        assert PerformanceModel(MI100, join_workgroup_size=64).join_wg_factor() == pytest.approx(1.0)
        assert PerformanceModel(MAX1100, join_workgroup_size=32).join_wg_factor() == pytest.approx(1.0)

    def test_word_factor_prefers_subgroup_match(self):
        assert PerformanceModel(V100S, word_bits=32).word_factor() == pytest.approx(1.0)
        assert PerformanceModel(MI100, word_bits=64).word_factor() == pytest.approx(1.0)
        assert PerformanceModel(MAX1100, word_bits=32).word_factor() == pytest.approx(1.0)
        assert PerformanceModel(V100S, word_bits=64).word_factor() > 1.0
