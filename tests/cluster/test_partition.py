"""Unit tests for static partitioning."""

import pytest

from repro.cluster.partition import partition_fixed_block, partition_static


class TestPartitionStatic:
    def test_covers_all_items(self):
        blocks = partition_static(list(range(10)), 3)
        assert [len(b) for b in blocks] == [4, 3, 3]
        assert sum(blocks, []) == list(range(10))

    def test_more_ranks_than_items(self):
        blocks = partition_static([1, 2], 4)
        assert [len(b) for b in blocks] == [1, 1, 0, 0]

    def test_single_rank(self):
        assert partition_static([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            partition_static([1], 0)


class TestFixedBlock:
    def test_exact_blocks(self):
        blocks = partition_fixed_block(list(range(12)), 3, 4)
        assert all(len(b) == 3 for b in blocks)
        assert blocks[3] == [9, 10, 11]

    def test_surplus_ignored(self):
        blocks = partition_fixed_block(list(range(10)), 3, 2)
        assert sum(len(b) for b in blocks) == 6

    def test_insufficient_items(self):
        with pytest.raises(ValueError, match="need"):
            partition_fixed_block([1, 2], 3, 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            partition_fixed_block([1], 0, 1)
        with pytest.raises(ValueError):
            partition_fixed_block([1], 1, 0)
