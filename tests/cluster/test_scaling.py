"""Unit tests for the weak-scaling harness (Figs. 13-14)."""

import numpy as np
import pytest

from repro.chem.fragments import fragment_queries
from repro.cluster.scaling import scaling_table, weak_scaling_sweep


@pytest.fixture(scope="module")
def sweep():
    return weak_scaling_sweep(
        fragment_queries(10),
        gpu_counts=(2, 4, 8),
        shard_molecules=6,
        molecules_per_rank=600,
    )


class TestSweepStructure:
    def test_one_point_per_mode_and_size(self, sweep):
        assert len(sweep) == 6
        assert {(p.mode, p.n_gpus) for p in sweep} == {
            (m, n) for m in ("find-all", "find-first") for n in (2, 4, 8)
        }

    def test_weak_scaling_dataset_grows(self, sweep):
        find_all = [p for p in sweep if p.mode == "find-all"]
        mols = [p.total_molecules for p in find_all]
        assert mols == [1200, 2400, 4800]

    def test_throughput_scales_roughly_linearly(self, sweep):
        find_all = sorted(
            (p for p in sweep if p.mode == "find-all"), key=lambda p: p.n_gpus
        )
        t2, t8 = find_all[0].throughput, find_all[-1].throughput
        # 4x the GPUs should give ~4x the throughput (allow 40% slack for
        # makespan growth)
        assert 2.4 <= t8 / t2 <= 6.0

    def test_makespan_roughly_flat(self, sweep):
        find_all = sorted(
            (p for p in sweep if p.mode == "find-all"), key=lambda p: p.n_gpus
        )
        times = [p.makespan_seconds for p in find_all]
        # weak scaling: makespan grows sublinearly (max over more ranks)
        assert times[-1] <= times[0] * 2.0

    def test_rank_results_attached(self, sweep):
        for p in sweep:
            assert len(p.rank_results) == p.n_gpus


class TestTable:
    def test_table_renders(self, sweep):
        text = scaling_table(sweep)
        assert "find-all" in text and "gpus" in text
        assert len(text.splitlines()) == 7
