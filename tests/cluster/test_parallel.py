"""Unit tests for host-parallel chunked execution."""

import pytest

from repro.cluster.parallel import run_parallel
from repro.core.config import SigmoConfig
from repro.core.engine import SigmoEngine


@pytest.fixture(scope="module")
def workload(small_dataset):
    return small_dataset.queries[:8], small_dataset.data[:24]


class TestParallel:
    def test_matches_serial(self, workload):
        queries, data = workload
        serial = SigmoEngine(queries, data).run()
        parallel = run_parallel(queries, data, n_workers=3, chunk_size=5)
        assert parallel.total_matches == serial.total_matches

    def test_matched_pairs_globalized(self, workload):
        queries, data = workload
        serial = SigmoEngine(queries, data).run(mode="find-first")
        parallel = run_parallel(
            queries, data, n_workers=2, chunk_size=4, mode="find-first"
        )
        assert parallel.matched_pairs == sorted(serial.matched_pairs())

    def test_single_worker_path(self, workload):
        queries, data = workload
        serial = SigmoEngine(queries, data).run()
        one = run_parallel(queries, data, n_workers=1, chunk_size=100)
        assert one.total_matches == serial.total_matches
        assert one.n_workers == 1

    def test_embeddings_survive_pickling(self, workload):
        queries, data = workload
        cfg = SigmoConfig(record_embeddings=True)
        serial = SigmoEngine(queries, data, cfg).run()
        parallel = run_parallel(queries, data, n_workers=2, chunk_size=6, config=cfg)
        key = lambda r: (r.data_graph, r.query_graph, tuple(r.mapping))
        assert sorted(map(key, parallel.embeddings)) == sorted(
            map(key, serial.embeddings)
        )

    def test_validation(self, workload):
        queries, _ = workload
        with pytest.raises(ValueError):
            run_parallel(queries, [], 2)
        with pytest.raises(ValueError):
            run_parallel(queries, [queries[0]], chunk_size=0)


class TestAggregation:
    def test_n_chunks_summed_across_workers(self, workload):
        queries, data = workload
        parallel = run_parallel(queries, data, n_workers=3, chunk_size=5)
        # 3 slices of 8 graphs, each chunked by 5 -> 2 chunks per slice
        assert parallel.n_chunks == 6

    def test_timings_aggregated(self, workload):
        queries, data = workload
        parallel = run_parallel(queries, data, n_workers=2, chunk_size=6)
        assert "join" in parallel.timings and "filter" in parallel.timings
        assert parallel.total_seconds == pytest.approx(
            sum(parallel.timings.values())
        )
        assert parallel.total_seconds > 0
