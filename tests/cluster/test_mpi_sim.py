"""Unit tests for the simulated cluster."""

import numpy as np
import pytest

from repro.chem.fragments import fragment_queries
from repro.cluster.mpi_sim import SimulatedCluster
from repro.core.join import FIND_ALL, FIND_FIRST


@pytest.fixture(scope="module")
def queries():
    return fragment_queries(10)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)
        with pytest.raises(ValueError):
            SimulatedCluster(1, shard_molecules=0)
        with pytest.raises(ValueError):
            SimulatedCluster(1, molecules_per_rank=5, shard_molecules=10)
        with pytest.raises(ValueError):
            SimulatedCluster(1, tranche_spread=1.5)

    def test_device_by_name(self):
        c = SimulatedCluster(1, device="nvidia-a100")
        assert c.device.name == "nvidia-a100"


class TestExecution:
    def test_rank_results_ordered(self, queries):
        cluster = SimulatedCluster(3, shard_molecules=8, molecules_per_rank=80)
        results = cluster.run(queries)
        assert [r.rank for r in results] == [0, 1, 2]
        assert all(r.n_molecules == 80 for r in results)
        assert all(r.modeled_seconds > 0 for r in results)

    def test_matches_extrapolated(self, queries):
        cluster = SimulatedCluster(1, shard_molecules=8, molecules_per_rank=80)
        results = cluster.run(queries)
        # extrapolation factor 10: matches divisible by 10
        assert results[0].matches % 10 == 0

    def test_rank_streams_stable_across_cluster_sizes(self, queries):
        small = SimulatedCluster(2, shard_molecules=6, molecules_per_rank=60)
        large = SimulatedCluster(4, shard_molecules=6, molecules_per_rank=60)
        ra = small.run(queries)
        rb = large.run(queries)
        # rank r's workload identical regardless of cluster size
        assert ra[0].matches == rb[0].matches
        assert ra[1].matches == rb[1].matches

    def test_find_first_fewer_matches(self, queries):
        cluster = SimulatedCluster(2, shard_molecules=8, molecules_per_rank=16)
        fa = cluster.run(queries, mode=FIND_ALL)
        ff = cluster.run(queries, mode=FIND_FIRST)
        assert sum(r.matches for r in ff) <= sum(r.matches for r in fa)


class TestAggregates:
    def test_makespan_total_throughput(self, queries):
        cluster = SimulatedCluster(3, shard_molecules=6, molecules_per_rank=60)
        results = cluster.run(queries)
        assert SimulatedCluster.makespan(results) == max(
            r.modeled_seconds for r in results
        )
        assert SimulatedCluster.total_matches(results) == sum(
            r.matches for r in results
        )
        assert SimulatedCluster.throughput(results) > 0

    def test_cv_zero_without_tranches(self, queries):
        cluster = SimulatedCluster(
            3, shard_molecules=6, molecules_per_rank=60, tranche_spread=0.0
        )
        results = cluster.run(queries)
        # identical generator params; only molecule sampling noise remains
        assert SimulatedCluster.runtime_cv(results) < 0.2
