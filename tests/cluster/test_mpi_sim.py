"""Unit tests for the simulated cluster."""

import numpy as np
import pytest

from repro.chem.fragments import fragment_queries
from repro.cluster.mpi_sim import SimulatedCluster
from repro.core.join import FIND_ALL, FIND_FIRST


@pytest.fixture(scope="module")
def queries():
    return fragment_queries(10)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)
        with pytest.raises(ValueError):
            SimulatedCluster(1, shard_molecules=0)
        with pytest.raises(ValueError):
            SimulatedCluster(1, molecules_per_rank=5, shard_molecules=10)
        with pytest.raises(ValueError):
            SimulatedCluster(1, tranche_spread=1.5)

    def test_device_by_name(self):
        c = SimulatedCluster(1, device="nvidia-a100")
        assert c.device.name == "nvidia-a100"


class TestExecution:
    def test_rank_results_ordered(self, queries):
        cluster = SimulatedCluster(3, shard_molecules=8, molecules_per_rank=80)
        results = cluster.run(queries)
        assert [r.rank for r in results] == [0, 1, 2]
        assert all(r.n_molecules == 80 for r in results)
        assert all(r.modeled_seconds > 0 for r in results)

    def test_matches_extrapolated(self, queries):
        cluster = SimulatedCluster(1, shard_molecules=8, molecules_per_rank=80)
        results = cluster.run(queries)
        # extrapolation factor 10: matches divisible by 10
        assert results[0].matches % 10 == 0

    def test_rank_streams_stable_across_cluster_sizes(self, queries):
        small = SimulatedCluster(2, shard_molecules=6, molecules_per_rank=60)
        large = SimulatedCluster(4, shard_molecules=6, molecules_per_rank=60)
        ra = small.run(queries)
        rb = large.run(queries)
        # rank r's workload identical regardless of cluster size
        assert ra[0].matches == rb[0].matches
        assert ra[1].matches == rb[1].matches

    def test_find_first_fewer_matches(self, queries):
        cluster = SimulatedCluster(2, shard_molecules=8, molecules_per_rank=16)
        fa = cluster.run(queries, mode=FIND_ALL)
        ff = cluster.run(queries, mode=FIND_FIRST)
        assert sum(r.matches for r in ff) <= sum(r.matches for r in fa)


class TestAggregates:
    def test_makespan_total_throughput(self, queries):
        cluster = SimulatedCluster(3, shard_molecules=6, molecules_per_rank=60)
        results = cluster.run(queries)
        assert SimulatedCluster.makespan(results) == max(
            r.modeled_seconds for r in results
        )
        assert SimulatedCluster.total_matches(results) == sum(
            r.matches for r in results
        )
        assert SimulatedCluster.throughput(results) > 0

    def test_cv_zero_without_tranches(self, queries):
        cluster = SimulatedCluster(
            3, shard_molecules=6, molecules_per_rank=60, tranche_spread=0.0
        )
        results = cluster.run(queries)
        # identical generator params; only molecule sampling noise remains
        assert SimulatedCluster.runtime_cv(results) < 0.2


class TestFaultRecovery:
    def cluster(self):
        return SimulatedCluster(4, shard_molecules=8, molecules_per_rank=80)

    def test_failed_ranks_recovered_matches_conserved(self, queries):
        from repro.runtime import FaultPlan

        cluster = self.cluster()
        base = cluster.run(queries, seed=2)
        faulted = cluster.run(
            queries, seed=2, fault_plan=FaultPlan(failed_ranks=(1, 3))
        )
        assert [r.rank for r in faulted] == [0, 2]
        assert SimulatedCluster.total_matches(faulted) == SimulatedCluster.total_matches(base)
        # round-robin: rank 0 re-executes rank 1's block, rank 2 rank 3's
        assert faulted[0].recovered_ranks == (1,)
        assert faulted[1].recovered_ranks == (3,)
        assert faulted[0].matches == base[0].matches + base[1].matches
        assert faulted[0].n_molecules == 160

    def test_recovery_degrades_makespan(self, queries):
        from repro.runtime import FaultPlan

        cluster = self.cluster()
        base = cluster.run(queries, seed=2)
        faulted = cluster.run(queries, seed=2, fault_plan=FaultPlan(failed_ranks=(0,)))
        assert SimulatedCluster.makespan(faulted) > SimulatedCluster.makespan(base)

    def test_straggler_slows_one_rank(self, queries):
        from repro.runtime import FaultPlan

        cluster = self.cluster()
        base = cluster.run(queries, seed=2)
        plan = FaultPlan(stragglers=(2,), straggler_slowdown=2.5)
        faulted = cluster.run(queries, seed=2, fault_plan=plan)
        assert faulted[2].straggler_factor == 2.5
        assert faulted[2].modeled_seconds == pytest.approx(
            base[2].modeled_seconds * 2.5
        )
        assert SimulatedCluster.total_matches(faulted) == SimulatedCluster.total_matches(base)

    def test_all_ranks_failed_raises(self, queries):
        from repro.runtime import FaultPlan

        with pytest.raises(RuntimeError):
            self.cluster().run(
                queries, seed=2, fault_plan=FaultPlan(failed_ranks=(0, 1, 2, 3))
            )

    def test_no_plan_means_no_recovery_fields(self, queries):
        results = self.cluster().run(queries, seed=2)
        assert all(r.recovered_ranks == () for r in results)
        assert all(r.straggler_factor == 1.0 for r in results)
